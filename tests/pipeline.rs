//! End-to-end integration tests: compile a benchmark, optimize with each
//! method, re-encode, and require bit-identical behaviour in the
//! emulator. This is the reproduction's semantic-preservation gate.

use gpa::{Method, Optimizer};
use gpa_emu::{Machine, Outcome};
use gpa_image::Image;
use gpa_minicc::{compile_benchmark, Options};

const STEPS: u64 = 600_000_000;

fn run(image: &Image) -> Outcome {
    Machine::new(image)
        .run(STEPS)
        .expect("binary runs to completion")
}

/// Optimizes `name` with `method`; returns (saved words, baseline, after).
fn check(name: &str, method: Method) -> i64 {
    let image =
        compile_benchmark(name, &Options::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let before = run(&image);
    let mut optimizer = Optimizer::from_image(&image).expect("image lifts");
    let report = optimizer.run(method).expect("optimization validates");
    let optimized = optimizer.encode().expect("optimized program encodes");
    let after = run(&optimized);
    assert_eq!(
        before.exit_code, after.exit_code,
        "{name}/{method}: exit code"
    );
    assert_eq!(
        before.output_string(),
        after.output_string(),
        "{name}/{method}: output"
    );
    assert!(
        report.saved_words() >= 0,
        "{name}/{method}: optimization never grows the program"
    );
    // The code section genuinely shrank by the reported amount (modulo
    // literal pools, which the re-encoder may share differently).
    let p_before = gpa_cfg::decode_image(&image).unwrap().instruction_count() as i64;
    let p_after = gpa_cfg::decode_image(&optimized)
        .unwrap()
        .instruction_count() as i64;
    assert_eq!(
        p_before - p_after,
        report.saved_words(),
        "{name}/{method}: accounting"
    );
    report.saved_words()
}

#[test]
fn crc_all_methods_preserve_semantics() {
    let sfx = check("crc", Method::Sfx);
    let dgspan = check("crc", Method::DgSpan);
    let edgar = check("crc", Method::Edgar);
    assert!(edgar >= dgspan, "edgar {edgar} >= dgspan {dgspan}");
    assert!(edgar > 0);
    let _ = sfx;
}

#[test]
fn search_all_methods_preserve_semantics() {
    check("search", Method::Sfx);
    check("search", Method::DgSpan);
    let edgar = check("search", Method::Edgar);
    assert!(edgar > 0);
}

#[test]
fn qsort_all_methods_preserve_semantics() {
    // qsort exercises function pointers (indirect calls) through the
    // whole pipeline.
    check("qsort", Method::Sfx);
    let edgar = check("qsort", Method::Edgar);
    assert!(edgar > 0);
}

#[test]
fn sha_edgar_preserves_semantics() {
    assert!(check("sha", Method::Edgar) > 0);
}

#[test]
fn bitcnts_edgar_preserves_semantics() {
    assert!(check("bitcnts", Method::Edgar) > 0);
}

#[test]
fn dijkstra_edgar_preserves_semantics() {
    assert!(check("dijkstra", Method::Edgar) > 0);
}

#[test]
fn patricia_edgar_preserves_semantics() {
    assert!(check("patricia", Method::Edgar) > 0);
}

// rijndael is the paper's long-running outlier (hours in the original);
// the harness binaries cover it, and this gate keeps `cargo test` fast.
#[test]
#[ignore = "long-running; covered by `cargo run -p gpa-bench --bin table1`"]
fn rijndael_all_methods_preserve_semantics() {
    check("rijndael", Method::Sfx);
    check("rijndael", Method::DgSpan);
    check("rijndael", Method::Edgar);
}

#[test]
fn unscheduled_corpus_also_optimizes_correctly() {
    // The --no-sched ablation path must be just as sound.
    let image = compile_benchmark("crc", &Options { schedule: false }).unwrap();
    let before = run(&image);
    let mut optimizer = Optimizer::from_image(&image).unwrap();
    optimizer.run(Method::Edgar).unwrap();
    let after = run(&optimizer.encode().unwrap());
    assert_eq!(before.output, after.output);
}
