//! Assertions of the paper's qualitative claims on the running example
//! and the benchmark corpus (fast subset; the full evaluation lives in
//! the `gpa-bench` harness binaries).

use gpa_arm::parse::parse_listing;
use gpa_cfg::Item;
use gpa_dfg::{build_all, build_dfg_from_items, stats::degree_stats, LabelMode};
use gpa_minicc::{compile_benchmark, Options};
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{mine, Config, Support};

/// Fig. 1 of the paper.
const RUNNING_EXAMPLE: &str = "ldr r3, [r1]!
                               sub r2, r2, r3
                               add r4, r2, #4
                               ldr r3, [r1]!
                               sub r2, r2, r3
                               ldr r3, [r1]!
                               add r4, r2, #4";

fn example_items() -> Vec<Item> {
    parse_listing(RUNNING_EXAMPLE)
        .unwrap()
        .into_iter()
        .map(Item::Insn)
        .collect()
}

/// §2.2: the suffix trie finds only the two-instruction sequence
/// `ldr; sub` in the running example …
#[test]
fn fig3_suffix_trie_sees_only_two_instructions() {
    let items = example_items();
    let mut interner = gpa_mining::graph::LabelInterner::new();
    let seq: Vec<u32> = items
        .iter()
        .map(|i| interner.intern(&i.mining_label()))
        .collect();
    let repeats = gpa_sfx::repeated_factors(&[seq], 2);
    let longest = repeats.iter().map(|c| c.len).max().unwrap();
    assert_eq!(longest, 2, "suffix view: exactly the ldr;sub pair");
}

/// … while graph mining finds three-instruction fragments occurring
/// twice (Figs. 4 and 5), which the varying instruction order hides from
/// the suffix trie.
#[test]
fn figs4_5_graph_mining_finds_three_instruction_fragments() {
    let dfg = build_dfg_from_items("bb", 0, &example_items(), LabelMode::Exact);
    let (graphs, _) = InputGraph::from_dfgs(&[dfg]);
    let found = mine(
        &graphs,
        &Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 8,
            ..Config::default()
        },
    );
    let largest = found
        .iter()
        .filter(|f| f.support >= 2)
        .map(|f| f.pattern.node_count())
        .max()
        .unwrap();
    assert!(
        largest >= 3,
        "graph mining sees 3-node fragments, got {largest}"
    );
}

/// §3.4 (Fig. 8): a four-node fragment's two embeddings share the middle
/// load, so only one non-overlapping occurrence remains.
#[test]
fn fig8_overlapping_embeddings_collapse() {
    let dfg = build_dfg_from_items("bb", 0, &example_items(), LabelMode::Exact);
    let (graphs, _) = InputGraph::from_dfgs(&[dfg]);
    let found = mine(
        &graphs,
        &Config {
            min_support: 1,
            support: Support::Embeddings,
            max_nodes: 4,
            ..Config::default()
        },
    );
    // Some 4-node fragment exists with >= 2 raw embeddings but support 1.
    assert!(
        found
            .iter()
            .any(|f| f.pattern.node_count() == 4 && f.embeddings.len() >= 2 && f.support == 1),
        "overlap resolution reduces a multi-embedding fragment to support 1"
    );
}

/// §4.2 (Table 2): a third or more of DFG nodes in the compiled corpus
/// have fan-in or fan-out above one — the reordering freedom that makes
/// graph-based PA win.
#[test]
fn table2_substantial_reordering_freedom() {
    for name in ["crc", "sha"] {
        let image = compile_benchmark(name, &Options::default()).unwrap();
        let program = gpa_cfg::decode_image(&image).unwrap();
        let stats = degree_stats(&build_all(&program, LabelMode::Exact));
        let share = stats.high_degree as f64 / stats.total() as f64;
        assert!(
            share > 0.10,
            "{name}: expected >10% high-degree nodes, got {:.1}%",
            share * 100.0
        );
    }
}

/// §4: the scheduler is what defeats the suffix trie — with scheduling
/// disabled, plain template output makes SFX at least as strong as with
/// scheduling enabled.
#[test]
fn scheduling_ablation_helps_sfx() {
    use gpa::{Method, Optimizer};
    let saved = |schedule: bool| {
        let image = compile_benchmark("crc", &Options { schedule }).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        opt.run(Method::Sfx).unwrap().saved_words()
    };
    let with_sched = saved(true);
    let without_sched = saved(false);
    assert!(
        without_sched >= with_sched,
        "SFX without scheduling ({without_sched}) should be >= with scheduling ({with_sched})"
    );
}

/// The degree histograms (Table 3) bucket every node exactly once.
#[test]
fn table3_histograms_are_complete() {
    let image = compile_benchmark("search", &Options::default()).unwrap();
    let program = gpa_cfg::decode_image(&image).unwrap();
    let stats = degree_stats(&build_all(&program, LabelMode::Exact));
    let in_total: usize = stats.in_hist.iter().sum();
    let out_total: usize = stats.out_hist.iter().sum();
    assert_eq!(in_total, stats.total());
    assert_eq!(out_total, stats.total());
    assert_eq!(
        stats.total(),
        program.instruction_count() -
        // Fused indirect-call items count as one node but two instructions.
        program.regions().iter().flat_map(|r| r.items.iter())
            .filter(|i| matches!(i, Item::IndirectCall { .. })).count()
    );
}
