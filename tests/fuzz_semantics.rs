//! Randomized end-to-end soundness: generated MiniC programs are
//! compiled, optimized with every method, and must behave identically
//! before and after. The generator is seeded, so failures are
//! reproducible by seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpa::{Method, Optimizer};
use gpa_emu::Machine;
use gpa_minicc::{compile, Options};

/// Generates a random but always-valid MiniC program: a handful of
/// arithmetic helper functions (with deliberate near-duplication, loops
/// and branches) and a `main` that prints a digest of their results.
fn generate_program(rng: &mut StdRng) -> String {
    let mut src = String::from("int acc[8];\n");
    let n_funcs = rng.gen_range(2..5);
    let ops = ["+", "-", "*", "&", "|", "^"];
    for f in 0..n_funcs {
        let a = rng.gen_range(1..60);
        let b = rng.gen_range(1..60);
        let op1 = ops[rng.gen_range(0..ops.len())];
        let op2 = ops[rng.gen_range(0..ops.len())];
        let with_loop = rng.gen_bool(0.5);
        let with_branch = rng.gen_bool(0.5);
        src.push_str(&format!("int f{f}(int x, int y) {{\n"));
        src.push_str(&format!("    int v = (x {op1} {a}) {op2} (y * {b});\n"));
        if with_loop {
            let iters = rng.gen_range(1..6);
            src.push_str(&format!(
                "    for (int i = 0; i < {iters}; i++) v = v + (x {op1} i);\n"
            ));
        }
        if with_branch {
            let threshold = rng.gen_range(0..100);
            src.push_str(&format!(
                "    if (v > {threshold}) {{ v = v - y; }} else {{ v = v + x; }}\n"
            ));
        }
        src.push_str(&format!("    acc[{}] = v;\n", f % 8));
        src.push_str("    return v;\n}\n");
    }
    src.push_str("int main() {\n    int total = 0;\n");
    let calls = rng.gen_range(3..9);
    for c in 0..calls {
        let f = rng.gen_range(0..n_funcs);
        let x = rng.gen_range(0..50);
        let y = rng.gen_range(0..50);
        src.push_str(&format!(
            "    total = total + f{f}({x}, {y}) * {};\n",
            c + 1
        ));
    }
    src.push_str("    for (int i = 0; i < 8; i++) total = total ^ acc[i];\n");
    src.push_str("    putint(total);\n    putint(acc[3]);\n    return 0;\n}\n");
    src
}

#[test]
fn random_programs_survive_all_methods() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let source = generate_program(&mut rng);
        let image = compile(&source, &Options::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        let baseline = Machine::new(&image)
            .run(50_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}: baseline {e}"));
        for method in [Method::Sfx, Method::DgSpan, Method::Edgar] {
            let mut optimizer = Optimizer::from_image(&image).expect("image lifts");
            let report = optimizer.run(method).expect("optimization validates");
            let optimized = optimizer.encode().expect("encodes");
            let after = Machine::new(&optimized)
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}/{method}: {e}"));
            assert_eq!(
                baseline.output_string(),
                after.output_string(),
                "seed {seed}/{method} changed output\n{source}"
            );
            assert_eq!(baseline.exit_code, after.exit_code, "seed {seed}/{method}");
            assert!(report.saved_words() >= 0, "seed {seed}/{method} grew");
        }
    }
}

#[test]
fn random_programs_with_scheduler_disabled() {
    for seed in 20..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let source = generate_program(&mut rng);
        let image = compile(&source, &Options { schedule: false }).unwrap();
        let baseline = Machine::new(&image).run(50_000_000).unwrap();
        let mut optimizer = Optimizer::from_image(&image).unwrap();
        optimizer.run(Method::Edgar).unwrap();
        let after = Machine::new(&optimizer.encode().unwrap())
            .run(50_000_000)
            .unwrap();
        assert_eq!(baseline.output, after.output, "seed {seed}");
    }
}
