//! The verification gate: every MiBench kernel, optimized with every
//! method under per-round translation validation, must lint clean both
//! before and after — and a property test requires the validator to
//! accept every optimizer output on generated MiniC programs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpa::{Method, Optimizer, RunConfig, ValidateLevel};
use gpa_image::Image;
use gpa_minicc::programs::BENCHMARKS;
use gpa_minicc::{compile, compile_benchmark, Options};
use gpa_verify::lint_image;

fn validated_config() -> RunConfig {
    RunConfig {
        validate: ValidateLevel::EveryRound,
        ..RunConfig::default()
    }
}

fn assert_lints_clean(image: &Image, what: &str) {
    let diags = lint_image(image);
    assert!(
        diags.is_empty(),
        "{what}: expected a clean lint, got:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Optimizes one kernel under [`ValidateLevel::EveryRound`], linting the
/// image on both sides of the rewrite.
fn check_kernel(name: &str, method: Method) {
    let image =
        compile_benchmark(name, &Options::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_lints_clean(&image, &format!("{name} (unoptimized)"));
    let mut optimizer = Optimizer::from_image(&image).expect("image lifts");
    let report = optimizer
        .run_with(method, &validated_config())
        .unwrap_or_else(|e| panic!("{name}/{method}: {e}"));
    assert!(report.saved_words() >= 0, "{name}/{method} grew");
    let optimized = optimizer.encode().expect("optimized program encodes");
    assert_lints_clean(&optimized, &format!("{name}/{method} (optimized)"));
}

#[test]
fn all_kernels_validate_under_sfx() {
    for name in BENCHMARKS {
        check_kernel(name, Method::Sfx);
    }
}

#[test]
fn all_kernels_validate_under_dgspan() {
    for name in BENCHMARKS {
        check_kernel(name, Method::DgSpan);
    }
}

#[test]
fn all_kernels_validate_under_edgar() {
    for name in BENCHMARKS {
        check_kernel(name, Method::Edgar);
    }
}

/// A small always-valid MiniC program with deliberate duplication, so
/// the optimizer has something to extract.
fn generate_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::from("int acc[4];\n");
    let n_funcs = rng.gen_range(2..5usize);
    let ops = ["+", "-", "*", "^"];
    for f in 0..n_funcs {
        let a = rng.gen_range(1..40);
        let op = ops[rng.gen_range(0..ops.len())];
        src.push_str(&format!(
            "int f{f}(int x, int y) {{\n    int v = (x {op} {a}) * (y + {});\n",
            f + 1
        ));
        if rng.gen_bool(0.5) {
            src.push_str("    if (v > 9) { v = v - y; } else { v = v + x; }\n");
        }
        src.push_str(&format!("    acc[{}] = v;\n    return v;\n}}\n", f % 4));
    }
    src.push_str("int main() {\n    int total = 0;\n");
    for c in 0..rng.gen_range(3..7usize) {
        let f = rng.gen_range(0..n_funcs);
        let x = rng.gen_range(0..30);
        src.push_str(&format!("    total = total + f{f}({x}, {c});\n"));
    }
    src.push_str("    putint(total ^ acc[1]);\n    return 0;\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The validator accepts every rewrite the optimizer actually makes,
    /// whatever program it is fed.
    #[test]
    fn validator_accepts_every_optimizer_output(seed in 0u64..1_000_000) {
        let source = generate_source(seed);
        let image = compile(&source, &Options::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        for method in [Method::Sfx, Method::DgSpan, Method::Edgar] {
            let mut optimizer = Optimizer::from_image(&image).expect("image lifts");
            let result = optimizer.run_with(method, &validated_config());
            prop_assert!(
                result.is_ok(),
                "seed {}/{}: {}\n{}",
                seed,
                method,
                result.unwrap_err(),
                source
            );
            let optimized = optimizer.encode().expect("encodes");
            prop_assert!(
                lint_image(&optimized).is_empty(),
                "seed {}/{}: optimized image lints dirty",
                seed,
                method
            );
        }
    }
}
