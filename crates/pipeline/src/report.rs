//! The corpus report: what a batch run produced and where the time went.

use gpa::json::Json;
use gpa::{Method, Report, StageTimings};
use gpa_trace::Counters;

/// Version tag of the corpus-report JSON schema.
pub const CORPUS_SCHEMA: &str = "gpa-corpus/1";

/// One input's result in a batch run.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageEntry {
    /// Display name (the input path, or the caller-chosen name).
    pub name: String,
    /// The image's [`gpa::image_cache_key`]; `None` when the image could
    /// not even be loaded.
    pub key: Option<u128>,
    /// The optimization report, or the failure message.
    pub outcome: Result<Report, String>,
    /// Whether the report came out of the artifact cache.
    pub cached: bool,
    /// Per-stage time this entry cost (all zero on a cache hit).
    pub timings: StageTimings,
    /// Aggregated trace counters for this entry (empty when the batch
    /// ran without a trace dir).
    pub counters: Counters,
}

/// The result of [`crate::run_batch`] over a corpus.
#[derive(Debug)]
pub struct CorpusReport {
    /// Detection method the whole batch ran with.
    pub method: Method,
    /// Per-input results, in input order.
    pub images: Vec<ImageEntry>,
    /// Whether the run was cut short by a shutdown request; unprocessed
    /// inputs carry `"interrupted"` error outcomes and the document
    /// gains an `"interrupted": true` marker.
    pub interrupted: bool,
    /// Worker threads the pool actually used.
    pub jobs: usize,
    /// End-to-end wall time of the batch run.
    pub wall_ns: u64,
    /// [`crate::ReportCache`] lookups answered from the cache.
    pub report_cache_hits: u64,
    /// [`crate::ReportCache`] lookups that ran the optimizer.
    pub report_cache_misses: u64,
    /// [`crate::ReportCache`] memory-layer entries evicted under a
    /// bounded [`crate::CacheBudget`] (always 0 for the default
    /// unbounded budget).
    pub report_cache_evicted: u64,
    /// Shared [`gpa::DfgCache`] hits across all workers.
    pub dfg_cache_hits: u64,
    /// Shared [`gpa::DfgCache`] misses across all workers.
    pub dfg_cache_misses: u64,
}

impl CorpusReport {
    /// Number of inputs that failed (load, decode, optimize or validate).
    pub fn error_count(&self) -> usize {
        self.images.iter().filter(|e| e.outcome.is_err()).count()
    }

    /// The successful entries with their reports, in input order — the
    /// iteration surface the metrics harness (`gpa perf`) consumes.
    pub fn successful(&self) -> impl Iterator<Item = (&ImageEntry, &Report)> {
        self.images
            .iter()
            .filter_map(|e| e.outcome.as_ref().ok().map(|r| (e, r)))
    }

    /// Corpus-wide words saved, over the successful inputs.
    pub fn total_saved_words(&self) -> i64 {
        self.images
            .iter()
            .filter_map(|e| e.outcome.as_ref().ok())
            .map(Report::saved_words)
            .sum()
    }

    /// Per-stage times summed over every entry.
    pub fn total_timings(&self) -> StageTimings {
        let mut total = StageTimings::default();
        for e in &self.images {
            total.merge(&e.timings);
        }
        total
    }

    /// Trace counters summed over every entry (empty when the batch ran
    /// untraced).
    pub fn total_counters(&self) -> Counters {
        let mut total = Counters::default();
        for e in &self.images {
            total.merge(&e.counters);
        }
        total
    }

    /// Serializes the corpus report.
    ///
    /// The base document is *deterministic*: it depends only on the
    /// inputs, the method and the [`gpa::RunConfig`] — not on worker
    /// count, scheduling, machine speed or cache temperature. With
    /// `include_metrics` a trailing `"metrics"` object adds the
    /// non-deterministic measurements (wall times, cache counters, the
    /// per-image `cached` flags and the worker count).
    pub fn to_json(&self, include_metrics: bool) -> Json {
        let images: Vec<Json> = self
            .images
            .iter()
            .map(|e| {
                let mut pairs = vec![("name".to_owned(), Json::from(e.name.as_str()))];
                if let Some(key) = e.key {
                    pairs.push(("key".to_owned(), Json::from(format!("{key:032x}"))));
                }
                match &e.outcome {
                    Ok(report) => pairs.push(("report".to_owned(), report.to_json())),
                    Err(message) => {
                        pairs.push(("error".to_owned(), Json::from(message.as_str())));
                    }
                }
                Json::Obj(pairs)
            })
            .collect();
        let (initial, fin): (usize, usize) = self
            .images
            .iter()
            .filter_map(|e| e.outcome.as_ref().ok())
            .fold((0, 0), |(i, f), r| (i + r.initial_words, f + r.final_words));
        let mut doc = vec![
            ("schema".to_owned(), Json::from(CORPUS_SCHEMA)),
            ("method".to_owned(), Json::from(self.method.as_str())),
            ("images".to_owned(), Json::Arr(images)),
            ("total_initial_words".to_owned(), Json::from(initial)),
            ("total_final_words".to_owned(), Json::from(fin)),
            (
                "total_saved_words".to_owned(),
                Json::from(self.total_saved_words()),
            ),
            ("errors".to_owned(), Json::from(self.error_count())),
        ];
        if self.interrupted {
            // Deliberately part of the deterministic section: a partial
            // report must never pass for a complete one, whatever the
            // worker count or cache temperature was.
            doc.push(("interrupted".to_owned(), Json::from(true)));
        }
        if include_metrics {
            let per_image: Vec<Json> = self
                .images
                .iter()
                .map(|e| {
                    let mut pairs = vec![
                        ("name".to_owned(), Json::from(e.name.as_str())),
                        ("cached".to_owned(), Json::from(e.cached)),
                        ("timings".to_owned(), e.timings.to_json()),
                    ];
                    if !e.counters.is_empty() {
                        pairs.push(("counters".to_owned(), counters_json(&e.counters)));
                    }
                    Json::Obj(pairs)
                })
                .collect();
            doc.push((
                "metrics".to_owned(),
                Json::obj([
                    ("jobs", Json::from(self.jobs)),
                    ("wall_ns", Json::from(self.wall_ns)),
                    (
                        "report_cache",
                        Json::obj([
                            ("hits", Json::from(self.report_cache_hits)),
                            ("misses", Json::from(self.report_cache_misses)),
                            ("evicted", Json::from(self.report_cache_evicted)),
                        ]),
                    ),
                    (
                        "dfg_cache",
                        Json::obj([
                            ("hits", Json::from(self.dfg_cache_hits)),
                            ("misses", Json::from(self.dfg_cache_misses)),
                        ]),
                    ),
                    ("stage_totals", self.total_timings().to_json()),
                    ("trace", counters_json(&self.total_counters())),
                    ("images", Json::Arr(per_image)),
                ]),
            ));
        }
        Json::Obj(doc)
    }
}

/// Serializes aggregated trace counters as a flat name → total object.
fn counters_json(counters: &Counters) -> Json {
    Json::Obj(
        counters
            .0
            .iter()
            .map(|(name, total)| (name.clone(), Json::from(*total)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> CorpusReport {
        CorpusReport {
            method: Method::Edgar,
            images: vec![
                ImageEntry {
                    name: "a.img".into(),
                    key: Some(3),
                    outcome: Ok(Report {
                        initial_words: 10,
                        final_words: 8,
                        rounds: vec![],
                    }),
                    cached: true,
                    timings: StageTimings::default(),
                    counters: Counters(
                        [("mine.patterns_visited".to_owned(), 7u64)]
                            .into_iter()
                            .collect(),
                    ),
                },
                ImageEntry {
                    name: "b.img".into(),
                    key: None,
                    outcome: Err("boom".into()),
                    cached: false,
                    timings: StageTimings {
                        decode_ns: 5,
                        ..StageTimings::default()
                    },
                    counters: Counters::default(),
                },
            ],
            interrupted: false,
            jobs: 4,
            wall_ns: 123,
            report_cache_hits: 1,
            report_cache_misses: 1,
            report_cache_evicted: 0,
            dfg_cache_hits: 0,
            dfg_cache_misses: 0,
        }
    }

    #[test]
    fn totals_and_errors() {
        let c = corpus();
        assert_eq!(c.total_saved_words(), 2);
        assert_eq!(c.error_count(), 1);
        assert_eq!(c.total_timings().decode_ns, 5);
        assert_eq!(c.total_counters().get("mine.patterns_visited"), 7);
    }

    #[test]
    fn deterministic_section_excludes_metrics() {
        let c = corpus();
        let bare = c.to_json(false);
        assert!(bare.get("metrics").is_none());
        assert_eq!(
            bare.get("schema").and_then(Json::as_str),
            Some(CORPUS_SCHEMA)
        );
        assert_eq!(bare.get("errors").and_then(Json::as_int), Some(1));
        // `cached` and trace counters must not leak into the
        // deterministic section.
        assert!(!bare.to_string().contains("cached"));
        assert!(!bare.to_string().contains("patterns_visited"));
        let full = c.to_json(true);
        let metrics = full.get("metrics").expect("metrics present");
        assert_eq!(metrics.get("jobs").and_then(Json::as_int), Some(4));
        let trace = metrics.get("trace").expect("aggregated trace counters");
        assert_eq!(
            trace.get("mine.patterns_visited").and_then(Json::as_int),
            Some(7)
        );
        // The document round-trips through the parser.
        assert_eq!(Json::parse(&full.to_string()).unwrap(), full);
    }

    #[test]
    fn interrupted_marker_only_appears_on_partial_runs() {
        let complete = corpus();
        assert!(complete.to_json(false).get("interrupted").is_none());
        let mut partial = corpus();
        partial.interrupted = true;
        assert_eq!(
            partial
                .to_json(false)
                .get("interrupted")
                .and_then(Json::as_bool),
            Some(true)
        );
    }
}
