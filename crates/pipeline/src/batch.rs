//! The batch driver: a bounded worker pool with deterministic merge.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpa::{image_cache_key, DfgCache, Method, Optimizer, Report, RunConfig, StageTimings};
use gpa_image::Image;
use gpa_trace::{CounterTracer, JsonlTracer, NoopTracer, Tracer};

use crate::cache::ReportCache;
use crate::lru::CacheBudget;
use crate::report::{CorpusReport, ImageEntry};
use crate::shutdown::ShutdownFlag;

/// Tuning for one batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Detection method for every image.
    pub method: Method,
    /// Per-image optimizer tuning (validation level, round caps, mining
    /// threads).
    pub run: RunConfig,
    /// Directory for the persistent report-cache layer; `None` keeps the
    /// cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Directory for per-image `gpa-trace/1` JSONL trace files
    /// (`NNNN-<name>.jsonl`, one per input slot); `None` disables
    /// tracing.
    pub trace_dir: Option<PathBuf>,
    /// Cooperative stop token, polled between images: once raised,
    /// in-flight images finish, unstarted ones become `"interrupted"`
    /// errors, and the corpus report carries `"interrupted": true`.
    pub shutdown: ShutdownFlag,
    /// Bound on the in-memory report-cache layer (unbounded by default,
    /// matching historical batch behaviour).
    pub cache_budget: CacheBudget,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            jobs: 0,
            method: Method::Edgar,
            run: RunConfig::default(),
            cache_dir: None,
            trace_dir: None,
            shutdown: ShutdownFlag::new(),
            cache_budget: CacheBudget::unbounded(),
        }
    }
}

/// One unit of batch work.
#[derive(Clone, Debug)]
pub enum BatchInput {
    /// Load the image from this file inside the worker.
    Path(PathBuf),
    /// An already-loaded image under a display name.
    Loaded(String, Image),
}

impl BatchInput {
    /// Wraps an in-memory image (tests, embedded corpora).
    pub fn loaded(name: impl Into<String>, image: Image) -> BatchInput {
        BatchInput::Loaded(name.into(), image)
    }

    /// The display name used in the corpus report.
    pub fn name(&self) -> String {
        match self {
            BatchInput::Path(p) => p.display().to_string(),
            BatchInput::Loaded(name, _) => name.clone(),
        }
    }
}

/// Expands command-line operands into batch inputs: a file stands for
/// itself, a directory for its regular files in byte-wise name order
/// (non-recursive), so a corpus directory enumerates identically on every
/// platform.
///
/// # Errors
///
/// A message for an operand that does not exist or a directory that
/// cannot be read.
pub fn expand_inputs(operands: &[String]) -> Result<Vec<BatchInput>, String> {
    let mut inputs = Vec::new();
    for op in operands {
        let path = Path::new(op);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("{op}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            inputs.extend(entries.into_iter().map(BatchInput::Path));
        } else if path.is_file() {
            inputs.push(BatchInput::Path(path.to_path_buf()));
        } else {
            return Err(format!("{op}: no such file or directory"));
        }
    }
    Ok(inputs)
}

fn effective_jobs(requested: usize, work_items: usize) -> usize {
    let hardware = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    let jobs = if requested == 0 {
        hardware()
    } else {
        requested
    };
    jobs.clamp(1, work_items.max(1))
}

/// Optimizes every input and merges the per-image results in input order.
///
/// Workers pull indices off a shared atomic counter, so the pool is
/// naturally load-balanced; because results land in their input slot, the
/// deterministic section of the returned [`CorpusReport`]
/// ([`CorpusReport::to_json`] with `include_metrics = false`) is
/// byte-identical for any `jobs` value and any cache temperature.
///
/// Per-image failures (unreadable file, undecodable image, failed
/// validation) become [`ImageEntry::outcome`] errors; the run continues.
///
/// When the [`BatchConfig::shutdown`] flag is raised (Ctrl-C, SIGTERM,
/// or programmatically), workers stop claiming new inputs: in-flight
/// images finish normally, every unstarted input becomes an
/// `"interrupted"` error entry, the partial report is marked
/// [`CorpusReport::interrupted`], and stale cache tmp files are swept so
/// the interrupted run leaves the cache directory clean.
///
/// # Errors
///
/// Only a failure to create the `cache_dir` or `trace_dir` aborts the
/// whole batch.
pub fn run_batch(inputs: &[BatchInput], config: &BatchConfig) -> Result<CorpusReport, String> {
    let start = Instant::now();
    let report_cache = match &config.cache_dir {
        Some(dir) => ReportCache::with_dir_budget(dir, config.cache_budget)
            .map_err(|e| format!("cache dir {}: {e}", dir.display()))?,
        None => ReportCache::with_budget(config.cache_budget),
    };
    if let Some(dir) = &config.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("trace dir {}: {e}", dir.display()))?;
    }
    let dfg_cache = DfgCache::new();
    let jobs = effective_jobs(config.jobs, inputs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ImageEntry>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        if config.shutdown.is_raised() {
            return;
        }
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some(input) = inputs.get(index) else {
            return;
        };
        let entry = process_one(index, input, config, &report_cache, &dfg_cache);
        *slots[index].lock().expect("result slot poisoned") = Some(entry);
    };
    if jobs <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }
    let interrupted = config.shutdown.is_raised();
    let images = slots
        .into_iter()
        .zip(inputs)
        .map(|(slot, input)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| {
                    // Unclaimed slot: the shutdown flag stopped the pool
                    // before any worker reached this input.
                    ImageEntry {
                        name: input.name(),
                        key: None,
                        outcome: Err("interrupted".into()),
                        cached: false,
                        timings: StageTimings::default(),
                        counters: gpa_trace::Counters::default(),
                    }
                })
        })
        .collect();
    if interrupted {
        report_cache.sweep_tmp();
    }
    Ok(CorpusReport {
        method: config.method,
        images,
        interrupted,
        jobs,
        wall_ns: gpa_trace::saturating_ns(start.elapsed()),
        report_cache_hits: report_cache.hits(),
        report_cache_misses: report_cache.misses(),
        report_cache_evicted: report_cache.evicted(),
        dfg_cache_hits: dfg_cache.hits(),
        dfg_cache_misses: dfg_cache.misses(),
    })
}

/// Trace file name for input slot `index`: the slot number keeps names
/// unique, the sanitized basename keeps them readable.
fn trace_file_name(index: usize, name: &str) -> String {
    let base = name.rsplit(['/', '\\']).next().unwrap_or(name);
    let stem: String = base
        .chars()
        .take(80)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{index:04}-{stem}.jsonl")
}

fn process_one(
    index: usize,
    input: &BatchInput,
    config: &BatchConfig,
    report_cache: &ReportCache,
    dfg_cache: &DfgCache,
) -> ImageEntry {
    let name = input.name();
    let tracer: Arc<dyn Tracer> = match &config.trace_dir {
        Some(dir) => match JsonlTracer::to_file(&dir.join(trace_file_name(index, &name))) {
            Ok(tracer) => Arc::new(tracer),
            // Keeping the counter totals beats dropping the trace whole.
            Err(_) => Arc::new(CounterTracer::new()),
        },
        None => Arc::new(NoopTracer),
    };
    let mut timings = StageTimings::default();
    let (key, outcome, cached) = optimize_input(
        input,
        config,
        report_cache,
        dfg_cache,
        &tracer,
        &mut timings,
    );
    timings.trace(tracer.as_ref());
    tracer.finish();
    ImageEntry {
        name,
        key,
        outcome,
        cached,
        timings,
        counters: tracer.counters(),
    }
}

/// The optimize-or-fetch body of [`process_one`]: returns the cache key
/// (once the image decoded far enough to have one), the outcome, and
/// whether the report came from the cache.
fn optimize_input(
    input: &BatchInput,
    config: &BatchConfig,
    report_cache: &ReportCache,
    dfg_cache: &DfgCache,
    tracer: &Arc<dyn Tracer>,
    timings: &mut StageTimings,
) -> (Option<u128>, Result<Report, String>, bool) {
    let image = match input {
        BatchInput::Loaded(_, image) => image.clone(),
        BatchInput::Path(path) => {
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(e) => return (None, Err(e.to_string()), false),
            };
            match Image::from_bytes(&bytes) {
                Ok(image) => image,
                Err(e) => return (None, Err(e.to_string()), false),
            }
        }
    };
    let run = RunConfig {
        tracer: Arc::clone(tracer),
        ..config.run.clone()
    };
    let key = image_cache_key(&image, config.method, &run);
    if let Some(report) = report_cache.get_traced(key, tracer.as_ref()) {
        return (Some(key), Ok(report), true);
    }
    let mut optimizer = match Optimizer::from_image_configured(&image, &run, timings) {
        Ok(optimizer) => optimizer,
        Err(e) => return (Some(key), Err(e.to_string()), false),
    };
    match optimizer.run_instrumented(config.method, &run, timings, Some(dfg_cache)) {
        Ok(report) => {
            report_cache.put_traced(key, &report, tracer.as_ref());
            (Some(key), Ok(report), false)
        }
        Err(e) => (Some(key), Err(e.to_string()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_resolution() {
        assert_eq!(effective_jobs(4, 100), 4);
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(1, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }

    #[test]
    fn missing_operand_is_an_error() {
        assert!(expand_inputs(&["/definitely/not/here".into()]).is_err());
    }

    #[test]
    fn directory_expansion_is_sorted() {
        let dir = std::env::temp_dir().join(format!("gpa-batch-expand-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b.img", "a.img", "c.img"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let inputs = expand_inputs(&[dir.display().to_string()]).unwrap();
        let names: Vec<String> = inputs.iter().map(BatchInput::name).collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].ends_with("a.img"));
        assert!(names[2].ends_with("c.img"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_image_fails_without_aborting_the_batch() {
        let dir = std::env::temp_dir().join(format!("gpa-batch-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.img");
        std::fs::write(&bad, b"not an image").unwrap();
        let corpus = run_batch(
            &[BatchInput::Path(bad)],
            &BatchConfig {
                jobs: 1,
                ..BatchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(corpus.error_count(), 1);
        assert!(corpus.images[0].key.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
