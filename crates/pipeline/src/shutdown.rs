//! Cooperative shutdown plumbing shared by `gpa batch` and `gpa serve`.
//!
//! A [`ShutdownFlag`] is a cheap, cloneable "should we stop?" token.
//! Workers poll it between units of work (images in batch, requests in
//! serve) so an interrupt finishes in-flight work instead of killing it
//! mid-rewrite. The flag can be raised programmatically (tests, the
//! serve Shutdown frame) or wired to SIGINT/SIGTERM via
//! [`ShutdownFlag::install_signal_handler`].
//!
//! The signal path is hand-rolled on `signal(2)` FFI — the workspace
//! takes no external dependencies — and the handler only stores to a
//! `static` atomic, which is async-signal-safe. Because a process has
//! one set of signal dispositions, the signal-backed state is a global
//! that every signal-installed flag observes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Raised by the signal handler; observed by every signal-backed flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install(signum: i32) {
        unsafe {
            signal(signum, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// A cloneable stop token polled cooperatively by pipeline workers.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
    /// Whether this flag also observes the process-wide signal state.
    signal_backed: bool,
}

impl ShutdownFlag {
    /// A fresh flag, not raised, not signal-backed.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Wires SIGINT and SIGTERM to this flag (and returns it). On
    /// non-Unix targets this is a no-op beyond creating the flag.
    pub fn install_signal_handler() -> ShutdownFlag {
        #[cfg(unix)]
        {
            sys::install(sys::SIGINT);
            sys::install(sys::SIGTERM);
        }
        ShutdownFlag {
            local: Arc::new(AtomicBool::new(false)),
            signal_backed: true,
        }
    }

    /// Raises the flag programmatically.
    pub fn raise(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested (locally or by a signal).
    pub fn is_raised(&self) -> bool {
        self.local.load(Ordering::SeqCst)
            || (self.signal_backed && SIGNALLED.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_low_and_latches_on_raise() {
        let flag = ShutdownFlag::new();
        assert!(!flag.is_raised());
        let clone = flag.clone();
        clone.raise();
        assert!(flag.is_raised(), "clones share the underlying state");
        assert!(clone.is_raised());
    }

    #[test]
    fn non_signal_flags_ignore_the_global_state() {
        // Deliberately poke the global: plain flags must not observe it.
        SIGNALLED.store(true, Ordering::SeqCst);
        let flag = ShutdownFlag::new();
        assert!(!flag.is_raised());
        SIGNALLED.store(false, Ordering::SeqCst);
    }
}
