//! The report-level artifact cache.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gpa::json::Json;
use gpa::Report;
use gpa_trace::{NoopTracer, Tracer, Value};

use crate::lru::{CacheBudget, ShardedLru};

/// A content-addressed cache of optimization results, keyed by
/// [`gpa::image_cache_key`].
///
/// Always has an in-memory layer (shared by every worker of a batch run);
/// with [`ReportCache::with_dir`] a second, on-disk layer persists
/// results across runs as `<dir>/<key as 32 hex digits>.json` files
/// holding the [`Report::to_json`] document.
///
/// The disk layer is best-effort and safe against concurrent writers:
/// files are written to a temporary name and atomically renamed into
/// place, and an unreadable or unparsable file (e.g. a stale schema after
/// an upgrade) counts as a miss rather than an error.
///
/// The in-memory layer is bounded by a [`CacheBudget`]: the default
/// constructors keep the historical unbounded behaviour (a batch run
/// over a finite corpus), while a resident `gpa serve` process passes
/// explicit entry/byte limits and sheds least-recently-used reports
/// (counted by [`ReportCache::evicted`] and the `cache.evicted` trace
/// counter). Eviction never touches the disk layer.
pub struct ReportCache {
    dir: Option<PathBuf>,
    map: ShardedLru<Report>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReportCache {
    /// A purely in-memory cache (one batch run's lifetime), unbounded.
    pub fn in_memory() -> ReportCache {
        ReportCache::with_budget(CacheBudget::unbounded())
    }

    /// A purely in-memory cache bounded by `budget`.
    pub fn with_budget(budget: CacheBudget) -> ReportCache {
        ReportCache {
            dir: None,
            map: ShardedLru::new(budget),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir`, created if missing, with an unbounded
    /// memory layer. Stale temporary files (`*.tmp.*` left behind by a
    /// crashed or killed writer) are swept on open; a live writer is
    /// never affected because every tmp name embeds the writing
    /// process's id and a per-process sequence number, and publication
    /// is a single atomic rename.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn with_dir(dir: &Path) -> io::Result<ReportCache> {
        ReportCache::with_dir_budget(dir, CacheBudget::unbounded())
    }

    /// [`ReportCache::with_dir`] with a bounded memory layer.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn with_dir_budget(dir: &Path, budget: CacheBudget) -> io::Result<ReportCache> {
        std::fs::create_dir_all(dir)?;
        let mut cache = ReportCache::with_budget(budget);
        cache.dir = Some(dir.to_path_buf());
        cache.sweep_tmp();
        Ok(cache)
    }

    /// Lookups answered from memory or disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (the optimizer had to run).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Memory-layer entries evicted (or rejected at admission) so far.
    pub fn evicted(&self) -> u64 {
        self.map.evicted()
    }

    /// Removes stale `*.tmp.*` files from the disk layer, if any. Safe
    /// against live writers (tmp names are single-writer and published
    /// by atomic rename); a no-op for purely in-memory caches. Called on
    /// open, and again by interrupted batch runs so a Ctrl-C never
    /// strands half-written entries for the next run to sweep.
    pub fn sweep_tmp(&self) {
        let Some(dir) = &self.dir else { return };
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().contains(".tmp.") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }

    fn entry_path(&self, key: u128) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:032x}.json")))
    }

    /// Fetches the report stored under `key`, consulting memory first and
    /// then the disk layer (promoting disk hits into memory).
    pub fn get(&self, key: u128) -> Option<Report> {
        self.get_traced(key, &NoopTracer)
    }

    /// [`ReportCache::get`] with hit/miss provenance counters
    /// (`cache.hit_memory`, `cache.hit_disk`, `cache.miss`) and a
    /// `cache.corrupt_entry` event when an on-disk entry had to be
    /// degraded to a miss.
    pub fn get_traced(&self, key: u128, tracer: &dyn Tracer) -> Option<Report> {
        if let Some(found) = self.map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            tracer.count("cache.hit_memory", 1);
            return Some(found);
        }
        match self.read_disk(key) {
            DiskRead::Hit(report, cost) => {
                let evicted = self.map.insert(key, report.clone(), cost);
                if evicted > 0 {
                    tracer.count("cache.evicted", evicted);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                tracer.count("cache.hit_disk", 1);
                return Some(report);
            }
            DiskRead::Miss => {}
            DiskRead::Corrupt(reason) => {
                // An unreadable entry silently costs a re-optimization;
                // surface it so corpus runs can see degraded caches.
                tracer.event(
                    "cache.corrupt_entry",
                    &[
                        ("key", Value::from(format!("{key:032x}"))),
                        ("reason", Value::from(reason)),
                    ],
                );
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        tracer.count("cache.miss", 1);
        None
    }

    fn read_disk(&self, key: u128) -> DiskRead {
        let Some(path) = self.entry_path(key) else {
            return DiskRead::Miss;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            // A missing file is the normal cold-cache case; any other
            // read failure is a degradation worth reporting.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => return DiskRead::Corrupt("unreadable"),
        };
        let Ok(doc) = Json::parse(&text) else {
            return DiskRead::Corrupt("invalid_json");
        };
        match Report::from_json(&doc) {
            Ok(report) => DiskRead::Hit(report, text.len() as u64),
            Err(_) => DiskRead::Corrupt("schema_mismatch"),
        }
    }

    /// Stores a freshly computed report under `key` in every layer.
    pub fn put(&self, key: u128, report: &Report) {
        self.put_traced(key, report, &NoopTracer);
    }

    /// [`ReportCache::put`] with `cache.write_failed` (best-effort disk
    /// stores that did not land) and `cache.evicted` (memory-layer
    /// entries shed to admit this one) counters.
    pub fn put_traced(&self, key: u128, report: &Report, tracer: &dyn Tracer) {
        // The serialized document is both the disk payload and the
        // memory-layer cost estimate (a report's heap footprint tracks
        // its JSON size closely enough for budgeting).
        let payload = report.to_json().to_string();
        let evicted = self.map.insert(key, report.clone(), payload.len() as u64);
        if evicted > 0 {
            tracer.count("cache.evicted", evicted);
        }
        if let Some(path) = self.entry_path(key) {
            // Atomic publish: never expose a half-written file to a
            // concurrent reader. Failures only cost future cache hits.
            //
            // The tmp name must be unique per *writer*, not just per
            // process: two threads storing the same key used to share one
            // pid-derived tmp path and interleave write/rename/remove,
            // publishing truncated or mixed files. A per-process atomic
            // sequence number makes every tmp path single-writer.
            let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
            let landed =
                std::fs::write(&tmp, payload).is_ok() && std::fs::rename(&tmp, &path).is_ok();
            if !landed {
                let _ = std::fs::remove_file(&tmp);
                tracer.count("cache.write_failed", 1);
            }
        }
    }
}

/// Per-process tmp-name disambiguator for [`ReportCache::put_traced`].
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Outcome of one disk-layer lookup (hits carry the entry's on-disk
/// size, reused as the memory-layer cost when the hit is promoted).
enum DiskRead {
    Hit(Report, u64),
    Miss,
    Corrupt(&'static str),
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa::{ExtractionKind, Round};
    use std::sync::Mutex;

    fn sample() -> Report {
        Report {
            initial_words: 40,
            final_words: 30,
            rounds: vec![Round {
                kind: ExtractionKind::Procedure { lr_save: false },
                body_words: 5,
                occurrences: 3,
                saved: 10,
                fragment_name: "__gpa_frag_0".into(),
            }],
        }
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = ReportCache::in_memory();
        assert!(cache.get(7).is_none());
        cache.put(7, &sample());
        assert_eq!(cache.get(7), Some(sample()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.evicted(), 0, "the default budget never evicts");
    }

    #[test]
    fn bounded_memory_layer_evicts_and_traces() {
        use gpa_trace::CounterTracer;
        // One entry per shard; same-shard keys force an eviction.
        let cache = ReportCache::with_budget(CacheBudget::bounded(crate::lru::SHARDS, u64::MAX));
        let shard_stride = crate::lru::SHARDS as u128;
        let tracer = CounterTracer::new();
        cache.put_traced(shard_stride, &sample(), &tracer);
        cache.put_traced(2 * shard_stride, &sample_sized(2), &tracer);
        assert_eq!(cache.evicted(), 1);
        assert_eq!(tracer.counters().get("cache.evicted"), 1);
        assert!(cache.get(shard_stride).is_none(), "LRU entry was shed");
        assert_eq!(cache.get(2 * shard_stride), Some(sample_sized(2)));
    }

    fn sample_sized(rounds: usize) -> Report {
        Report {
            initial_words: 100 * rounds,
            final_words: 90 * rounds,
            rounds: (0..rounds)
                .map(|i| Round {
                    kind: ExtractionKind::Procedure { lr_save: false },
                    body_words: 5 + i,
                    occurrences: 3,
                    saved: 10,
                    fragment_name: format!("__gpa_frag_{i}"),
                })
                .collect(),
        }
    }

    /// Deterministic regression for the shared-tmp-name race. Pre-fix,
    /// every `put` in a process derived the same `<key>.tmp.<pid>` path,
    /// so a second writer mid-`put` held an open handle to the very inode
    /// the first writer renamed into place — and its late bytes landed in
    /// the *published* entry. The rival thread here replays that
    /// interleaving exactly, with the scheduling pinned down: it opens the
    /// shared tmp path first, lets a full `put` run, then flushes. With
    /// per-writer sequence numbers the tmp path is private, so the rival's
    /// bytes land in an orphan file and the published entry stays intact.
    #[test]
    fn tmp_path_is_private_to_one_writer() {
        use std::io::Write;
        let dir = std::env::temp_dir().join(format!("gpa-cache-tmpname-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::with_dir(&dir).unwrap();
        let key = 0xfeed;
        let shared = dir.join(format!("{key:032x}.tmp.{}", std::process::id()));
        let mut rival = std::fs::File::create(&shared).unwrap();
        cache.put(key, &sample());
        rival.write_all(b"\0\0torn\0\0").unwrap();
        rival.sync_all().unwrap();
        drop(rival);
        let reread = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(
            reread.get(key),
            Some(sample()),
            "a published entry must be immune to writers of the shared tmp path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Stress companion to [`tmp_path_is_private_to_one_writer`]: many
    /// same-key writers and readers hammering one entry. Every read of
    /// the published path must parse to one of the stored variants, and
    /// the settled entry a later batch run reads must be a whole variant.
    #[test]
    fn concurrent_same_key_puts_never_corrupt_the_disk_entry() {
        use std::sync::atomic::AtomicBool;
        let dir = std::env::temp_dir().join(format!("gpa-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::with_dir(&dir).unwrap();
        let key = 0x5eed;
        let path = dir.join(format!("{key:032x}.json"));
        // Payloads big enough that writes and reads genuinely overlap,
        // small enough to keep the test quick.
        let variants: Vec<Report> = (1..=4).map(|r| sample_sized(r * 500)).collect();
        let done = AtomicBool::new(false);
        let corrupt = Mutex::new(None::<String>);
        std::thread::scope(|scope| {
            for variant in &variants {
                let cache = &cache;
                let done = &done;
                scope.spawn(move || {
                    for _ in 0..40 {
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        cache.put(key, variant);
                    }
                });
            }
            for _ in 0..6 {
                let (path, variants) = (&path, &variants);
                let (done, corrupt) = (&done, &corrupt);
                scope.spawn(move || {
                    let mut iteration = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        // Read the published path exactly as a fresh
                        // cache would; a missing file just means no
                        // writer has landed yet.
                        let Ok(bytes) = std::fs::read(path) else {
                            continue;
                        };
                        iteration += 1;
                        // Cheap structural probe first (the corruption
                        // window is narrow, so the sampling loop must be
                        // tight): a clean publish is a complete JSON
                        // object with no holes from interleaved writes.
                        let shape_ok = bytes.first() == Some(&b'{')
                            && bytes.last() == Some(&b'}')
                            && !bytes.contains(&0);
                        if !shape_ok {
                            *corrupt.lock().unwrap() =
                                Some(format!("torn entry ({} bytes)", bytes.len()));
                            done.store(true, Ordering::Relaxed);
                            break;
                        }
                        if !iteration.is_multiple_of(16) {
                            continue;
                        }
                        let parsed = String::from_utf8(bytes).ok().and_then(|text| {
                            Json::parse(&text)
                                .ok()
                                .and_then(|doc| Report::from_json(&doc).ok())
                        });
                        match parsed {
                            Some(found) if variants.contains(&found) => {}
                            _ => {
                                *corrupt.lock().unwrap() = Some("mixed document".into());
                                done.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            // Let writers finish, then release the readers.
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(800));
                done.store(true, Ordering::Relaxed);
            });
        });
        if let Some(reason) = corrupt.lock().unwrap().take() {
            panic!("published cache entry was observed corrupt: {reason}");
        }
        // And the settled entry a later batch run reads is one variant.
        let reread = ReportCache::with_dir(&dir).unwrap();
        let found = reread
            .get(key)
            .expect("the disk entry must be present and parsable");
        assert!(variants.contains(&found));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!("gpa-cache-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("0000.tmp.999.7");
        std::fs::write(&stale, "half-written").unwrap();
        let keep = dir.join(format!("{:032x}.json", 0x1u32));
        std::fs::write(&keep, sample().to_json().to_string()).unwrap();
        let _ = ReportCache::with_dir(&dir).unwrap();
        assert!(!stale.exists(), "stale tmp file must be swept");
        assert!(keep.exists(), "published entries must survive the sweep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_traced() {
        use gpa_trace::CounterTracer;
        let dir = std::env::temp_dir().join(format!("gpa-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::with_dir(&dir).unwrap();
        std::fs::write(dir.join(format!("{:032x}.json", 0x77u32)), "not json").unwrap();
        let tracer = CounterTracer::new();
        assert!(cache.get_traced(0x77, &tracer).is_none());
        let c = tracer.counters();
        assert_eq!(c.get("cache.corrupt_entry"), 1);
        assert_eq!(c.get("cache.miss"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_layer_survives_a_new_cache() {
        let dir = std::env::temp_dir().join(format!("gpa-report-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ReportCache::with_dir(&dir).unwrap();
            cache.put(0xabc, &sample());
        }
        let warm = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(warm.get(0xabc), Some(sample()));
        assert_eq!(warm.hits(), 1);
        // A corrupt entry is a miss, not an error.
        std::fs::write(dir.join(format!("{:032x}.json", 0xdefu32)), "not json").unwrap();
        assert!(warm.get(0xdef).is_none());
        assert_eq!(warm.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
