//! The report-level artifact cache.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpa::json::Json;
use gpa::Report;

/// A content-addressed cache of optimization results, keyed by
/// [`gpa::image_cache_key`].
///
/// Always has an in-memory layer (shared by every worker of a batch run);
/// with [`ReportCache::with_dir`] a second, on-disk layer persists
/// results across runs as `<dir>/<key as 32 hex digits>.json` files
/// holding the [`Report::to_json`] document.
///
/// The disk layer is best-effort and safe against concurrent writers:
/// files are written to a temporary name and atomically renamed into
/// place, and an unreadable or unparsable file (e.g. a stale schema after
/// an upgrade) counts as a miss rather than an error.
pub struct ReportCache {
    dir: Option<PathBuf>,
    map: Mutex<HashMap<u128, Report>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReportCache {
    /// A purely in-memory cache (one batch run's lifetime).
    pub fn in_memory() -> ReportCache {
        ReportCache {
            dir: None,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir`, created if missing.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn with_dir(dir: &Path) -> io::Result<ReportCache> {
        std::fs::create_dir_all(dir)?;
        let mut cache = ReportCache::in_memory();
        cache.dir = Some(dir.to_path_buf());
        Ok(cache)
    }

    /// Lookups answered from memory or disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (the optimizer had to run).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u128) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:032x}.json")))
    }

    /// Fetches the report stored under `key`, consulting memory first and
    /// then the disk layer (promoting disk hits into memory).
    pub fn get(&self, key: u128) -> Option<Report> {
        if let Some(found) = self.map.lock().expect("report cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(found.clone());
        }
        if let Some(report) = self.read_disk(key) {
            self.map
                .lock()
                .expect("report cache poisoned")
                .insert(key, report.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(report);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn read_disk(&self, key: u128) -> Option<Report> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let doc = Json::parse(&text).ok()?;
        Report::from_json(&doc).ok()
    }

    /// Stores a freshly computed report under `key` in every layer.
    pub fn put(&self, key: u128, report: &Report) {
        self.map
            .lock()
            .expect("report cache poisoned")
            .insert(key, report.clone());
        if let Some(path) = self.entry_path(key) {
            // Atomic publish: never expose a half-written file to a
            // concurrent reader. Failures only cost future cache hits.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            let payload = report.to_json().to_string();
            if std::fs::write(&tmp, payload).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa::{ExtractionKind, Round};

    fn sample() -> Report {
        Report {
            initial_words: 40,
            final_words: 30,
            rounds: vec![Round {
                kind: ExtractionKind::Procedure { lr_save: false },
                body_words: 5,
                occurrences: 3,
                saved: 10,
                fragment_name: "__gpa_frag_0".into(),
            }],
        }
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = ReportCache::in_memory();
        assert!(cache.get(7).is_none());
        cache.put(7, &sample());
        assert_eq!(cache.get(7), Some(sample()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disk_layer_survives_a_new_cache() {
        let dir = std::env::temp_dir().join(format!("gpa-report-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ReportCache::with_dir(&dir).unwrap();
            cache.put(0xabc, &sample());
        }
        let warm = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(warm.get(0xabc), Some(sample()));
        assert_eq!(warm.hits(), 1);
        // A corrupt entry is a miss, not an error.
        std::fs::write(dir.join(format!("{:032x}.json", 0xdefu32)), "not json").unwrap();
        assert!(warm.get(0xdef).is_none());
        assert_eq!(warm.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
