//! A sharded, cost-aware LRU map — the admission/eviction layer behind
//! the in-memory [`crate::ReportCache`].
//!
//! The batch pipeline's caches were historically unbounded: fine for a
//! one-shot run over a finite corpus, fatal for a resident `gpa serve`
//! process fed arbitrary traffic. [`ShardedLru`] bounds both the entry
//! count and the total estimated byte cost. Keys are spread over
//! [`SHARDS`] independently locked shards (the budget is divided
//! per-shard), so concurrent workers rarely contend, and each shard
//! evicts its own least-recently-used entries via a tick-ordered index.
//!
//! Admission control: an entry whose cost alone exceeds a shard's byte
//! budget is *rejected* rather than admitted-then-thrashed; rejections
//! count as evictions so the `cache.evicted` telemetry reflects every
//! entry the bound kept out of memory.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards (power of two; keys are
/// distributed by their low bits).
pub const SHARDS: usize = 8;

/// Capacity bounds for an in-memory cache layer.
///
/// The default is unbounded, which keeps historical batch behaviour
/// bit-for-bit; `gpa serve` always passes explicit bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum resident entries across all shards.
    pub max_entries: usize,
    /// Maximum total estimated cost (bytes) across all shards.
    pub max_bytes: u64,
}

impl CacheBudget {
    /// No bound at all (the historical in-memory cache).
    pub fn unbounded() -> CacheBudget {
        CacheBudget {
            max_entries: usize::MAX,
            max_bytes: u64::MAX,
        }
    }

    /// A bound on entries and bytes (either may be `usize::MAX` /
    /// `u64::MAX` for "unlimited on that axis").
    pub fn bounded(max_entries: usize, max_bytes: u64) -> CacheBudget {
        CacheBudget {
            max_entries,
            max_bytes,
        }
    }

    /// Whether this budget can never evict.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries == usize::MAX && self.max_bytes == u64::MAX
    }
}

impl Default for CacheBudget {
    fn default() -> CacheBudget {
        CacheBudget::unbounded()
    }
}

struct Shard<V> {
    /// key → (value, cost, recency tick of the last touch).
    map: HashMap<u128, (V, u64, u64)>,
    /// tick → key, ascending; the front is the LRU victim.
    recency: BTreeMap<u64, u128>,
    /// Total cost of the resident entries.
    bytes: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Shard<V> {
        Shard {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            bytes: 0,
        }
    }
}

impl<V> Shard<V> {
    fn evict_lru(&mut self) -> bool {
        let Some((&tick, &victim)) = self.recency.iter().next() else {
            return false;
        };
        self.recency.remove(&tick);
        if let Some((_, cost, _)) = self.map.remove(&victim) {
            // `bytes` is the sum of resident costs, so a victim's cost
            // can never exceed it — but if the map and recency index
            // ever desync, saturate rather than underflow (panic in
            // debug, wraparound-then-never-evict in release).
            debug_assert!(
                cost <= self.bytes,
                "shard byte accounting desynced: cost {cost} > bytes {}",
                self.bytes
            );
            self.bytes = self.bytes.saturating_sub(cost);
        } else {
            debug_assert!(false, "recency index pointed at a non-resident key");
        }
        true
    }
}

/// A sharded LRU map from `u128` content keys to cloneable values.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard bounds ([`CacheBudget`] divided by [`SHARDS`]).
    shard_entries: usize,
    shard_bytes: u64,
    tick: AtomicU64,
    evicted: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// An empty map under `budget`.
    pub fn new(budget: CacheBudget) -> ShardedLru<V> {
        // Ceil-divide so SHARDS × shard budget ≥ the requested budget;
        // a bounded budget always admits at least one entry per shard.
        let shard_entries = if budget.max_entries == usize::MAX {
            usize::MAX
        } else {
            (budget.max_entries.div_ceil(SHARDS)).max(1)
        };
        let shard_bytes = if budget.max_bytes == u64::MAX {
            u64::MAX
        } else {
            (budget.max_bytes.div_ceil(SHARDS as u64)).max(1)
        };
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_entries,
            shard_bytes,
            tick: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Fetches a clone of the value under `key`, marking it most
    /// recently used.
    pub fn get(&self, key: u128) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("lru shard poisoned");
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let (value, _, old) = shard.map.get_mut(&key)?;
        let value = value.clone();
        let old_tick = *old;
        *old = tick;
        shard.recency.remove(&old_tick);
        shard.recency.insert(tick, key);
        Some(value)
    }

    /// Stores `value` under `key` with the given cost estimate, evicting
    /// least-recently-used entries as needed. Returns the number of
    /// entries evicted (including a rejected oversize `value` itself).
    pub fn insert(&self, key: u128, value: V, cost: u64) -> u64 {
        if cost > self.shard_bytes {
            // Admission control: an entry that could never fit would only
            // flush the whole shard on its way to being evicted itself.
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return 1;
        }
        let mut shard = self.shard(key).lock().expect("lru shard poisoned");
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((old_value, old_cost, old_tick)) = shard.map.remove(&key) {
            let _ = old_value;
            shard.bytes -= old_cost;
            shard.recency.remove(&old_tick);
        }
        shard.map.insert(key, (value, cost, tick));
        shard.bytes += cost;
        shard.recency.insert(tick, key);
        let mut evictions = 0;
        while shard.map.len() > self.shard_entries || shard.bytes > self.shard_bytes {
            if !shard.evict_lru() {
                break;
            }
            evictions += 1;
        }
        self.evicted.fetch_add(evictions, Ordering::Relaxed);
        evictions
    }

    /// Total entries evicted (or rejected at admission) so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").map.len())
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys confined to one shard, so eviction order is observable.
    fn k(i: u128) -> u128 {
        i * SHARDS as u128
    }

    #[test]
    fn unbounded_never_evicts() {
        let lru: ShardedLru<String> = ShardedLru::new(CacheBudget::unbounded());
        for i in 0..1000u128 {
            lru.insert(i, format!("v{i}"), 1 << 20);
        }
        assert_eq!(lru.len(), 1000);
        assert_eq!(lru.evicted(), 0);
        assert_eq!(lru.get(999), Some("v999".to_owned()));
    }

    #[test]
    fn entry_bound_evicts_lru_not_recently_touched() {
        // One shard's worth of budget: SHARDS * 2 entries total.
        let lru: ShardedLru<u32> = ShardedLru::new(CacheBudget::bounded(2 * SHARDS, u64::MAX));
        lru.insert(k(1), 1, 1);
        lru.insert(k(2), 2, 1);
        assert_eq!(lru.get(k(1)), Some(1)); // touch 1 → 2 is now LRU
        lru.insert(k(3), 3, 1);
        assert_eq!(lru.evicted(), 1);
        assert_eq!(lru.get(k(2)), None, "the LRU entry was evicted");
        assert_eq!(lru.get(k(1)), Some(1));
        assert_eq!(lru.get(k(3)), Some(3));
    }

    #[test]
    fn byte_bound_and_oversize_rejection() {
        let lru: ShardedLru<u32> =
            ShardedLru::new(CacheBudget::bounded(usize::MAX, 100 * SHARDS as u64));
        lru.insert(k(1), 1, 60);
        lru.insert(k(2), 2, 60); // 120 > 100 → evict k(1)
        assert_eq!(lru.get(k(1)), None);
        assert_eq!(lru.get(k(2)), Some(2));
        assert_eq!(lru.evicted(), 1);
        // An entry that can never fit is rejected outright…
        assert_eq!(lru.insert(k(3), 3, 101), 1);
        assert_eq!(lru.get(k(3)), None);
        // …without disturbing what is resident.
        assert_eq!(lru.get(k(2)), Some(2));
    }

    #[test]
    fn evicting_down_to_an_empty_shard_zeroes_the_accounting() {
        // One entry per shard; every insert after the first evicts its
        // predecessor, repeatedly draining the shard to empty without
        // tripping the byte-accounting invariant.
        let lru: ShardedLru<u32> =
            ShardedLru::new(CacheBudget::bounded(SHARDS, 10 * SHARDS as u64));
        for i in 1..=50u128 {
            lru.insert(k(i), i as u32, 10);
        }
        assert_eq!(lru.evicted(), 49);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(k(50)), Some(50));
        {
            let mut shard = lru.shard(k(50)).lock().unwrap();
            assert_eq!(shard.bytes, 10);
            assert!(shard.evict_lru(), "one resident entry to evict");
            assert_eq!(shard.bytes, 0, "empty shard accounts zero bytes");
            assert!(shard.map.is_empty() && shard.recency.is_empty());
            assert!(!shard.evict_lru(), "empty shard has no victim");
            assert_eq!(shard.bytes, 0);
        }
        assert_eq!(lru.get(k(50)), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn replacing_a_key_accounts_cost_once() {
        let lru: ShardedLru<u32> =
            ShardedLru::new(CacheBudget::bounded(usize::MAX, 100 * SHARDS as u64));
        lru.insert(k(1), 1, 90);
        lru.insert(k(1), 2, 40);
        lru.insert(k(2), 3, 60); // 40 + 60 fits exactly
        assert_eq!(lru.evicted(), 0);
        assert_eq!(lru.get(k(1)), Some(2));
        assert_eq!(lru.get(k(2)), Some(3));
    }
}
