//! Corpus-scale batch optimization (`gpa batch`).
//!
//! The single-shot [`gpa::Optimizer`] answers "how small does *this*
//! binary get?". Evaluating procedural abstraction the way the paper does
//! — across a benchmark corpus, re-running as the toolchain changes —
//! asks a different question, and this crate is its engine:
//!
//! * **Batch driver** ([`run_batch`]) — a bounded worker pool (default
//!   [`std::thread::available_parallelism`]) pulls images off a shared
//!   queue and optimizes each one independently. Results are merged by
//!   *input index*, so the deterministic section of the corpus report is
//!   byte-identical no matter how many workers ran or how the scheduler
//!   interleaved them.
//! * **Content-addressed artifact cache** — two layers of reuse. Whole
//!   results: [`gpa::image_cache_key`] addresses a serialized
//!   [`gpa::Report`] in a [`ReportCache`] (in-memory, plus an optional
//!   on-disk layer shared across runs). Within a run, every worker shares
//!   one [`gpa::DfgCache`], so blocks the optimizer re-sees — across
//!   rounds, occurrences and *images* (every MiniC binary carries the
//!   same runtime) — skip DFG and reachability construction.
//! * **Per-stage metrics** — decode, DFG build, mining, MIS, extraction
//!   and validation wall time ([`gpa::StageTimings`]) plus cache hit/miss
//!   counters, reported per image and corpus-wide in the machine-readable
//!   JSON corpus report ([`CorpusReport::to_json`]).
//!
//! The report separates a *deterministic* section (inputs, keys,
//! per-image reports, totals) from a *metrics* section (timings, cache
//! counters, worker count): `to_json(false)` compares byte-for-byte
//! between a cold and a warm run, or between `--jobs 1` and `--jobs 8`,
//! which is exactly what the regression tests assert.
//!
//! # Examples
//!
//! ```
//! use gpa_pipeline::{run_batch, BatchConfig, BatchInput};
//!
//! let opts = gpa_minicc::Options::default();
//! let inputs = vec![
//!     BatchInput::loaded("crc", gpa_minicc::compile_benchmark("crc", &opts)?),
//!     BatchInput::loaded("sha", gpa_minicc::compile_benchmark("sha", &opts)?),
//! ];
//! let corpus = run_batch(&inputs, &BatchConfig::default())?;
//! assert_eq!(corpus.error_count(), 0);
//! assert!(corpus.total_saved_words() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod batch;
mod cache;
mod lru;
mod report;
mod shutdown;

pub use batch::{expand_inputs, run_batch, BatchConfig, BatchInput};
pub use cache::ReportCache;
pub use lru::{CacheBudget, ShardedLru};
pub use report::{CorpusReport, ImageEntry, CORPUS_SCHEMA};
pub use shutdown::ShutdownFlag;
