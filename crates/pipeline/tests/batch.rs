//! Corpus-level regression tests: determinism across worker counts,
//! agreement with the single-shot optimizer, and cache-warm identity.
//!
//! Validation is pinned to [`ValidateLevel::Off`] here — the translation
//! validator has its own end-to-end suite (`tests/verify_pipeline.rs` at
//! the workspace root), and these tests assert pipeline properties, not
//! rewrite soundness.

use gpa::{Method, Optimizer, RunConfig, ValidateLevel};
use gpa_pipeline::{run_batch, BatchConfig, BatchInput};

fn kernel_inputs(names: &[&str]) -> Vec<BatchInput> {
    names
        .iter()
        .map(|name| {
            let image =
                gpa_minicc::compile_benchmark(name, &gpa_minicc::Options::default()).unwrap();
            BatchInput::loaded(*name, image)
        })
        .collect()
}

fn fast_config() -> BatchConfig {
    BatchConfig {
        run: RunConfig {
            validate: ValidateLevel::Off,
            ..RunConfig::default()
        },
        ..BatchConfig::default()
    }
}

/// The deterministic report section is byte-identical no matter how many
/// workers the pool ran — the core acceptance criterion of the batch
/// engine, asserted over the full 8-kernel corpus.
#[test]
fn batch_is_deterministic_across_job_counts() {
    let inputs = kernel_inputs(&gpa_minicc::programs::BENCHMARKS);
    let corpus_of = |jobs: usize| {
        run_batch(
            &inputs,
            &BatchConfig {
                jobs,
                ..fast_config()
            },
        )
        .unwrap()
    };
    let sequential = corpus_of(1);
    let parallel = corpus_of(4);
    assert_eq!(
        sequential.to_json(false).to_string(),
        parallel.to_json(false).to_string()
    );
    assert_eq!(sequential.error_count(), 0);
    assert!(sequential.total_saved_words() > 0);
}

/// Batch savings per image equal what a direct `Optimizer::run_with`
/// reports: the pipeline adds caching and parallelism, never different
/// results.
#[test]
fn batch_matches_single_shot_optimizer() {
    let inputs = kernel_inputs(&["crc", "sha", "bitcnts"]);
    let config = fast_config();
    let corpus = run_batch(&inputs, &config).unwrap();
    for (input, entry) in inputs.iter().zip(&corpus.images) {
        let BatchInput::Loaded(name, image) = input else {
            unreachable!()
        };
        let mut opt = Optimizer::from_image(image).unwrap();
        let direct = opt.run_with(Method::Edgar, &config.run).unwrap();
        assert_eq!(entry.outcome.as_ref(), Ok(&direct), "{name}");
    }
}

/// A second run against the same on-disk cache answers from the cache and
/// reports the identical deterministic section.
#[test]
fn warm_cache_run_is_identical_and_hits() {
    let inputs = kernel_inputs(&["dijkstra", "qsort"]);
    let dir = std::env::temp_dir().join(format!("gpa-batch-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = BatchConfig {
        cache_dir: Some(dir.clone()),
        ..fast_config()
    };
    let cold = run_batch(&inputs, &config).unwrap();
    let warm = run_batch(&inputs, &config).unwrap();
    assert_eq!(
        cold.to_json(false).to_string(),
        warm.to_json(false).to_string()
    );
    assert_eq!(warm.report_cache_hits, inputs.len() as u64);
    assert_eq!(warm.report_cache_misses, 0);
    assert!(warm.images.iter().all(|e| e.cached));
    assert!(cold.images.iter().all(|e| !e.cached));
    // The DFG cache sees traffic on the cold pass (shared runtime blocks
    // recur across rounds and images).
    assert!(cold.dfg_cache_misses > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace-dir` writes one parsable `gpa-trace/1` JSONL file per input,
/// folds per-image counters into the corpus metrics, and leaves the
/// deterministic report section byte-identical to an untraced run.
#[test]
fn trace_dir_writes_jsonl_and_never_changes_reports() {
    use gpa::json::Json;
    let inputs = kernel_inputs(&["crc", "sha"]);
    let dir = std::env::temp_dir().join(format!("gpa-batch-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let untraced = run_batch(&inputs, &fast_config()).unwrap();
    let traced = run_batch(
        &inputs,
        &BatchConfig {
            trace_dir: Some(dir.clone()),
            ..fast_config()
        },
    )
    .unwrap();
    assert_eq!(
        untraced.to_json(false).to_string(),
        traced.to_json(false).to_string(),
        "tracing must not change the deterministic section"
    );
    for (index, entry) in traced.images.iter().enumerate() {
        // One trace file per input slot, every line a complete JSON
        // object, header first and counter summary last.
        let file = dir.join(format!("{index:04}-{}.jsonl", entry.name));
        let text = std::fs::read_to_string(&file).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "{}", entry.name);
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("{}: {e}: {line}", entry.name));
        }
        assert!(lines[0].contains("\"schema\":\"gpa-trace/1\""));
        assert!(lines[lines.len() - 1].contains("\"ev\":\"counters\""));
        // The entry carries the counters, and the mining identity holds.
        let c = &entry.counters;
        assert!(c.get("mine.patterns_visited") > 0, "{}", entry.name);
        assert_eq!(
            c.get("mine.patterns_visited"),
            c.get("mine.expanded")
                + c.get("mine.subtree_skipped")
                + c.get("mine.stopped_max_nodes"),
            "{}",
            entry.name
        );
    }
    // The aggregate lands in the metrics object, not the bare section.
    let metrics = traced.to_json(true);
    let trace = metrics
        .get("metrics")
        .and_then(|m| m.get("trace"))
        .expect("aggregated trace counters in metrics");
    assert!(trace.get("mine.patterns_visited").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `mining_threads` feeds the partitioned lattice search and must not
/// change any report.
#[test]
fn mining_threads_do_not_change_results() {
    let inputs = kernel_inputs(&["search", "patricia"]);
    let corpus_of = |mining_threads: usize| {
        let mut config = fast_config();
        config.jobs = 1;
        config.run.mining_threads = mining_threads;
        run_batch(&inputs, &config).unwrap()
    };
    assert_eq!(
        corpus_of(1).to_json(false).to_string(),
        corpus_of(4).to_json(false).to_string()
    );
}

/// The determinism matrix for the parallel front-end: the deterministic
/// report section is byte-identical across `front_threads` ∈ {1, 2, 8}
/// on the full 8-kernel corpus. Decode and per-block DFG builds fan out
/// over a pool, but the arena graphs are assembled in input order, so
/// thread count must never leak into any report.
#[test]
fn front_threads_determinism_matrix() {
    let inputs = kernel_inputs(&gpa_minicc::programs::BENCHMARKS);
    let corpus_of = |front_threads: usize| {
        let mut config = fast_config();
        config.jobs = 1;
        config.run.front_threads = front_threads;
        run_batch(&inputs, &config).unwrap()
    };
    let baseline = corpus_of(1);
    assert_eq!(baseline.error_count(), 0);
    assert!(baseline.total_saved_words() > 0);
    let expected = baseline.to_json(false).to_string();
    for front_threads in [2, 8] {
        assert_eq!(
            corpus_of(front_threads).to_json(false).to_string(),
            expected,
            "front_threads={front_threads} changed the deterministic section"
        );
    }
}

/// A shutdown flag raised before the pool starts: every input is an
/// `"interrupted"` error entry, the document carries the
/// `"interrupted": true` marker, and the exit is a partial — not
/// poisoned — report.
#[test]
fn pre_raised_shutdown_interrupts_every_input() {
    use gpa_pipeline::ShutdownFlag;
    let inputs = kernel_inputs(&["crc", "sha"]);
    let config = BatchConfig {
        shutdown: ShutdownFlag::new(),
        ..fast_config()
    };
    config.shutdown.raise();
    let corpus = run_batch(&inputs, &config).unwrap();
    assert!(corpus.interrupted);
    assert_eq!(corpus.images.len(), inputs.len());
    for entry in &corpus.images {
        assert_eq!(
            entry.outcome.as_ref().err().map(String::as_str),
            Some("interrupted")
        );
    }
    let doc = corpus.to_json(false).to_string();
    assert!(
        doc.contains("\"interrupted\":true"),
        "partial report must carry the marker: {doc}"
    );
    // An un-raised flag run of the same inputs has no marker at all.
    let clean = run_batch(&inputs, &fast_config()).unwrap();
    assert!(!clean.interrupted);
    assert!(!clean.to_json(false).to_string().contains("interrupted"));
}

/// A flag raised while the pool is already running: in-flight images
/// finish normally, so every entry is either a real result or a clean
/// `"interrupted"` error — never a torn one — and the report is marked.
#[test]
fn mid_run_shutdown_finishes_in_flight_images() {
    use gpa_pipeline::ShutdownFlag;
    let inputs = kernel_inputs(&gpa_minicc::programs::BENCHMARKS);
    let config = BatchConfig {
        jobs: 1,
        shutdown: ShutdownFlag::new(),
        ..fast_config()
    };
    let flag = config.shutdown.clone();
    let raiser = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        flag.raise();
    });
    let corpus = run_batch(&inputs, &config).unwrap();
    raiser.join().unwrap();
    assert!(corpus.interrupted);
    for entry in &corpus.images {
        match &entry.outcome {
            Ok(report) => assert!(report.initial_words > 0, "{}", entry.name),
            Err(message) => assert_eq!(message, "interrupted", "{}", entry.name),
        }
    }
    assert!(corpus
        .to_json(false)
        .to_string()
        .contains("\"interrupted\":true"));
}

/// A bounded in-memory cache that is large enough never to evict keeps
/// the warm pass byte-identical to the cold one; a pathologically tiny
/// budget evicts (and says so in the metrics) but still never changes
/// any report.
#[test]
fn bounded_cache_budget_preserves_results() {
    use gpa_pipeline::CacheBudget;
    let inputs = kernel_inputs(&["dijkstra", "qsort", "crc"]);
    let unbounded = run_batch(&inputs, &fast_config()).unwrap();
    assert_eq!(unbounded.report_cache_evicted, 0);

    let roomy = BatchConfig {
        cache_budget: CacheBudget::bounded(1024, 64 << 20),
        ..fast_config()
    };
    let cold = run_batch(&inputs, &roomy).unwrap();
    assert_eq!(
        unbounded.to_json(false).to_string(),
        cold.to_json(false).to_string(),
        "a roomy bound must not change the deterministic section"
    );
    assert_eq!(cold.report_cache_evicted, 0);

    // One entry per shard at most, and almost no byte budget: the
    // memory layer thrashes, the reports do not.
    let tiny = BatchConfig {
        cache_budget: CacheBudget::bounded(1, 64),
        ..fast_config()
    };
    let thrashed = run_batch(&inputs, &tiny).unwrap();
    assert_eq!(
        unbounded.to_json(false).to_string(),
        thrashed.to_json(false).to_string(),
        "eviction must never change the deterministic section"
    );
    assert!(thrashed.report_cache_evicted > 0);
    let metrics = thrashed.to_json(true);
    let evicted = metrics
        .get("metrics")
        .and_then(|m| m.get("report_cache"))
        .and_then(|c| c.get("evicted"))
        .and_then(gpa::json::Json::as_int);
    assert_eq!(evicted, Some(thrashed.report_cache_evicted as i64));
}
