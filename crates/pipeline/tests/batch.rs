//! Corpus-level regression tests: determinism across worker counts,
//! agreement with the single-shot optimizer, and cache-warm identity.
//!
//! Validation is pinned to [`ValidateLevel::Off`] here — the translation
//! validator has its own end-to-end suite (`tests/verify_pipeline.rs` at
//! the workspace root), and these tests assert pipeline properties, not
//! rewrite soundness.

use gpa::{Method, Optimizer, RunConfig, ValidateLevel};
use gpa_pipeline::{run_batch, BatchConfig, BatchInput};

fn kernel_inputs(names: &[&str]) -> Vec<BatchInput> {
    names
        .iter()
        .map(|name| {
            let image =
                gpa_minicc::compile_benchmark(name, &gpa_minicc::Options::default()).unwrap();
            BatchInput::loaded(*name, image)
        })
        .collect()
}

fn fast_config() -> BatchConfig {
    BatchConfig {
        run: RunConfig {
            validate: ValidateLevel::Off,
            ..RunConfig::default()
        },
        ..BatchConfig::default()
    }
}

/// The deterministic report section is byte-identical no matter how many
/// workers the pool ran — the core acceptance criterion of the batch
/// engine, asserted over the full 8-kernel corpus.
#[test]
fn batch_is_deterministic_across_job_counts() {
    let inputs = kernel_inputs(&gpa_minicc::programs::BENCHMARKS);
    let corpus_of = |jobs: usize| {
        run_batch(
            &inputs,
            &BatchConfig {
                jobs,
                ..fast_config()
            },
        )
        .unwrap()
    };
    let sequential = corpus_of(1);
    let parallel = corpus_of(4);
    assert_eq!(
        sequential.to_json(false).to_string(),
        parallel.to_json(false).to_string()
    );
    assert_eq!(sequential.error_count(), 0);
    assert!(sequential.total_saved_words() > 0);
}

/// Batch savings per image equal what a direct `Optimizer::run_with`
/// reports: the pipeline adds caching and parallelism, never different
/// results.
#[test]
fn batch_matches_single_shot_optimizer() {
    let inputs = kernel_inputs(&["crc", "sha", "bitcnts"]);
    let config = fast_config();
    let corpus = run_batch(&inputs, &config).unwrap();
    for (input, entry) in inputs.iter().zip(&corpus.images) {
        let BatchInput::Loaded(name, image) = input else {
            unreachable!()
        };
        let mut opt = Optimizer::from_image(image).unwrap();
        let direct = opt.run_with(Method::Edgar, &config.run).unwrap();
        assert_eq!(entry.outcome.as_ref(), Ok(&direct), "{name}");
    }
}

/// A second run against the same on-disk cache answers from the cache and
/// reports the identical deterministic section.
#[test]
fn warm_cache_run_is_identical_and_hits() {
    let inputs = kernel_inputs(&["dijkstra", "qsort"]);
    let dir = std::env::temp_dir().join(format!("gpa-batch-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = BatchConfig {
        cache_dir: Some(dir.clone()),
        ..fast_config()
    };
    let cold = run_batch(&inputs, &config).unwrap();
    let warm = run_batch(&inputs, &config).unwrap();
    assert_eq!(
        cold.to_json(false).to_string(),
        warm.to_json(false).to_string()
    );
    assert_eq!(warm.report_cache_hits, inputs.len() as u64);
    assert_eq!(warm.report_cache_misses, 0);
    assert!(warm.images.iter().all(|e| e.cached));
    assert!(cold.images.iter().all(|e| !e.cached));
    // The DFG cache sees traffic on the cold pass (shared runtime blocks
    // recur across rounds and images).
    assert!(cold.dfg_cache_misses > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `mining_threads` feeds the partitioned lattice search and must not
/// change any report.
#[test]
fn mining_threads_do_not_change_results() {
    let inputs = kernel_inputs(&["search", "patricia"]);
    let corpus_of = |mining_threads: usize| {
        let mut config = fast_config();
        config.jobs = 1;
        config.run.mining_threads = mining_threads;
        run_batch(&inputs, &config).unwrap()
    };
    assert_eq!(
        corpus_of(1).to_json(false).to_string(),
        corpus_of(4).to_json(false).to_string()
    );
}
