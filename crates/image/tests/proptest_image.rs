//! Property tests: image serialization round-trips and address queries.

use gpa_image::{Image, Symbol};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (
        (0u32..0x1000).prop_map(|b| b * 4),
        0u32..0x10_0000,
        proptest::collection::vec(any::<u32>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..300),
        proptest::collection::vec(
            (
                "[a-z_][a-z0-9_]{0,12}",
                any::<u32>(),
                any::<u32>(),
                any::<bool>(),
                any::<bool>(),
            ),
            0..10,
        ),
    )
        .prop_map(|(code_base, data_base, code, data, symbols)| {
            let mut image = Image::new(code_base, data_base);
            for w in code {
                image.push_code_word(w);
            }
            image.push_data(&data);
            for (name, addr, size, is_func, taken) in symbols {
                let mut sym = if is_func {
                    Symbol::function(name, addr, size)
                } else {
                    Symbol::object(name, addr, size)
                };
                if taken {
                    sym = sym.with_address_taken();
                }
                image.add_symbol(sym);
            }
            image.set_entry(code_base);
            image
        })
}

proptest! {
    #[test]
    fn serialization_round_trips(image in arb_image()) {
        let bytes = image.to_bytes();
        let back = Image::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, image);
    }

    #[test]
    fn truncation_never_panics(image in arb_image(), cut in 0usize..64) {
        let mut bytes = image.to_bytes();
        let n = bytes.len().saturating_sub(cut);
        bytes.truncate(n);
        let _ = Image::from_bytes(&bytes); // Ok or Err, never panic.
    }

    #[test]
    fn code_word_lookup_is_consistent(image in arb_image()) {
        for (i, &w) in image.code_words().iter().enumerate() {
            let addr = image.code_base() + 4 * i as u32;
            prop_assert!(image.contains_code(addr));
            prop_assert_eq!(image.code_word_at(addr), Some(w));
        }
        prop_assert_eq!(image.code_word_at(image.code_end()), None);
        if image.code_base() > 0 {
            prop_assert_eq!(image.code_word_at(image.code_base() - 4), None);
        }
    }
}
