//! The statically linked binary image format shared by the linker, the
//! emulator and the post-link-time rewriting pipeline.
//!
//! An [`Image`] is what the paper's framework operates on: a code section of
//! 32-bit words (instructions *and* interwoven literal-pool data), a data
//! section of raw bytes, a symbol table, and an entry point. Images can be
//! serialized to a simple container format ([`Image::to_bytes`] /
//! [`Image::from_bytes`]) so that compiled benchmarks can be written to disk
//! and re-read like real binaries.
//!
//! The rewriting pipeline receives *no* structural hints beyond the symbol
//! table: which code words are data (literal pools) is rediscovered from
//! pc-relative loads, exactly as described in the paper (Fig. 10).
//!
//! # Examples
//!
//! ```
//! use gpa_image::{Image, Symbol, SymbolKind};
//!
//! let mut image = Image::new(0x8000, 0x2_0000);
//! image.push_code_word(0xe3a0_0000); // mov r0, #0
//! image.push_code_word(0xef00_0000); // swi #0 (exit)
//! image.add_symbol(Symbol::function("_start", 0x8000, 8));
//! image.set_entry(0x8000);
//!
//! let bytes = image.to_bytes();
//! let back = Image::from_bytes(&bytes)?;
//! assert_eq!(back.code_words(), image.code_words());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

/// What a symbol names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymbolKind {
    /// A function entry point in the code section.
    Function,
    /// A data object.
    Object,
}

/// A symbol-table entry.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Absolute address.
    pub addr: u32,
    /// Size in bytes (0 when unknown).
    pub size: u32,
    /// Function or object.
    pub kind: SymbolKind,
    /// Whether the symbol's address escapes into data or registers
    /// (function pointers). Address-taken functions constrain the
    /// rewriting pipeline the way the paper's points-to analysis does.
    pub address_taken: bool,
}

impl Symbol {
    /// Creates a function symbol.
    pub fn function(name: impl Into<String>, addr: u32, size: u32) -> Symbol {
        Symbol {
            name: name.into(),
            addr,
            size,
            kind: SymbolKind::Function,
            address_taken: false,
        }
    }

    /// Creates a data-object symbol.
    pub fn object(name: impl Into<String>, addr: u32, size: u32) -> Symbol {
        Symbol {
            name: name.into(),
            addr,
            size,
            kind: SymbolKind::Object,
            address_taken: false,
        }
    }

    /// Marks the symbol as address-taken and returns it.
    pub fn with_address_taken(mut self) -> Symbol {
        self.address_taken = true;
        self
    }
}

/// Error produced when deserializing a malformed image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageFormatError(String);

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed image: {}", self.0)
    }
}

impl std::error::Error for ImageFormatError {}

/// A statically linked program image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Image {
    code_base: u32,
    code: Vec<u32>,
    data_base: u32,
    data: Vec<u8>,
    symbols: Vec<Symbol>,
    entry: u32,
}

impl Image {
    /// Creates an empty image with the given section base addresses.
    ///
    /// # Panics
    ///
    /// Panics if `code_base` is not word-aligned.
    pub fn new(code_base: u32, data_base: u32) -> Image {
        assert_eq!(code_base % 4, 0, "code base must be word-aligned");
        Image {
            code_base,
            code: Vec::new(),
            data_base,
            data: Vec::new(),
            symbols: Vec::new(),
            entry: code_base,
        }
    }

    /// Base address of the code section.
    pub fn code_base(&self) -> u32 {
        self.code_base
    }

    /// Base address of the data section.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The code section as 32-bit words.
    pub fn code_words(&self) -> &[u32] {
        &self.code
    }

    /// The data section bytes.
    pub fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the program entry point.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// The symbol table, in insertion order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Appends a word to the code section and returns its address.
    pub fn push_code_word(&mut self, word: u32) -> u32 {
        let addr = self.code_end();
        self.code.push(word);
        addr
    }

    /// Appends raw bytes to the data section and returns the start address.
    pub fn push_data(&mut self, bytes: &[u8]) -> u32 {
        let addr = self.data_end();
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Adds a symbol-table entry.
    pub fn add_symbol(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// One past the last code address.
    pub fn code_end(&self) -> u32 {
        self.code_base + 4 * self.code.len() as u32
    }

    /// One past the last data address.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Number of 32-bit words in the code section.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Whether `addr` lies in the code section.
    pub fn contains_code(&self, addr: u32) -> bool {
        addr >= self.code_base && addr < self.code_end()
    }

    /// Reads the code word at an absolute address.
    ///
    /// Returns `None` when `addr` is unaligned or outside the code section.
    pub fn code_word_at(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) || !self.contains_code(addr) {
            return None;
        }
        Some(self.code[((addr - self.code_base) / 4) as usize])
    }

    /// Replaces the entire code section (used by the rewriting pipeline when
    /// emitting the compacted program).
    pub fn set_code(&mut self, words: Vec<u32>) {
        self.code = words;
    }

    /// Replaces the symbol table.
    pub fn set_symbols(&mut self, symbols: Vec<Symbol>) {
        self.symbols = symbols;
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// The function symbol covering `addr`, when the symbol has a size.
    pub fn function_at(&self, addr: u32) -> Option<&Symbol> {
        self.symbols.iter().find(|s| {
            s.kind == SymbolKind::Function && addr >= s.addr && addr < s.addr + s.size.max(4)
        })
    }

    /// Serializes the image to the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"GPA1");
        push_u32(&mut out, self.code_base);
        push_u32(&mut out, self.data_base);
        push_u32(&mut out, self.entry);
        push_u32(&mut out, self.code.len() as u32);
        push_u32(&mut out, self.data.len() as u32);
        push_u32(&mut out, self.symbols.len() as u32);
        for &w in &self.code {
            push_u32(&mut out, w);
        }
        out.extend_from_slice(&self.data);
        for sym in &self.symbols {
            push_u32(&mut out, sym.name.len() as u32);
            out.extend_from_slice(sym.name.as_bytes());
            push_u32(&mut out, sym.addr);
            push_u32(&mut out, sym.size);
            out.push(match sym.kind {
                SymbolKind::Function => 0,
                SymbolKind::Object => 1,
            });
            out.push(sym.address_taken as u8);
        }
        out
    }

    /// Deserializes an image produced by [`Image::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageFormatError`] on a bad magic number, truncation, or
    /// invalid field values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, ImageFormatError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != b"GPA1" {
            return Err(ImageFormatError("bad magic".into()));
        }
        let code_base = r.u32()?;
        let data_base = r.u32()?;
        let entry = r.u32()?;
        let code_len = r.u32()? as usize;
        let data_len = r.u32()? as usize;
        let sym_len = r.u32()? as usize;
        if code_base % 4 != 0 {
            return Err(ImageFormatError("unaligned code base".into()));
        }
        let mut code = Vec::with_capacity(code_len.min(1 << 24));
        for _ in 0..code_len {
            code.push(r.u32()?);
        }
        let data = r.take(data_len)?.to_vec();
        let mut symbols = Vec::with_capacity(sym_len.min(1 << 20));
        for _ in 0..sym_len {
            let name_len = r.u32()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| ImageFormatError("symbol name is not UTF-8".into()))?;
            let addr = r.u32()?;
            let size = r.u32()?;
            let kind = match r.u8()? {
                0 => SymbolKind::Function,
                1 => SymbolKind::Object,
                k => return Err(ImageFormatError(format!("bad symbol kind {k}"))),
            };
            let address_taken = r.u8()? != 0;
            symbols.push(Symbol {
                name,
                addr,
                size,
                kind,
                address_taken,
            });
        }
        Ok(Image {
            code_base,
            code,
            data_base,
            data,
            symbols,
            entry,
        })
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        if self.pos + n > self.bytes.len() {
            return Err(ImageFormatError("truncated image".into()));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        let mut image = Image::new(0x8000, 0x2_0000);
        image.push_code_word(0xe3a0_0000);
        image.push_code_word(0xe280_0001);
        image.push_code_word(0xef00_0000);
        image.push_data(b"hello\0");
        image.add_symbol(Symbol::function("_start", 0x8000, 12));
        image.add_symbol(Symbol::object("msg", 0x2_0000, 6));
        image.add_symbol(Symbol::function("cb", 0x8008, 4).with_address_taken());
        image.set_entry(0x8000);
        image
    }

    #[test]
    fn address_arithmetic() {
        let image = sample();
        assert_eq!(image.code_end(), 0x800c);
        assert_eq!(image.data_end(), 0x2_0006);
        assert!(image.contains_code(0x8008));
        assert!(!image.contains_code(0x800c));
        assert_eq!(image.code_word_at(0x8004), Some(0xe280_0001));
        assert_eq!(image.code_word_at(0x8005), None);
        assert_eq!(image.code_word_at(0x7ffc), None);
    }

    #[test]
    fn symbol_lookup() {
        let image = sample();
        assert_eq!(image.symbol("msg").unwrap().addr, 0x2_0000);
        assert!(image.symbol("nope").is_none());
        assert_eq!(image.function_at(0x8004).unwrap().name, "_start");
        assert_eq!(image.function_at(0x8008).unwrap().name, "_start");
        assert!(image.symbol("cb").unwrap().address_taken);
    }

    #[test]
    fn serialization_round_trip() {
        let image = sample();
        let bytes = image.to_bytes();
        let back = Image::from_bytes(&bytes).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Image::from_bytes(b"").is_err());
        assert!(Image::from_bytes(b"NOPE").is_err());
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Image::from_bytes(&bytes).is_err());
        let mut bad_magic = sample().to_bytes();
        bad_magic[0] = b'X';
        assert!(Image::from_bytes(&bad_magic).is_err());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_code_base_panics() {
        let _ = Image::new(0x8001, 0);
    }
}
