//! Property tests for the absint-driven MEM-edge relaxation: every
//! relaxed pair must be independently re-derivable by the validator's
//! V107 primitive, every linearization of the relaxed DFG must execute
//! to the same concrete machine state as program order, and building
//! without an oracle (`AliasLevel::Off`) must reproduce the conservative
//! graph bit-for-bit.

use proptest::prelude::*;

use gpa::trace::trace_equivalent;
use gpa_arm::{Instruction, Reg};
use gpa_cfg::{FunctionCode, Item};
use gpa_dfg::{
    build_dfg_from_items, build_dfg_from_items_with, AliasBase, AliasInterval, AliasOracle, Dfg,
    LabelMode,
};
use gpa_emu::Machine;
use gpa_image::Image;
use gpa_verify::absint::{self, sym_def_index};
use gpa_verify::{AbsInt, AccessBase};

/// One straight-line op: concrete enough to execute on the emulator,
/// abstract enough for every access to resolve to an `sp`-relative
/// interval.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `mov rD, #imm`
    MovImm(u8, u32),
    /// `add rD, rD, #imm`
    AddImm(u8, u32),
    /// `str rD, [sp, #off]`
    StoreWord(u8, i64),
    /// `ldr rD, [sp, #off]`
    LoadWord(u8, i64),
    /// `strb rD, [sp, #off]`
    StoreByte(u8, i64),
    /// `ldrb rD, [sp, #off]`
    LoadByte(u8, i64),
}

impl Op {
    fn text(self) -> String {
        match self {
            Op::MovImm(rd, imm) => format!("mov r{rd}, #{imm}"),
            Op::AddImm(rd, imm) => format!("add r{rd}, r{rd}, #{imm}"),
            Op::StoreWord(rd, off) => format!("str r{rd}, [sp, #{off}]"),
            Op::LoadWord(rd, off) => format!("ldr r{rd}, [sp, #{off}]"),
            Op::StoreByte(rd, off) => format!("strb r{rd}, [sp, #{off}]"),
            Op::LoadByte(rd, off) => format!("ldrb r{rd}, [sp, #{off}]"),
        }
    }

    fn insn(self) -> Instruction {
        self.text().parse().unwrap()
    }

    fn item(self) -> Item {
        Item::Insn(self.insn())
    }
}

/// Word slots at 0/4/8 plus byte slots anywhere in 0..12 give the fuzzer
/// both provably disjoint pairs and genuinely overlapping ones (a byte
/// poked into the middle of a word slot must keep its MEM edge).
fn arb_op() -> impl Strategy<Value = Op> {
    let reg = 0u8..4;
    let word_off = (0i64..3).prop_map(|k| k * 4);
    prop_oneof![
        (reg.clone(), 0u32..256).prop_map(|(r, v)| Op::MovImm(r, v)),
        (reg.clone(), 1u32..64).prop_map(|(r, v)| Op::AddImm(r, v)),
        (reg.clone(), word_off.clone()).prop_map(|(r, o)| Op::StoreWord(r, o)),
        (reg.clone(), word_off).prop_map(|(r, o)| Op::LoadWord(r, o)),
        (reg.clone(), 0i64..12).prop_map(|(r, o)| Op::StoreByte(r, o)),
        (reg, 0i64..12).prop_map(|(r, o)| Op::LoadByte(r, o)),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 2..12)
}

/// Runs the abstract interpreter over the ops and projects its resolved
/// footprints into the oracle shape the optimizer feeds the DFG builder
/// (mirrors `graph_detect::region_oracles` for a whole-function region).
fn oracle_for(f: &FunctionCode) -> AliasOracle {
    let a = AbsInt::analyze(f, None);
    let slots = (0..f.items.len())
        .map(|i| {
            let state = a.before.get(i)?.as_ref()?;
            let accesses = absint::resolved_accesses(state, &f.items[i], None)?;
            Some(
                accesses
                    .iter()
                    .map(|acc| AliasInterval {
                        base: match acc.base {
                            AccessBase::Sp => AliasBase::Sp,
                            AccessBase::Abs => AliasBase::Abs,
                            AccessBase::Sym(sym) => AliasBase::Sym {
                                sym,
                                def: sym_def_index(sym),
                            },
                        },
                        lo: acc.lo,
                        hi: acc.hi,
                    })
                    .collect(),
            )
        })
        .collect();
    AliasOracle { slots }
}

/// A topological linearization of the DFG with fuzzer-chosen tie-breaks,
/// so different runs explore different valid orders.
fn linearize(dfg: &Dfg, picks: &[usize]) -> Vec<usize> {
    let n = dfg.node_count();
    let mut indeg = vec![0usize; n];
    let mut succs = vec![Vec::new(); n];
    for e in dfg.edges() {
        indeg[e.to] += 1;
        succs[e.from].push(e.to);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut k = 0usize;
    while !ready.is_empty() {
        let pick = picks.get(k).copied().unwrap_or(0) % ready.len();
        k += 1;
        let node = ready.swap_remove(pick);
        out.push(node);
        for &s in &succs[node] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    assert_eq!(out.len(), n, "DFG is acyclic");
    out
}

/// Executes the ops in the given order on the concrete emulator and
/// returns the observable final state: `r0`–`r3` and the sixteen stack
/// bytes the ops address.
fn run_order(ops: &[Op], order: &[usize]) -> (Vec<u32>, Vec<u8>) {
    let mut image = Image::new(0x8000, 0x2_0000);
    for &i in order {
        image.push_code_word(ops[i].insn().encode().unwrap());
    }
    image.push_code_word("swi #0".parse::<Instruction>().unwrap().encode().unwrap());
    let mut m = Machine::new(&image);
    for r in 0..4u8 {
        m.set_reg(Reg::r(r), 0x0101_0101u32.wrapping_mul(u32::from(r) + 1));
    }
    let sp = m.reg(Reg::SP);
    m.run(10_000).unwrap();
    let regs = (0..4u8).map(|r| m.reg(Reg::r(r))).collect();
    let mem = (0..16u32).map(|o| m.memory().read_byte(sp + o)).collect();
    (regs, mem)
}

fn function(ops: &[Op]) -> FunctionCode {
    FunctionCode {
        name: "t".into(),
        address_taken: false,
        items: ops.iter().map(|o| o.item()).collect(),
        label_count: 0,
    }
}

/// The properties below are not vacuous: a store/load pair to provably
/// distinct stack slots really does get its MEM edge dropped.
#[test]
fn disjoint_slots_do_relax() {
    let ops = [Op::StoreWord(0, 0), Op::LoadWord(1, 4)];
    let f = function(&ops);
    let oracle = oracle_for(&f);
    let r = build_dfg_from_items_with("t", 0, &f.items, LabelMode::Exact, Some(&oracle));
    assert_eq!(r.relaxed, vec![(0, 1)]);
    assert!(!r.dfg.reaches(0, 1), "relaxed pair must be unordered");
    // And the overlapping variant keeps its edge.
    let ops = [Op::StoreWord(0, 0), Op::LoadByte(1, 2)];
    let f = function(&ops);
    let oracle = oracle_for(&f);
    let r = build_dfg_from_items_with("t", 0, &f.items, LabelMode::Exact, Some(&oracle));
    assert!(r.relaxed.is_empty());
    assert!(r.dfg.reaches(0, 1));
}

proptest! {
    /// `AliasLevel::Off` (no oracle) is bit-for-bit today's conservative
    /// graph: nothing relaxed, identical nodes and edges.
    #[test]
    fn no_oracle_is_byte_identical_to_conservative(ops in arb_ops()) {
        let f = function(&ops);
        let conservative = build_dfg_from_items("t", 0, &f.items, LabelMode::Exact);
        let r = build_dfg_from_items_with("t", 0, &f.items, LabelMode::Exact, None);
        prop_assert!(r.relaxed.is_empty());
        prop_assert_eq!(r.dfg, conservative);
    }

    /// Every relaxed pair survives the validator's V107 re-derivation: a
    /// fresh abstract interpretation re-resolves both footprints and
    /// proves them pairwise disjoint — the oracle's word is never taken
    /// on trust.
    #[test]
    fn relaxed_pairs_are_recertified_by_v107(ops in arb_ops()) {
        let f = function(&ops);
        let oracle = oracle_for(&f);
        let r = build_dfg_from_items_with("t", 0, &f.items, LabelMode::Exact, Some(&oracle));
        let a = AbsInt::analyze(&f, None);
        for &(i, j) in &r.relaxed {
            prop_assert!(i < j, "relaxed pairs are (earlier, later)");
            let resolve = |k: usize| {
                absint::resolved_accesses(a.before[k].as_ref().unwrap(), &f.items[k], None)
            };
            let (fi, fj) = (resolve(i), resolve(j));
            prop_assert!(fi.is_some() && fj.is_some(), "relaxed node unresolved");
            for x in fi.as_deref().unwrap() {
                for y in fj.as_deref().unwrap() {
                    prop_assert!(
                        x.provably_disjoint(y, i, j),
                        "pair ({i}, {j}) not re-derivable: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    /// Semantic preservation: any linearization of the *relaxed* DFG
    /// executes to the same concrete machine state as program order, and
    /// any linearization of the *conservative* DFG additionally stays in
    /// the syntactic Mazurkiewicz trace class.
    #[test]
    fn relaxed_linearizations_preserve_semantics(
        ops in arb_ops(),
        picks in proptest::collection::vec(0usize..64, 0..24),
    ) {
        let f = function(&ops);
        let oracle = oracle_for(&f);
        let r = build_dfg_from_items_with("t", 0, &f.items, LabelMode::Exact, Some(&oracle));

        let program_order: Vec<usize> = (0..ops.len()).collect();
        let reference = run_order(&ops, &program_order);

        // Conservative linearizations never leave the trace class.
        let conservative = build_dfg_from_items("t", 0, &f.items, LabelMode::Exact);
        let lin_c = linearize(&conservative, &picks);
        let reordered: Vec<Item> = lin_c.iter().map(|&i| f.items[i].clone()).collect();
        prop_assert!(trace_equivalent(&f.items, &reordered));
        prop_assert_eq!(run_order(&ops, &lin_c), reference.clone());

        // Relaxed linearizations may reorder certified-disjoint memory
        // pairs — outside the syntactic class — but the machine cannot
        // tell the difference.
        let lin_r = linearize(&r.dfg, &picks);
        prop_assert_eq!(run_order(&ops, &lin_r), reference);
    }
}
