//! Content-addressed artifacts shared by batch runs.
//!
//! Corpus optimization re-sees the same inputs constantly: the same
//! runtime blocks in every image, unchanged images across re-runs, and —
//! within one run — every block the current round did not rewrite. Two
//! addresses make that reuse safe:
//!
//! * [`image_cache_key`] — the address of a whole optimization *result*:
//!   a stable hash of the image's normalized code (code words, layout
//!   bases, entry, symbol table — everything lifting reads; the data
//!   payload is excluded because it cannot influence the rewrite) plus
//!   the [`Method`] and every [`RunConfig`] knob that changes the output.
//!   Equal keys ⇒ byte-identical [`crate::Report`]s.
//! * [`DfgCache`] — an in-memory map from a block's content address
//!   ([`gpa_dfg::block_content_hash`]) to its built artifact: the DFG and
//!   the forward-reachability closure detection needs for convexity
//!   checks. The cache is shared across rounds, images and worker
//!   threads; graph construction is deterministic, so a hit returns
//!   exactly what a rebuild would.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpa_cfg::Item;
use gpa_dfg::hash::Fnv128;
use gpa_dfg::{block_content_hash, Dfg, LabelMode};
use gpa_image::Image;

use crate::graph_detect::Reach;
use crate::optimizer::{Method, RunConfig};
use crate::validate::ValidateLevel;

/// A per-block detection artifact: the DFG plus its reachability closure.
///
/// Cached entries are built with an empty function name and region start
/// zero — detection reads only labels, edges and degrees, all of which
/// are position-independent.
pub(crate) struct BlockArtifact {
    pub(crate) dfg: Dfg,
    pub(crate) reach: Reach,
    /// MEM edges the alias oracle dropped while building `dfg`, as
    /// region-local `(earlier, later)` node pairs. Empty for
    /// conservative builds.
    pub(crate) relaxed: Vec<(usize, usize)>,
    /// Pair counts behind `relaxed` (for the `absint.*` trace counters).
    pub(crate) relax_stats: gpa_dfg::RelaxStats,
}

impl BlockArtifact {
    pub(crate) fn build(items: &[Item], mode: LabelMode) -> BlockArtifact {
        Self::build_with(items, mode, None)
    }

    /// [`BlockArtifact::build`] with an optional alias oracle refining
    /// the DFG's MEM edges. Oracle-built artifacts depend on the whole
    /// function's abstract state, not just the block's items, so they
    /// must never go through the content-addressed [`DfgCache`].
    pub(crate) fn build_with(
        items: &[Item],
        mode: LabelMode,
        oracle: Option<&gpa_dfg::AliasOracle>,
    ) -> BlockArtifact {
        let relaxed_dfg = gpa_dfg::build_dfg_from_items_with("", 0, items, mode, oracle);
        let reach = Reach::new(&relaxed_dfg.dfg);
        BlockArtifact {
            dfg: relaxed_dfg.dfg,
            reach,
            relaxed: relaxed_dfg.relaxed,
            relax_stats: relaxed_dfg.stats,
        }
    }
}

/// A thread-safe, content-addressed cache of per-block [`Dfg`]s and
/// reachability closures, keyed by [`gpa_dfg::block_content_hash`].
///
/// Hit/miss counters feed the pipeline's metrics report.
#[derive(Default)]
pub struct DfgCache {
    map: Mutex<HashMap<u128, Arc<BlockArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DfgCache {
    /// An empty cache.
    pub fn new() -> DfgCache {
        DfgCache::default()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build the artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the artifact for a block, building and publishing it on
    /// first sight.
    pub(crate) fn get_or_build(&self, items: &[Item], mode: LabelMode) -> Arc<BlockArtifact> {
        let key = block_content_hash(items, mode);
        if let Some(found) = self.map.lock().expect("dfg cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Build outside the lock: duplicate work on a race is cheaper
        // than serializing every construction behind one mutex.
        let built = Arc::new(BlockArtifact::build(items, mode));
        let mut map = self.map.lock().expect("dfg cache poisoned");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        let entry = Arc::clone(entry);
        drop(map);
        if Arc::ptr_eq(&entry, &built) {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        entry
    }
}

/// The content address of an optimization run's *result*: two calls agree
/// exactly when [`crate::Optimizer::run_with`] is guaranteed to produce
/// the same [`crate::Report`].
///
/// Normalization: the data section's *payload* is excluded (lifting never
/// reads it), while everything decode consumes — code words, section
/// bases, entry point, and the full symbol table — is hashed. Of the
/// [`RunConfig`], the knobs that shape the search (`max_rounds`,
/// `max_fragment_nodes`, `alias`) and the validation level (a failed
/// validation yields an error, not a report) are included;
/// `mining_threads` is not, because partitioned detection merges to the
/// single-threaded result.
pub fn image_cache_key(image: &Image, method: Method, config: &RunConfig) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"gpa-image-key/1");
    h.write(crate::report::REPORT_SCHEMA.as_bytes());
    h.write(match method {
        Method::Sfx => b"sfx",
        Method::DgSpan => b"dgspan",
        Method::Edgar => b"edgar",
    });
    h.write_u64(config.max_rounds as u64);
    h.write_u64(config.max_fragment_nodes as u64);
    h.write(&[match config.validate {
        ValidateLevel::Off => 0u8,
        ValidateLevel::Final => 1,
        ValidateLevel::EveryRound => 2,
    }]);
    // `Off` hashes to the pre-alias key on purpose: disabled alias
    // analysis is bit-for-bit the historical pipeline, so existing
    // cached reports (and committed goldens) stay addressable.
    match config.alias {
        crate::optimizer::AliasLevel::Off => {}
        crate::optimizer::AliasLevel::Stack => h.write(b"alias/stack"),
    }
    h.write_u64(u64::from(image.code_base()));
    h.write_u64(u64::from(image.data_base()));
    h.write_u64(u64::from(image.entry()));
    h.write_u64(image.code_words().len() as u64);
    for &word in image.code_words() {
        h.write(&word.to_le_bytes());
    }
    h.write_u64(image.symbols().len() as u64);
    for sym in image.symbols() {
        h.write_u64(sym.name.len() as u64);
        h.write(sym.name.as_bytes());
        h.write_u64(u64::from(sym.addr));
        h.write_u64(u64::from(sym.size));
        h.write(&[
            match sym.kind {
                gpa_image::SymbolKind::Function => 0u8,
                gpa_image::SymbolKind::Object => 1,
            },
            u8::from(sym.address_taken),
        ]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_minicc::{compile, Options};

    fn items(asm: &str) -> Vec<Item> {
        gpa_arm::parse::parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect()
    }

    #[test]
    fn dfg_cache_hits_on_equal_blocks() {
        let cache = DfgCache::new();
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3");
        let first = cache.get_or_build(&a, LabelMode::Exact);
        let second = cache.get_or_build(&a, LabelMode::Exact);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different block misses.
        let b = items("mov r0, #7");
        let _ = cache.get_or_build(&b, LabelMode::Exact);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_artifact_equals_direct_build() {
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4");
        let cache = DfgCache::new();
        let cached = cache.get_or_build(&a, LabelMode::Exact);
        let direct = BlockArtifact::build(&a, LabelMode::Exact);
        assert_eq!(cached.dfg.edges(), direct.dfg.edges());
        assert_eq!(cached.dfg.node_count(), direct.dfg.node_count());
    }

    #[test]
    fn image_key_tracks_code_not_data() {
        let src = "int g[2]; int main() { g[0] = 3; putint(g[0]); return 0; }";
        let image = compile(src, &Options::default()).unwrap();
        let config = RunConfig::default();
        let base = image_cache_key(&image, Method::Edgar, &config);
        assert_eq!(base, image_cache_key(&image, Method::Edgar, &config));
        assert_ne!(base, image_cache_key(&image, Method::Sfx, &config));
        let mut smaller = config.clone();
        smaller.max_fragment_nodes = 4;
        assert_ne!(base, image_cache_key(&image, Method::Edgar, &smaller));
        let mut threaded = config.clone();
        threaded.mining_threads = 8;
        assert_eq!(base, image_cache_key(&image, Method::Edgar, &threaded));
        let mut aliased = config.clone();
        aliased.alias = crate::optimizer::AliasLevel::Stack;
        assert_ne!(base, image_cache_key(&image, Method::Edgar, &aliased));
        // A different program produces a different key.
        let other = compile("int main() { return 1; }", &Options::default()).unwrap();
        assert_ne!(base, image_cache_key(&other, Method::Edgar, &config));
    }
}
