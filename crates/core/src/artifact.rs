//! Content-addressed artifacts shared by batch runs.
//!
//! Corpus optimization re-sees the same inputs constantly: the same
//! runtime blocks in every image, unchanged images across re-runs, and —
//! within one run — every block the current round did not rewrite. Two
//! addresses make that reuse safe:
//!
//! * [`image_cache_key`] — the address of a whole optimization *result*:
//!   a stable hash of the image's normalized code (code words, layout
//!   bases, entry, symbol table — everything lifting reads; the data
//!   payload is excluded because it cannot influence the rewrite) plus
//!   the [`Method`] and every [`RunConfig`] knob that changes the output.
//!   Equal keys ⇒ byte-identical [`crate::Report`]s.
//! * [`DfgCache`] — an in-memory map from a block's content address
//!   ([`gpa_dfg::block_content_hash`]) to its built artifact: the DFG and
//!   the forward-reachability closure detection needs for convexity
//!   checks. The cache is shared across rounds, images and worker
//!   threads; graph construction is deterministic, so a hit returns
//!   exactly what a rebuild would.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpa_cfg::Item;
use gpa_dfg::hash::Fnv128;
use gpa_dfg::{block_content_hash, Dfg, LabelMode};
use gpa_image::Image;

use crate::graph_detect::Reach;
use crate::optimizer::{Method, RunConfig};
use crate::validate::ValidateLevel;

/// A per-block detection artifact: the DFG plus its reachability closure.
///
/// Cached entries are built with an empty function name and region start
/// zero — detection reads only labels, edges and degrees, all of which
/// are position-independent.
pub(crate) struct BlockArtifact {
    pub(crate) dfg: Dfg,
    pub(crate) reach: Reach,
    /// MEM edges the alias oracle dropped while building `dfg`, as
    /// region-local `(earlier, later)` node pairs. Empty for
    /// conservative builds.
    pub(crate) relaxed: Vec<(usize, usize)>,
    /// Pair counts behind `relaxed` (for the `absint.*` trace counters).
    pub(crate) relax_stats: gpa_dfg::RelaxStats,
}

impl BlockArtifact {
    pub(crate) fn build(items: &[Item], mode: LabelMode) -> BlockArtifact {
        Self::build_with(items, mode, None)
    }

    /// [`BlockArtifact::build`] with an optional alias oracle refining
    /// the DFG's MEM edges. Oracle-built artifacts depend on the whole
    /// function's abstract state, not just the block's items, so they
    /// must never go through the content-addressed [`DfgCache`].
    pub(crate) fn build_with(
        items: &[Item],
        mode: LabelMode,
        oracle: Option<&gpa_dfg::AliasOracle>,
    ) -> BlockArtifact {
        let relaxed_dfg = gpa_dfg::build_dfg_from_items_with("", 0, items, mode, oracle);
        let reach = Reach::new(&relaxed_dfg.dfg);
        BlockArtifact {
            dfg: relaxed_dfg.dfg,
            reach,
            relaxed: relaxed_dfg.relaxed,
            relax_stats: relaxed_dfg.stats,
        }
    }
}

/// The keyed side of a [`DfgCache`]: the artifact map plus the
/// recency index that makes bounded caches LRU.
#[derive(Default)]
struct DfgInner {
    /// key → (artifact, recency tick of the last touch).
    map: HashMap<u128, (Arc<BlockArtifact>, u64)>,
    /// tick → key, ascending: the front is the least recently used.
    recency: BTreeMap<u64, u128>,
    /// Monotone touch counter.
    tick: u64,
}

impl DfgInner {
    /// Marks `key` as most recently used (must be present).
    fn touch(&mut self, key: u128) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old)) = self.map.get_mut(&key) {
            self.recency.remove(old);
            *old = tick;
            self.recency.insert(tick, key);
        }
    }
}

/// A thread-safe, content-addressed cache of per-block [`Dfg`]s and
/// reachability closures, keyed by [`gpa_dfg::block_content_hash`].
///
/// [`DfgCache::new`] is unbounded (one batch run's working set);
/// [`DfgCache::bounded`] caps the entry count with least-recently-used
/// eviction, which is what a long-lived `gpa serve` process needs to
/// keep its resident size finite under arbitrary traffic.
///
/// Hit/miss/eviction counters feed the pipeline's metrics report.
pub struct DfgCache {
    inner: Mutex<DfgInner>,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
}

impl Default for DfgCache {
    fn default() -> DfgCache {
        DfgCache::bounded(usize::MAX)
    }
}

impl DfgCache {
    /// An empty, unbounded cache.
    pub fn new() -> DfgCache {
        DfgCache::default()
    }

    /// An empty cache holding at most `max_entries` artifacts, evicting
    /// the least recently used beyond that (`max_entries` is clamped to
    /// at least 1 so the entry being inserted always fits).
    pub fn bounded(max_entries: usize) -> DfgCache {
        DfgCache {
            inner: Mutex::new(DfgInner::default()),
            max_entries: max_entries.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build the artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of artifacts evicted to stay under the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of artifacts currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dfg cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the artifact for a block, building and publishing it on
    /// first sight.
    pub(crate) fn get_or_build(&self, items: &[Item], mode: LabelMode) -> Arc<BlockArtifact> {
        let key = block_content_hash(items, mode);
        {
            let mut inner = self.inner.lock().expect("dfg cache poisoned");
            if let Some((found, _)) = inner.map.get(&key) {
                let found = Arc::clone(found);
                inner.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return found;
            }
        }
        // Build outside the lock: duplicate work on a race is cheaper
        // than serializing every construction behind one mutex.
        let built = Arc::new(BlockArtifact::build(items, mode));
        let mut inner = self.inner.lock().expect("dfg cache poisoned");
        if let Some((rival, _)) = inner.map.get(&key) {
            // A racing builder published first; adopt its artifact.
            let rival = Arc::clone(rival);
            inner.touch(key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return rival;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (Arc::clone(&built), tick));
        inner.recency.insert(tick, key);
        while inner.map.len() > self.max_entries {
            let Some((&oldest, &victim)) = inner.recency.iter().next() else {
                break;
            };
            inner.recency.remove(&oldest);
            inner.map.remove(&victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        built
    }
}

/// The content address of an optimization run's *result*: two calls agree
/// exactly when [`crate::Optimizer::run_with`] is guaranteed to produce
/// the same [`crate::Report`].
///
/// Normalization: the data section's *payload* is excluded (lifting never
/// reads it), while everything decode consumes — code words, section
/// bases, entry point, and the full symbol table — is hashed. Of the
/// [`RunConfig`], the knobs that shape the search (`max_rounds`,
/// `max_fragment_nodes`, `alias`) and the validation level (a failed
/// validation yields an error, not a report) are included;
/// `mining_threads` and `front_threads` are not, because partitioned
/// detection merges to the single-threaded result and the parallel
/// front-end builds the same graphs in input order.
pub fn image_cache_key(image: &Image, method: Method, config: &RunConfig) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"gpa-image-key/1");
    h.write(crate::report::REPORT_SCHEMA.as_bytes());
    h.write(match method {
        Method::Sfx => b"sfx",
        Method::DgSpan => b"dgspan",
        Method::Edgar => b"edgar",
    });
    h.write_u64(config.max_rounds as u64);
    h.write_u64(config.max_fragment_nodes as u64);
    h.write(&[match config.validate {
        ValidateLevel::Off => 0u8,
        ValidateLevel::Final => 1,
        ValidateLevel::EveryRound => 2,
    }]);
    // `Off` hashes to the pre-alias key on purpose: disabled alias
    // analysis is bit-for-bit the historical pipeline, so existing
    // cached reports (and committed goldens) stay addressable.
    match config.alias {
        crate::optimizer::AliasLevel::Off => {}
        crate::optimizer::AliasLevel::Stack => h.write(b"alias/stack"),
    }
    // Same backwards-compatibility shape for the per-round pattern
    // budget: the default hashes to the historical key, a request-tuned
    // budget (a `gpa serve` knob) gets its own key space because an
    // exhausted budget changes which candidates a round can see. The
    // `deadline` knob is deliberately *not* hashed — it is wall-clock
    // dependent, and deadline-stopped runs are never cached.
    if config.max_patterns != crate::optimizer::DEFAULT_MAX_PATTERNS {
        h.write(b"max_patterns");
        h.write_u64(config.max_patterns as u64);
    }
    h.write_u64(u64::from(image.code_base()));
    h.write_u64(u64::from(image.data_base()));
    h.write_u64(u64::from(image.entry()));
    h.write_u64(image.code_words().len() as u64);
    for &word in image.code_words() {
        h.write(&word.to_le_bytes());
    }
    h.write_u64(image.symbols().len() as u64);
    for sym in image.symbols() {
        h.write_u64(sym.name.len() as u64);
        h.write(sym.name.as_bytes());
        h.write_u64(u64::from(sym.addr));
        h.write_u64(u64::from(sym.size));
        h.write(&[
            match sym.kind {
                gpa_image::SymbolKind::Function => 0u8,
                gpa_image::SymbolKind::Object => 1,
            },
            u8::from(sym.address_taken),
        ]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_minicc::{compile, Options};

    fn items(asm: &str) -> Vec<Item> {
        gpa_arm::parse::parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect()
    }

    #[test]
    fn dfg_cache_hits_on_equal_blocks() {
        let cache = DfgCache::new();
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3");
        let first = cache.get_or_build(&a, LabelMode::Exact);
        let second = cache.get_or_build(&a, LabelMode::Exact);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different block misses.
        let b = items("mov r0, #7");
        let _ = cache.get_or_build(&b, LabelMode::Exact);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_artifact_equals_direct_build() {
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4");
        let cache = DfgCache::new();
        let cached = cache.get_or_build(&a, LabelMode::Exact);
        let direct = BlockArtifact::build(&a, LabelMode::Exact);
        assert_eq!(cached.dfg.edges(), direct.dfg.edges());
        assert_eq!(cached.dfg.node_count(), direct.dfg.node_count());
    }

    #[test]
    fn image_key_tracks_code_not_data() {
        let src = "int g[2]; int main() { g[0] = 3; putint(g[0]); return 0; }";
        let image = compile(src, &Options::default()).unwrap();
        let config = RunConfig::default();
        let base = image_cache_key(&image, Method::Edgar, &config);
        assert_eq!(base, image_cache_key(&image, Method::Edgar, &config));
        assert_ne!(base, image_cache_key(&image, Method::Sfx, &config));
        let mut smaller = config.clone();
        smaller.max_fragment_nodes = 4;
        assert_ne!(base, image_cache_key(&image, Method::Edgar, &smaller));
        let mut threaded = config.clone();
        threaded.mining_threads = 8;
        assert_eq!(base, image_cache_key(&image, Method::Edgar, &threaded));
        let mut fronted = config.clone();
        fronted.front_threads = 8;
        assert_eq!(
            base,
            image_cache_key(&image, Method::Edgar, &fronted),
            "front_threads never changes the output, so it must not key the cache"
        );
        let mut aliased = config.clone();
        aliased.alias = crate::optimizer::AliasLevel::Stack;
        assert_ne!(base, image_cache_key(&image, Method::Edgar, &aliased));
        // A different program produces a different key.
        let other = compile("int main() { return 1; }", &Options::default()).unwrap();
        assert_ne!(base, image_cache_key(&other, Method::Edgar, &config));
    }

    #[test]
    fn image_key_tracks_pattern_budget_but_not_deadline() {
        let image = compile("int main() { return 0; }", &Options::default()).unwrap();
        let config = RunConfig::default();
        let base = image_cache_key(&image, Method::Edgar, &config);
        // A tuned per-round budget addresses a different result…
        let mut budgeted = config.clone();
        budgeted.max_patterns = 100;
        assert_ne!(base, image_cache_key(&image, Method::Edgar, &budgeted));
        // …while the wall-clock deadline never participates: a
        // deadline-stopped run is simply not cached.
        let mut deadlined = config.clone();
        deadlined.deadline = Some(std::time::Instant::now());
        assert_eq!(base, image_cache_key(&image, Method::Edgar, &deadlined));
    }

    #[test]
    fn bounded_dfg_cache_evicts_least_recently_used() {
        let cache = DfgCache::bounded(2);
        let a = items("mov r0, #1");
        let b = items("mov r0, #2");
        let c = items("mov r0, #3");
        let _ = cache.get_or_build(&a, LabelMode::Exact);
        let _ = cache.get_or_build(&b, LabelMode::Exact);
        // Touch `a` so `b` becomes the LRU victim when `c` arrives.
        let _ = cache.get_or_build(&a, LabelMode::Exact);
        let _ = cache.get_or_build(&c, LabelMode::Exact);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted(), 1);
        // `a` survived (hit), `b` was evicted (miss rebuilds it).
        let hits_before = cache.hits();
        let _ = cache.get_or_build(&a, LabelMode::Exact);
        assert_eq!(cache.hits(), hits_before + 1);
        let misses_before = cache.misses();
        let _ = cache.get_or_build(&b, LabelMode::Exact);
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn deadline_in_the_past_yields_a_wellformed_empty_report() {
        use crate::{Method, Optimizer};
        let image = compile_benchmark();
        let mut opt = Optimizer::from_image(&image).unwrap();
        let config = RunConfig {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            validate: crate::ValidateLevel::Off,
            ..RunConfig::default()
        };
        let report = opt.run_with(Method::Edgar, &config).unwrap();
        assert_eq!(
            report.rounds.len(),
            0,
            "no round may start past the deadline"
        );
        assert_eq!(report.initial_words, report.final_words);
    }

    fn compile_benchmark() -> gpa_image::Image {
        compile(
            "int f(int x) { return x * 3 + 1; }\n\
             int main() { putint(f(5) + f(9)); return 0; }",
            &Options::default(),
        )
        .unwrap()
    }
}
