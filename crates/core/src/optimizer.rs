//! The optimization driver: mine → pick best → extract → repeat.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use gpa_cfg::{decode_image, encode_program, Program};
use gpa_image::Image;
use gpa_mining::miner::Support;
use gpa_trace::{NoopTracer, Tracer, Value};
use gpa_verify::{has_errors, Diagnostic};

use crate::artifact::DfgCache;
use crate::candidate::Candidate;
use crate::extract;
use crate::graph_detect::{self, GraphConfig};
use crate::report::{Report, Round};
use crate::sfx_detect;
use crate::stage::StageTimings;
use crate::validate::{self, ValidateLevel};

/// The three detection methods compared in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Suffix-trie / fingerprint baseline over the linear stream.
    Sfx,
    /// Directed gSpan counting containing graphs.
    DgSpan,
    /// Embedding-based counting with MIS overlap resolution.
    Edgar,
}

impl Method {
    /// The stable lowercase name used on the command line and in cache
    /// keys; [`Method::parse`] is its inverse.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Sfx => "sfx",
            Method::DgSpan => "dgspan",
            Method::Edgar => "edgar",
        }
    }

    /// Parses a [`Method::as_str`] name (case-sensitive).
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "sfx" => Some(Method::Sfx),
            "dgspan" => Some(Method::DgSpan),
            "edgar" => Some(Method::Edgar),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Sfx => write!(f, "SFX"),
            Method::DgSpan => write!(f, "DgSpan"),
            Method::Edgar => write!(f, "Edgar"),
        }
    }
}

/// How far memory disambiguation may refine the dependence graphs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AliasLevel {
    /// Every pair of memory accesses may alias (today's conservative
    /// MEM-barrier graphs, bit-for-bit).
    #[default]
    Off,
    /// The `gpa_verify::absint` value-set interpreter proves stack
    /// accesses at distinct frame offsets disjoint; their MEM edges are
    /// dropped, and every drop is re-certified by the validator (V107).
    Stack,
}

impl AliasLevel {
    /// The stable lowercase name used on the command line and in cache
    /// keys; [`AliasLevel::parse`] is its inverse.
    pub fn as_str(&self) -> &'static str {
        match self {
            AliasLevel::Off => "off",
            AliasLevel::Stack => "stack",
        }
    }

    /// Parses an [`AliasLevel::as_str`] name (case-sensitive).
    pub fn parse(s: &str) -> Option<AliasLevel> {
        match s {
            "off" => Some(AliasLevel::Off),
            "stack" => Some(AliasLevel::Stack),
            _ => None,
        }
    }
}

impl fmt::Display for AliasLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors surfaced by the optimizer.
#[derive(Debug)]
pub enum OptimizerError {
    /// The input image could not be lifted.
    Decode(gpa_cfg::DecodeImageError),
    /// The optimized program could not be re-encoded.
    Encode(gpa_cfg::EncodeProgramError),
    /// An extraction failed mid-run (indicates a detection bug).
    Extract(extract::ExtractError),
    /// The translation validator rejected a rewrite or the final
    /// program; the diagnostics say which claims failed.
    Validate(Vec<Diagnostic>),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::Decode(e) => write!(f, "{e}"),
            OptimizerError::Encode(e) => write!(f, "{e}"),
            OptimizerError::Extract(e) => write!(f, "{e}"),
            OptimizerError::Validate(diags) => {
                write!(f, "validation failed with {} finding(s):", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for OptimizerError {}

/// Tuning knobs for an optimization run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Stop after this many extraction rounds (safety valve; the paper
    /// iterates to a fixpoint).
    pub max_rounds: usize,
    /// Fragment size cap for the graph miners.
    pub max_fragment_nodes: usize,
    /// How much of the run the translation validator re-checks.
    pub validate: ValidateLevel,
    /// Worker threads for the graph miners' lattice search (see
    /// [`GraphConfig::threads`]); the partitioned search merges to the
    /// single-threaded result, so this knob never changes the output and
    /// is excluded from [`crate::artifact::image_cache_key`].
    pub mining_threads: usize,
    /// Worker threads for the front-end: per-function decode
    /// ([`gpa_cfg::decode_image_with`] via
    /// [`Optimizer::from_image_configured`]) and the per-block DFG /
    /// artifact build inside graph detection (see
    /// [`GraphConfig::front_threads`]). Every unit of front-end work is
    /// independent and results merge in input order, so — like
    /// `mining_threads` — this knob never changes the output and is
    /// excluded from [`crate::artifact::image_cache_key`].
    pub front_threads: usize,
    /// Telemetry sink threaded through detection, mining and MIS
    /// resolution. Tracing observes the run without changing it, so the
    /// tracer — like `mining_threads` — is excluded from
    /// [`crate::artifact::image_cache_key`].
    pub tracer: Arc<dyn Tracer>,
    /// Memory-disambiguation level for the graph miners' DFGs. Changes
    /// the graphs (and therefore the output), so it participates in
    /// [`crate::artifact::image_cache_key`].
    pub alias: AliasLevel,
    /// Pattern-visit budget per mining round (maps onto
    /// [`GraphConfig::max_patterns`]). Bounds the worst case of a single
    /// round, which is what lets a serving deadline be honoured: each
    /// round does at most this much lattice work before the `deadline`
    /// check between rounds can fire. Changes the output when a round
    /// would exhaust it, so a non-default value participates in
    /// [`crate::artifact::image_cache_key`].
    pub max_patterns: usize,
    /// Cooperative deadline: when set, the extraction loop stops before
    /// starting a round past this instant and returns the (well-formed,
    /// partial) report of the rounds that did complete. Wall-clock
    /// dependent, so it is excluded from
    /// [`crate::artifact::image_cache_key`] — callers must not cache a
    /// report whose run overran its deadline (the serve pipeline checks
    /// this before every cache store).
    pub deadline: Option<Instant>,
}

/// Default per-round pattern-visit budget (the historical
/// [`GraphConfig::default`] value; keys hash `max_patterns` only when it
/// differs from this, so existing cache keys and goldens are unchanged).
pub const DEFAULT_MAX_PATTERNS: usize = 60_000;

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            max_rounds: 10_000,
            max_fragment_nodes: 16,
            validate: ValidateLevel::default(),
            mining_threads: 1,
            front_threads: 1,
            tracer: Arc::new(NoopTracer),
            alias: AliasLevel::default(),
            max_patterns: DEFAULT_MAX_PATTERNS,
            deadline: None,
        }
    }
}

/// The procedural-abstraction optimizer: owns a rewritable [`Program`]
/// and shrinks it round by round.
#[derive(Clone, Debug)]
pub struct Optimizer {
    program: Program,
    fragment_counter: usize,
}

impl Optimizer {
    /// Lifts an image into an optimizer.
    ///
    /// # Errors
    ///
    /// Propagates [`gpa_cfg::decode_image`] failures.
    pub fn from_image(image: &Image) -> Result<Optimizer, OptimizerError> {
        Ok(Optimizer::from_program(
            decode_image(image).map_err(OptimizerError::Decode)?,
        ))
    }

    /// [`Optimizer::from_image`] with the decode time added to
    /// `timings.decode_ns`.
    ///
    /// # Errors
    ///
    /// Propagates [`gpa_cfg::decode_image`] failures.
    pub fn from_image_timed(
        image: &Image,
        timings: &mut StageTimings,
    ) -> Result<Optimizer, OptimizerError> {
        let start = Instant::now();
        let result = Optimizer::from_image(image);
        timings.decode_ns += gpa_trace::saturating_ns(start.elapsed());
        result
    }

    /// [`Optimizer::from_image_timed`] under a [`RunConfig`]: the
    /// per-function lift fans out over [`RunConfig::front_threads`]
    /// workers, and the whole decode runs inside a `front` span on the
    /// configured tracer so `gpa perf --profile` and `gpa trace-profile`
    /// show the parallel front-end as its own node.
    ///
    /// # Errors
    ///
    /// Propagates [`gpa_cfg::decode_image`] failures.
    pub fn from_image_configured(
        image: &Image,
        config: &RunConfig,
        timings: &mut StageTimings,
    ) -> Result<Optimizer, OptimizerError> {
        let _front_span = gpa_trace::span(config.tracer.as_ref(), "front");
        let start = Instant::now();
        let result = gpa_cfg::decode_image_with(image, config.front_threads)
            .map(Optimizer::from_program)
            .map_err(OptimizerError::Decode);
        timings.decode_ns += gpa_trace::saturating_ns(start.elapsed());
        result
    }

    /// Wraps an already-lifted program.
    pub fn from_program(program: Program) -> Optimizer {
        Optimizer {
            program,
            fragment_counter: 0,
        }
    }

    /// The current (possibly optimized) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Re-encodes the current program into an executable image.
    ///
    /// # Errors
    ///
    /// Propagates [`gpa_cfg::encode_program`] failures.
    pub fn encode(&self) -> Result<Image, OptimizerError> {
        encode_program(&self.program).map_err(OptimizerError::Encode)
    }

    /// Finds the best candidate under `method` without applying it.
    pub fn detect(&self, method: Method, config: &RunConfig) -> Option<Candidate> {
        let mut scratch = StageTimings::default();
        self.detect_instrumented(method, config, &mut scratch, None)
    }

    /// [`Optimizer::detect`] with per-stage timing accumulation and an
    /// optional shared DFG artifact cache.
    pub fn detect_instrumented(
        &self,
        method: Method,
        config: &RunConfig,
        timings: &mut StageTimings,
        cache: Option<&DfgCache>,
    ) -> Option<Candidate> {
        match method {
            Method::Sfx => {
                let start = Instant::now();
                let found = sfx_detect::best_candidate(&self.program);
                timings.mining_ns += gpa_trace::saturating_ns(start.elapsed());
                found
            }
            Method::DgSpan => graph_detect::best_candidate_instrumented(
                &self.program,
                &GraphConfig {
                    support: Support::Graphs,
                    max_nodes: config.max_fragment_nodes,
                    max_patterns: config.max_patterns,
                    threads: config.mining_threads,
                    front_threads: config.front_threads,
                    tracer: config.tracer.clone(),
                    alias: config.alias,
                    ..GraphConfig::default()
                },
                timings,
                cache,
            ),
            Method::Edgar => graph_detect::best_candidate_instrumented(
                &self.program,
                &GraphConfig {
                    support: Support::Embeddings,
                    max_nodes: config.max_fragment_nodes,
                    max_patterns: config.max_patterns,
                    threads: config.mining_threads,
                    front_threads: config.front_threads,
                    tracer: config.tracer.clone(),
                    alias: config.alias,
                    ..GraphConfig::default()
                },
                timings,
                cache,
            ),
        }
    }

    /// Applies one candidate, naming the new fragment from the internal
    /// counter; returns the fragment name.
    ///
    /// With [`ValidateLevel::EveryRound`] the rewrite is statically
    /// re-validated against the pre-rewrite program ([`crate::validate`]),
    /// and any violated claim aborts with [`OptimizerError::Validate`].
    ///
    /// # Errors
    ///
    /// [`OptimizerError::Extract`] when the candidate cannot be applied
    /// (a detection bug), [`OptimizerError::Validate`] when the applied
    /// rewrite fails validation.
    pub fn apply_candidate(
        &mut self,
        candidate: &Candidate,
        level: ValidateLevel,
    ) -> Result<String, OptimizerError> {
        self.apply_candidate_with(candidate, level, AliasLevel::Off)
    }

    /// [`Optimizer::apply_candidate`] for a candidate detected under
    /// `alias`: per-round validation additionally re-derives every
    /// relaxed-MEM-edge claim the candidate carries (V107).
    ///
    /// # Errors
    ///
    /// See [`Optimizer::apply_candidate`].
    pub fn apply_candidate_with(
        &mut self,
        candidate: &Candidate,
        level: ValidateLevel,
        alias: AliasLevel,
    ) -> Result<String, OptimizerError> {
        let name = format!("{}{}", gpa_cfg::FRAGMENT_PREFIX, self.fragment_counter);
        self.fragment_counter += 1;
        let before = (level == ValidateLevel::EveryRound).then(|| self.program.clone());
        extract::apply(&mut self.program, candidate, &name).map_err(OptimizerError::Extract)?;
        if let Some(before) = before {
            let diags =
                validate::validate_extraction_with(&before, &self.program, candidate, &name, alias);
            if has_errors(&diags) {
                return Err(OptimizerError::Validate(diags));
            }
        }
        Ok(name)
    }

    /// Runs the extraction loop to a fixpoint with default tuning.
    ///
    /// # Errors
    ///
    /// See [`Optimizer::run_with`].
    pub fn run(&mut self, method: Method) -> Result<Report, OptimizerError> {
        self.run_with(method, &RunConfig::default())
    }

    /// Runs the extraction loop to a fixpoint.
    ///
    /// Each round re-mines the program, extracts the single best
    /// candidate, and repeats until nothing profitable remains (§2.1
    /// step 8: "phase (6) is repeated as long as code fragments are found
    /// that reduce the overall number of instructions").
    ///
    /// # Errors
    ///
    /// [`OptimizerError::Extract`] when a detected candidate cannot be
    /// applied, and — under [`RunConfig::validate`] —
    /// [`OptimizerError::Validate`] when a rewrite or the final program
    /// fails the static validator.
    pub fn run_with(
        &mut self,
        method: Method,
        config: &RunConfig,
    ) -> Result<Report, OptimizerError> {
        let mut scratch = StageTimings::default();
        self.run_instrumented(method, config, &mut scratch, None)
    }

    /// [`Optimizer::run_with`] with per-stage timing accumulation and an
    /// optional shared DFG artifact cache.
    ///
    /// Wall time is attributed to [`StageTimings`] buckets: DFG
    /// construction, mining, and MIS resolution inside detection;
    /// extraction around [`Optimizer::apply_candidate`] (minus any
    /// per-round validation, which counts as validation); and the final
    /// program validation.
    ///
    /// When the configured tracer is enabled the run additionally emits
    /// hierarchical spans (`optimize` → `round` → `detect` / `apply`,
    /// plus a final `validate`) that `gpa trace-profile` and
    /// `gpa perf --profile` aggregate into a self/total time tree.
    ///
    /// # Errors
    ///
    /// See [`Optimizer::run_with`].
    pub fn run_instrumented(
        &mut self,
        method: Method,
        config: &RunConfig,
        timings: &mut StageTimings,
        cache: Option<&DfgCache>,
    ) -> Result<Report, OptimizerError> {
        let _run_span = gpa_trace::span(config.tracer.as_ref(), "optimize");
        let initial_words = self.program.instruction_count();
        let mut rounds = Vec::new();
        for round in 0..config.max_rounds {
            // The deadline is honoured at round granularity: every round
            // is itself bounded by `max_patterns`, so an expired deadline
            // is noticed within one bounded round, never after an
            // unbounded search.
            if config.deadline.is_some_and(|d| Instant::now() >= d) {
                config.tracer.count("run.deadline_stopped", 1);
                break;
            }
            let _round_span = gpa_trace::span(config.tracer.as_ref(), "round");
            let candidate = {
                let _detect_span = gpa_trace::span(config.tracer.as_ref(), "detect");
                self.detect_instrumented(method, config, timings, cache)
            };
            let Some(candidate) = candidate else {
                break;
            };
            let apply_span = gpa_trace::span(config.tracer.as_ref(), "apply");
            let apply_start = Instant::now();
            let round_validated = config.validate == ValidateLevel::EveryRound;
            let name = self.apply_candidate_with(&candidate, config.validate, config.alias)?;
            let apply_ns = gpa_trace::saturating_ns(apply_start.elapsed());
            drop(apply_span);
            // Per-round validation dominates the apply path when on;
            // attribute the whole round-validated apply to validation
            // rather than splitting hairs inside apply_candidate.
            if round_validated {
                timings.validation_ns += apply_ns;
            } else {
                timings.extraction_ns += apply_ns;
            }
            config.tracer.count("run.rounds", 1);
            if config.tracer.enabled() {
                config.tracer.event(
                    "round.applied",
                    &[
                        ("round", Value::from(round)),
                        ("saved", Value::Int(candidate.saved)),
                        ("body_words", Value::from(candidate.body_words())),
                        ("occurrences", Value::from(candidate.occurrences.len())),
                        (
                            "mechanism",
                            Value::from(graph_detect::kind_name(candidate.kind)),
                        ),
                    ],
                );
            }
            rounds.push(Round {
                kind: candidate.kind,
                body_words: candidate.body_words(),
                occurrences: candidate.occurrences.len(),
                saved: candidate.saved,
                fragment_name: name,
            });
        }
        if config.validate != ValidateLevel::Off {
            let _validate_span = gpa_trace::span(config.tracer.as_ref(), "validate");
            let validate_start = Instant::now();
            let diags = validate::validate_program(&self.program);
            timings.validation_ns += gpa_trace::saturating_ns(validate_start.elapsed());
            if has_errors(&diags) {
                return Err(OptimizerError::Validate(diags));
            }
        }
        Ok(Report {
            initial_words,
            final_words: self.program.instruction_count(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_emu::Machine;
    use gpa_minicc::{compile, Options};

    fn optimize_and_check(src: &str, method: Method) -> (Report, u64) {
        let image = compile(src, &Options::default()).unwrap();
        let before = Machine::new(&image).run(100_000_000).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        let report = opt.run(method).unwrap();
        let optimized = opt.encode().unwrap();
        let after = Machine::new(&optimized).run(100_000_000).unwrap();
        assert_eq!(before.exit_code, after.exit_code, "{method}: exit code");
        assert_eq!(before.output, after.output, "{method}: output");
        assert_eq!(
            report.saved_words(),
            image.code_len() as i64 - optimized.code_len() as i64 + pool_delta(&image, &optimized)
        );
        (report, after.steps)
    }

    /// Savings are counted in instructions, not pool words; compensate
    /// for pool-size changes when comparing whole code sections.
    fn pool_delta(before: &gpa_image::Image, after: &gpa_image::Image) -> i64 {
        let pools = |img: &gpa_image::Image| -> i64 {
            let program = gpa_cfg::decode_image(img).unwrap();
            img.code_len() as i64 - program.instruction_count() as i64
        };
        pools(after) - pools(before)
    }

    const DUPLICATED: &str = "
        int a(int *p, int x) { int v = p[0] * 31 + x; p[1] = v * v + 7; return v; }
        int b(int *p, int x) { int v = p[0] * 31 + x; p[1] = v * v + 7; return v + 1; }
        int c(int *p, int x) { int v = p[0] * 31 + x; p[1] = v * v + 7; return v + 2; }
        int d(int *p, int x) { int v = p[0] * 31 + x; p[1] = v * v + 7; return v + 3; }
        int buf[4];
        int main() {
            buf[0] = 5;
            int s = a(buf, 1) + b(buf, 2) + c(buf, 3) + d(buf, 4);
            putint(s + buf[1]);
            return 0;
        }";

    #[test]
    fn edgar_shrinks_duplicated_code_and_preserves_semantics() {
        let (report, _) = optimize_and_check(DUPLICATED, Method::Edgar);
        assert!(report.saved_words() > 0, "rounds: {:?}", report.rounds);
    }

    #[test]
    fn sfx_shrinks_duplicated_code_and_preserves_semantics() {
        let (report, _) = optimize_and_check(DUPLICATED, Method::Sfx);
        assert!(report.saved_words() > 0);
    }

    #[test]
    fn dgspan_shrinks_duplicated_code_and_preserves_semantics() {
        let (report, _) = optimize_and_check(DUPLICATED, Method::DgSpan);
        assert!(report.saved_words() > 0);
    }

    #[test]
    fn method_ordering_on_duplicated_code() {
        let image = compile(DUPLICATED, &Options::default()).unwrap();
        let saved = |method: Method| {
            let mut opt = Optimizer::from_image(&image).unwrap();
            opt.run(method).unwrap().saved_words()
        };
        let sfx = saved(Method::Sfx);
        let dgspan = saved(Method::DgSpan);
        let edgar = saved(Method::Edgar);
        // Edgar subsumes DgSpan's counting, so it never does worse. SFX
        // is incomparable on arbitrary *small* inputs (it may outline
        // contiguous sequences that are disconnected in the DFG, which a
        // connected-subgraph miner cannot see); the paper's Edgar ≫ SFX
        // claim is about whole benchmarks and is asserted by the
        // integration suite over the MiBench kernels.
        assert!(edgar >= dgspan, "edgar {edgar} >= dgspan {dgspan}");
        assert!(sfx > 0 && edgar > 0);
    }

    #[test]
    fn fixpoint_leaves_nothing_profitable() {
        let image = compile(DUPLICATED, &Options::default()).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        opt.run(Method::Edgar).unwrap();
        assert!(opt.detect(Method::Edgar, &RunConfig::default()).is_none());
    }

    #[test]
    fn corrupted_candidate_is_rejected_by_the_validator() {
        let image = compile(DUPLICATED, &Options::default()).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        let mut candidate = opt
            .detect(Method::Edgar, &RunConfig::default())
            .expect("duplicated code yields a candidate");
        // Mutate the claimed savings: the validator must re-derive the
        // cost-model figure and refuse the rewrite.
        candidate.saved += 1;
        match opt.apply_candidate(&candidate, ValidateLevel::EveryRound) {
            Err(OptimizerError::Validate(diags)) => {
                assert!(diags
                    .iter()
                    .any(|d| d.code == gpa_verify::Code::SavingsMismatch));
            }
            other => panic!("expected a validation error, got {other:?}"),
        }
    }

    #[test]
    fn reordered_body_is_rejected_by_the_validator() {
        let image = compile(DUPLICATED, &Options::default()).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        let mut candidate = opt
            .detect(Method::Edgar, &RunConfig::default())
            .expect("duplicated code yields a candidate");
        // Find two adjacent dependent body items and swap them; if the
        // body happens to be fully independent, reverse it and demand a
        // savings-neutral but order-breaking pair exists.
        let deps: Vec<usize> = (1..candidate.body.len())
            .filter(|&i| {
                gpa_arm::defuse::conflicts(
                    &candidate.body[i - 1].effects(),
                    &candidate.body[i].effects(),
                )
            })
            .collect();
        let Some(&i) = deps.first() else {
            return; // No dependent pair to scramble in this body.
        };
        candidate.body.swap(i - 1, i);
        match opt.apply_candidate(&candidate, ValidateLevel::EveryRound) {
            Err(OptimizerError::Validate(diags)) => {
                assert!(diags
                    .iter()
                    .any(|d| d.code == gpa_verify::Code::BadLinearization));
            }
            other => panic!("expected a validation error, got {other:?}"),
        }
    }

    #[test]
    fn tracing_never_changes_the_report() {
        use gpa_trace::CounterTracer;
        let image = compile(DUPLICATED, &Options::default()).unwrap();
        let baseline = Optimizer::from_image(&image)
            .unwrap()
            .run(Method::Edgar)
            .unwrap();
        let tracer = Arc::new(CounterTracer::new());
        let config = RunConfig {
            tracer: tracer.clone(),
            ..RunConfig::default()
        };
        let mut opt = Optimizer::from_image(&image).unwrap();
        let traced = opt.run_with(Method::Edgar, &config).unwrap();
        assert_eq!(traced.initial_words, baseline.initial_words);
        assert_eq!(traced.final_words, baseline.final_words);
        assert_eq!(traced.rounds.len(), baseline.rounds.len());
        let c = tracer.counters();
        assert_eq!(c.get("run.rounds") as usize, traced.rounds.len());
        assert_eq!(c.get("round.applied") as usize, traced.rounds.len());
        assert!(c.get("detect.winner") >= 1, "{c:?}");
        assert!(c.get("detect.candidate") >= 1);
        assert!(c.get("mine.patterns_visited") > 0);
        // The visited-pattern identity holds across a whole run.
        assert_eq!(
            c.get("mine.patterns_visited"),
            c.get("mine.expanded")
                + c.get("mine.subtree_skipped")
                + c.get("mine.stopped_max_nodes")
        );
    }

    /// Duplicated functions with real stack traffic: locals are spilled
    /// and reloaded around calls, so conservative MEM edges chain the
    /// spill slots and stack alias analysis has something to relax.
    const STACKY: &str = "
        int h(int x) { return x * 3 + 1; }
        int a(int x, int y) { int u = h(x); int v = h(y); return u * v + u - v; }
        int b(int x, int y) { int u = h(x); int v = h(y); return u * v + u - v + 1; }
        int c(int x, int y) { int u = h(x); int v = h(y); return u * v + u - v + 2; }
        int main() { putint(a(1, 2) + b(3, 4) + c(5, 6)); return 0; }";

    #[test]
    fn stack_alias_run_preserves_semantics_and_certifies_claims() {
        use gpa_trace::CounterTracer;
        for src in [DUPLICATED, STACKY] {
            let image = compile(src, &Options::default()).unwrap();
            let before = Machine::new(&image).run(100_000_000).unwrap();
            let tracer = Arc::new(CounterTracer::new());
            let config = RunConfig {
                alias: AliasLevel::Stack,
                validate: ValidateLevel::EveryRound,
                tracer: tracer.clone(),
                ..RunConfig::default()
            };
            let mut opt = Optimizer::from_image(&image).unwrap();
            let report = opt.run_with(Method::Edgar, &config).unwrap();
            assert!(report.saved_words() > 0);
            let optimized = opt.encode().unwrap();
            let after = Machine::new(&optimized).run(100_000_000).unwrap();
            assert_eq!(before.exit_code, after.exit_code);
            assert_eq!(before.output, after.output);
            let c = tracer.counters();
            assert!(c.get("absint.points") > 0);
            assert_eq!(
                c.get("absint.mem_pairs_examined"),
                c.get("absint.mem_pairs_disjoint") + c.get("absint.mem_pairs_kept")
            );
        }
    }

    #[test]
    fn stack_alias_never_saves_less_than_conservative() {
        for src in [DUPLICATED, STACKY] {
            let image = compile(src, &Options::default()).unwrap();
            let saved = |alias: AliasLevel| {
                let config = RunConfig {
                    alias,
                    validate: ValidateLevel::EveryRound,
                    ..RunConfig::default()
                };
                let mut opt = Optimizer::from_image(&image).unwrap();
                opt.run_with(Method::Edgar, &config).unwrap().saved_words()
            };
            let off = saved(AliasLevel::Off);
            let stack = saved(AliasLevel::Stack);
            assert!(stack >= off, "stack {stack} < off {off}");
        }
    }

    #[test]
    fn alias_level_names_round_trip() {
        for level in [AliasLevel::Off, AliasLevel::Stack] {
            assert_eq!(AliasLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(AliasLevel::parse("both"), None);
        assert_eq!(AliasLevel::default(), AliasLevel::Off);
    }

    #[test]
    fn no_duplication_means_no_rounds() {
        let src = "int main() { return 9; }";
        let image = compile(src, &Options::default()).unwrap();
        let mut opt = Optimizer::from_image(&image).unwrap();
        let report = opt.run(Method::Edgar).unwrap();
        // Tiny programs may still contain accidental repeats in the
        // runtime; just require termination and non-negative savings.
        assert!(report.saved_words() >= 0);
    }
}
