//! The translation validator: re-derives every claim an extraction makes.
//!
//! [`crate::extract::apply`] asserts, implicitly, that the rewrite it
//! performs is sound. This module checks those claims *statically and
//! independently* after the fact, against the programs before and after
//! the rewrite:
//!
//! * **V101** — the candidate's `saved` figure matches both the shared
//!   cost model and the actual instruction-count delta;
//! * **V102** — the fragment body is a dependence-preserving
//!   linearization of each occurrence, and each occurrence is convex
//!   (no dependence path leaves the fragment and re-enters it);
//! * **V103** — nothing the fragment clobbers beyond what the replaced
//!   instructions clobbered (in practice: `lr`, written by the inserted
//!   `bl`) is live after any rewritten site, per interprocedural
//!   liveness with call summaries;
//! * **V104** — the rewritten program survives an encode → decode →
//!   encode round trip byte-identically;
//! * **V105** — the new fragment function has exactly the shape the
//!   [`ExtractionKind`] promises (wrap, body, return) and the number of
//!   rewritten sites equals the number of occurrences;
//! * **V107** — every MEM dependence the detection-side alias analysis
//!   dropped ([`Candidate::relaxed`]) is re-derived here by running the
//!   [`gpa_verify::absint`] interpreter from scratch on the pre-rewrite
//!   program; a claim this validator cannot prove disjoint itself — or
//!   any claim at all under [`AliasLevel::Off`] — rejects the rewrite.
//!   Only re-derived pairs are exempted from the memory component of the
//!   dependence checks above.
//!
//! The validator shares no code with the extractor: dependences are
//! re-derived from [`Item::effects`], liveness comes from
//! [`gpa_verify`]'s dataflow engine, and the expected fragment shape is
//! reconstructed from the [`Candidate`] alone. A bug in either side
//! surfaces as a disagreement.

use std::collections::{HashMap, HashSet};

use gpa_arm::defuse::{mem_conflict, reg_or_flag_conflict, Effects};
use gpa_arm::reg::RegSet;
use gpa_arm::Reg;
use gpa_cfg::{decode_image, encode_program, Item, Program};
use gpa_verify::{
    absint, lint_program, AbsEnv, AbsInt, CallGraph, Code, Diagnostic, FnCfg, FnSummary, LiveState,
    Liveness, Location, SummaryTransfer,
};

use crate::candidate::{Candidate, ExtractionKind};
use crate::cost;
use crate::optimizer::AliasLevel;

/// Claims the validator re-derived, as `(function, earlier, later)`
/// absolute item-index triples; only these pairs are exempt from the
/// memory component of the dependence checks.
type VerifiedClaims = HashSet<(usize, usize, usize)>;

/// When the optimizer re-validates its own rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidateLevel {
    /// Trust the extractor; no validation.
    Off,
    /// Lint and round-trip the final program once, after the fixpoint.
    Final,
    /// Validate every extraction round against the program it rewrote,
    /// plus the final checks.
    EveryRound,
}

impl Default for ValidateLevel {
    /// [`ValidateLevel::EveryRound`] in debug builds, [`ValidateLevel::Off`]
    /// in release builds — mirroring the `debug_assert!` economics the
    /// validator replaces.
    fn default() -> ValidateLevel {
        if cfg!(debug_assertions) {
            ValidateLevel::EveryRound
        } else {
            ValidateLevel::Off
        }
    }
}

/// Validates one applied extraction: `before` is the program the
/// candidate was detected on, `after` the program [`crate::extract::apply`]
/// produced, `frag_name` the new fragment function's name.
///
/// Returns every violated claim as a [`Diagnostic`]; an empty vector
/// means the rewrite checks out.
pub fn validate_extraction(
    before: &Program,
    after: &Program,
    candidate: &Candidate,
    frag_name: &str,
) -> Vec<Diagnostic> {
    validate_extraction_with(before, after, candidate, frag_name, AliasLevel::Off)
}

/// [`validate_extraction`] for a candidate detected under `alias`: the
/// candidate's relaxed-MEM claims are re-derived first (V107), and only
/// claims that check out are honored by the dependence checks.
pub fn validate_extraction_with(
    before: &Program,
    after: &Program,
    candidate: &Candidate,
    frag_name: &str,
    alias: AliasLevel,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_savings(before, after, candidate, &mut diags);
    let verified = check_alias_claims(before, candidate, alias, &mut diags);
    check_occurrences(before, candidate, &verified, &mut diags);
    check_fragment_shape(after, candidate, frag_name, &mut diags);
    check_live_clobbers(after, candidate, frag_name, &mut diags);
    diags
}

/// V107: re-derives every relaxed-MEM claim with a fresh run of the
/// abstract interpreter over the *pre-rewrite* program. Returns the
/// claims that held; each failure (and any claim at all when alias
/// analysis is off) is reported as an error.
fn check_alias_claims(
    before: &Program,
    candidate: &Candidate,
    alias: AliasLevel,
    diags: &mut Vec<Diagnostic>,
) -> VerifiedClaims {
    let mut verified = VerifiedClaims::new();
    if candidate.relaxed.is_empty() {
        return verified;
    }
    if alias == AliasLevel::Off {
        diags.push(Diagnostic::error(
            Code::AliasUnsound,
            Location::program(),
            format!(
                "candidate carries {} relaxed-MEM claim(s) but alias analysis is off",
                candidate.relaxed.len()
            ),
        ));
        return verified;
    }
    let graph = CallGraph::build(before);
    let env = AbsEnv::build(before, &graph);
    let mut analyses: HashMap<usize, AbsInt> = HashMap::new();
    for claim in &candidate.relaxed {
        let Some(f) = before.functions.get(claim.function) else {
            diags.push(Diagnostic::error(
                Code::AliasUnsound,
                Location::program(),
                format!(
                    "relaxed-MEM claim references function #{} which does not exist",
                    claim.function
                ),
            ));
            continue;
        };
        if claim.earlier >= claim.later || claim.later >= f.items.len() {
            diags.push(Diagnostic::error(
                Code::AliasUnsound,
                Location::function(&f.name),
                format!(
                    "relaxed-MEM claim ({}, {}) is unordered or out of range",
                    claim.earlier, claim.later
                ),
            ));
            continue;
        }
        let analysis = analyses
            .entry(claim.function)
            .or_insert_with(|| AbsInt::analyze(f, Some(&env)));
        let footprint = |idx: usize| {
            let state = analysis.before.get(idx)?.as_ref()?;
            absint::resolved_accesses(state, &f.items[idx], Some(&env))
        };
        let (Some(a), Some(b)) = (footprint(claim.earlier), footprint(claim.later)) else {
            diags.push(Diagnostic::error(
                Code::AliasUnsound,
                Location::item(&f.name, claim.later),
                format!(
                    "relaxed-MEM claim ({}, {}): the validator cannot resolve both \
                     accesses to based byte intervals",
                    claim.earlier, claim.later
                ),
            ));
            continue;
        };
        if a.iter().all(|x| {
            b.iter()
                .all(|y| x.provably_disjoint(y, claim.earlier, claim.later))
        }) {
            verified.insert((claim.function, claim.earlier, claim.later));
        } else {
            diags.push(Diagnostic::error(
                Code::AliasUnsound,
                Location::item(&f.name, claim.later),
                format!(
                    "relaxed-MEM claim ({}, {}): the accesses are not provably disjoint",
                    claim.earlier, claim.later
                ),
            ));
        }
    }
    verified
}

/// Validates a whole program: the structural lints plus the
/// encode → decode → encode round trip (V104).
pub fn validate_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = lint_program(program);
    check_round_trip(program, &mut diags);
    diags
}

/// V101: the claimed savings must match the cost model *and* the actual
/// instruction-count delta.
fn check_savings(
    before: &Program,
    after: &Program,
    candidate: &Candidate,
    diags: &mut Vec<Diagnostic>,
) {
    let model = cost::saved_words(
        candidate.body_words(),
        candidate.occurrences.len(),
        candidate.kind,
    );
    if model != candidate.saved {
        diags.push(Diagnostic::error(
            Code::SavingsMismatch,
            Location::program(),
            format!(
                "candidate claims {} saved words but the cost model yields {model} \
                 ({} body words × {} occurrences, {:?})",
                candidate.saved,
                candidate.body_words(),
                candidate.occurrences.len(),
                candidate.kind
            ),
        ));
    }
    let actual = before.instruction_count() as i64 - after.instruction_count() as i64;
    if actual != candidate.saved {
        diags.push(Diagnostic::error(
            Code::SavingsMismatch,
            Location::program(),
            format!(
                "candidate claims {} saved words but the rewrite removed {actual}",
                candidate.saved
            ),
        ));
    }
}

/// V102: per occurrence, the body must be a dependence-preserving
/// linearization of the occurrence's items, the occurrence must be
/// convex within its region, and a cross-jump occurrence must be
/// exit-closed (the rewrite moves every later external item *before*
/// the fragment, so no dependence may point from a member to one).
///
/// Memory dependences between pairs in `verified` are exempt — those
/// are exactly the claims V107 re-derived.
fn check_occurrences(
    before: &Program,
    candidate: &Candidate,
    verified: &VerifiedClaims,
    diags: &mut Vec<Diagnostic>,
) {
    for (o, occ) in candidate.occurrences.iter().enumerate() {
        let Some(f) = before.functions.get(occ.function) else {
            diags.push(Diagnostic::error(
                Code::BadLinearization,
                Location::program(),
                format!(
                    "occurrence {o} references function #{} which does not exist",
                    occ.function
                ),
            ));
            continue;
        };
        let region_end = occ.region_start + occ.region_len;
        if region_end > f.items.len()
            || occ
                .item_indices
                .iter()
                .any(|&i| i < occ.region_start || i >= region_end)
        {
            diags.push(Diagnostic::error(
                Code::BadLinearization,
                Location::function(&f.name),
                format!("occurrence {o} has item indices outside its region"),
            ));
            continue;
        }
        let region = &f.items[occ.region_start..region_end];
        let members: Vec<usize> = occ
            .item_indices
            .iter()
            .map(|&i| i - occ.region_start)
            .collect();
        if members.len() != candidate.body.len() {
            diags.push(Diagnostic::error(
                Code::BadLinearization,
                Location::function(&f.name),
                format!(
                    "occurrence {o} has {} items but the body has {}",
                    members.len(),
                    candidate.body.len()
                ),
            ));
            continue;
        }
        // Project the verified claims onto this region: region-local
        // `(earlier, later)` pairs whose MEM dependence may be ignored.
        let exempt: HashSet<(usize, usize)> = verified
            .iter()
            .filter(|&&(func, _, later)| func == occ.function && later < region_end)
            .filter(|&&(_, earlier, _)| earlier >= occ.region_start)
            .map(|&(_, earlier, later)| (earlier - occ.region_start, later - occ.region_start))
            .collect();
        check_linearization(region, &members, &exempt, candidate, &f.name, o, diags);
        check_convexity(region, &members, &exempt, &f.name, o, diags);
        if candidate.kind == ExtractionKind::CrossJump {
            check_exit_closed(region, &members, &exempt, &f.name, o, diags);
        }
    }
}

/// The dependence predicate the occurrence checks share: `u < v` are
/// region positions; the pair depends unless its only conflict is the
/// memory one and `(u, v)` is an exempted (V107-verified) pair.
fn refined_conflict(
    effects: &[Effects],
    exempt: &HashSet<(usize, usize)>,
    u: usize,
    v: usize,
) -> bool {
    reg_or_flag_conflict(&effects[u], &effects[v])
        || (mem_conflict(&effects[u], &effects[v]) && !exempt.contains(&(u, v)))
}

/// Matches body items to occurrence items and checks the body order
/// preserves every dependence among them.
///
/// The greedy first-match assignment is complete: two identical items
/// always conflict with each other (they share defs, or flag writes),
/// so any dependence-valid linearization keeps equal items in their
/// original relative order — exactly what first-match picks.
fn check_linearization(
    region: &[Item],
    members: &[usize],
    exempt: &HashSet<(usize, usize)>,
    candidate: &Candidate,
    fname: &str,
    o: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let mut used = vec![false; members.len()];
    // Original region position matched to each body position.
    let mut matched: Vec<usize> = Vec::with_capacity(candidate.body.len());
    for (b, item) in candidate.body.iter().enumerate() {
        let Some(k) = (0..members.len()).find(|&k| !used[k] && region[members[k]] == *item) else {
            diags.push(Diagnostic::error(
                Code::BadLinearization,
                Location::function(fname),
                format!("occurrence {o} has no unmatched item equal to body item {b}"),
            ));
            return;
        };
        used[k] = true;
        matched.push(members[k]);
    }
    let effects: Vec<_> = region.iter().map(Item::effects).collect();
    for b in 0..matched.len() {
        for b2 in (b + 1)..matched.len() {
            let (u, v) = (matched[b], matched[b2]);
            // The body emits u before v; if the two depend on each other
            // the original order must agree.
            if u > v && refined_conflict(&effects, exempt, v, u) {
                diags.push(Diagnostic::error(
                    Code::BadLinearization,
                    Location::item(fname, u),
                    format!(
                        "occurrence {o}: body order swaps dependent items \
                         (region positions {v} and {u})"
                    ),
                ));
                return;
            }
        }
    }
}

/// Checks convexity (the paper's Fig. 9): no dependence path from a
/// fragment item through an external region item back into the fragment.
fn check_convexity(
    region: &[Item],
    members: &[usize],
    exempt: &HashSet<(usize, usize)>,
    fname: &str,
    o: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let n = region.len();
    let effects: Vec<_> = region.iter().map(Item::effects).collect();
    // Transitive closure of the dependence DAG (edges point forward in
    // region order), as bitsets: reach[u] = positions reachable from u.
    let words = n.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; n];
    for u in (0..n).rev() {
        for v in (u + 1)..n {
            if refined_conflict(&effects, exempt, u, v) {
                reach[u][v / 64] |= 1 << (v % 64);
                let (head, tail) = reach.split_at_mut(v);
                for (w, bits) in tail[0].iter().enumerate() {
                    head[u][w] |= *bits;
                }
            }
        }
    }
    let is_member = {
        let mut set = vec![false; n];
        for &m in members {
            set[m] = true;
        }
        set
    };
    let bit = |bits: &[u64], i: usize| bits[i / 64] & (1 << (i % 64)) != 0;
    let (lo, hi) = (members[0], *members.last().expect("non-empty occurrence"));
    for w in lo..=hi {
        if is_member[w] {
            continue;
        }
        let from_fragment = members.iter().any(|&a| bit(&reach[a], w));
        let back_in = members.iter().any(|&c| bit(&reach[w], c));
        if from_fragment && back_in {
            diags.push(Diagnostic::error(
                Code::BadLinearization,
                Location::item(fname, w),
                format!(
                    "occurrence {o} is not convex: dependences flow out \
                     through region position {w} and back in"
                ),
            ));
            return;
        }
    }
}

/// Checks a cross-jump occurrence is exit-closed: the rewrite keeps the
/// region's external items in place and replaces the members with a
/// trailing tail-call, so every external item *after* a member ends up
/// executing *before* it. No dependence may point from a member to a
/// later external item.
fn check_exit_closed(
    region: &[Item],
    members: &[usize],
    exempt: &HashSet<(usize, usize)>,
    fname: &str,
    o: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let is_member = {
        let mut set = vec![false; region.len()];
        for &m in members {
            set[m] = true;
        }
        set
    };
    let effects: Vec<_> = region.iter().map(Item::effects).collect();
    for &u in members {
        for (w, &member) in is_member.iter().enumerate().skip(u + 1) {
            if !member && refined_conflict(&effects, exempt, u, w) {
                diags.push(Diagnostic::error(
                    Code::BadLinearization,
                    Location::item(fname, w),
                    format!(
                        "occurrence {o} is not exit-closed: fragment item at region \
                         position {u} has a dependence into later external position {w}"
                    ),
                ));
                return;
            }
        }
    }
}

/// V105: the fragment function must exist with the promised shape, and
/// the rewritten program must contain exactly one call site per
/// occurrence.
fn check_fragment_shape(
    after: &Program,
    candidate: &Candidate,
    frag_name: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(frag) = after.functions.iter().find(|f| f.name == frag_name) else {
        diags.push(Diagnostic::error(
            Code::BadFragmentShape,
            Location::program(),
            format!("fragment function `{frag_name}` was not created"),
        ));
        return;
    };
    let body = &candidate.body;
    let shape_ok = match candidate.kind {
        ExtractionKind::Procedure { lr_save: false } => {
            frag.items.len() == body.len() + 1
                && frag.items[..body.len()] == body[..]
                && frag.items[body.len()].is_return()
        }
        ExtractionKind::Procedure { lr_save: true } => {
            let wrap_ok =
                frag.items.len() == body.len() + 2 && frag.items[1..=body.len()] == body[..];
            wrap_ok && {
                let push = frag.items[0].effects();
                let pop = frag.items[body.len() + 1].effects();
                push.defs.contains(Reg::SP)
                    && push.uses.contains(Reg::LR)
                    && frag.items[body.len() + 1].is_return()
                    && pop.uses.contains(Reg::SP)
            }
        }
        ExtractionKind::CrossJump => {
            frag.items[..] == body[..] && frag.items.last().is_some_and(Item::is_return)
        }
    };
    if !shape_ok {
        diags.push(Diagnostic::error(
            Code::BadFragmentShape,
            Location::function(frag_name),
            format!(
                "fragment does not match its claimed {:?} shape around the body",
                candidate.kind
            ),
        ));
    }
    let is_site = |item: &Item| match candidate.kind {
        ExtractionKind::Procedure { .. } => {
            matches!(item, Item::Call { target, .. } if target == frag_name)
        }
        ExtractionKind::CrossJump => {
            matches!(item, Item::TailCall { target, .. } if target == frag_name)
        }
    };
    let sites: usize = after
        .functions
        .iter()
        .filter(|f| f.name != frag_name)
        .map(|f| f.items.iter().filter(|i| is_site(i)).count())
        .sum();
    if sites != candidate.occurrences.len() {
        diags.push(Diagnostic::error(
            Code::BadFragmentShape,
            Location::program(),
            format!(
                "{} call sites reference `{frag_name}` but the candidate \
                 claims {} occurrences",
                sites,
                candidate.occurrences.len()
            ),
        ));
    }
}

/// The registers an item sequence may clobber, with calls refined
/// through the program's summaries instead of the conservative barrier.
fn refined_defs(items: &[Item], graph: &CallGraph) -> (RegSet, bool) {
    let mut defs = RegSet::EMPTY;
    let mut flags = false;
    let callee = |name: &str| {
        graph
            .summary(name)
            .copied()
            .unwrap_or_else(FnSummary::conservative)
    };
    for item in items {
        match item {
            Item::Call { target, .. } => {
                defs.insert(Reg::LR);
                let s = callee(target);
                defs = defs.union(s.defs);
                flags |= s.writes_flags;
            }
            Item::TailCall { target, .. } => {
                let s = callee(target);
                defs = defs.union(s.defs);
                flags |= s.writes_flags;
            }
            Item::IndirectCall { .. } => {
                defs = defs.union(FnSummary::conservative().defs);
                flags = true;
            }
            other => {
                let fx = other.effects();
                defs = defs.union(fx.defs);
                flags |= fx.writes_flags;
            }
        }
    }
    defs.remove(Reg::PC);
    (defs, flags)
}

/// V103: at every rewritten site, the state the call clobbers *beyond*
/// what the replaced instructions clobbered must be dead.
///
/// For a procedure extraction the inserted `bl` always clobbers `lr`
/// (and an `lr`-saving wrap moves `sp`, but restores it — excluded).
/// Cross-jump sites never resume, so there is nothing live after them.
fn check_live_clobbers(
    after: &Program,
    candidate: &Candidate,
    frag_name: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if candidate.kind == ExtractionKind::CrossJump {
        return;
    }
    let graph = CallGraph::build(after);
    let (mut frag_defs, frag_flags) = match graph.summary(frag_name) {
        Some(s) => (s.defs, s.writes_flags),
        None => return, // Reported by the shape check.
    };
    frag_defs.insert(Reg::LR); // The bl at each site writes lr.
    let (body_defs, body_flags) = refined_defs(&candidate.body, &graph);
    let mut extra = frag_defs.difference(body_defs);
    if matches!(candidate.kind, ExtractionKind::Procedure { lr_save: true }) {
        // The push {lr} / pop {pc} wrap moves sp and restores it.
        extra.remove(Reg::SP);
    }
    let extra_flags = frag_flags && !body_flags;
    if extra.is_empty() && !extra_flags {
        return;
    }
    let transfer = SummaryTransfer::new(&graph);
    for f in &after.functions {
        if f.name == frag_name {
            continue;
        }
        let sites: Vec<usize> = f
            .items
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Item::Call { target, .. } if target == frag_name))
            .map(|(i, _)| i)
            .collect();
        if sites.is_empty() {
            continue;
        }
        let cfg = FnCfg::build(f);
        let live = Liveness::analyze(f, &cfg, &transfer, LiveState::EMPTY);
        for site in sites {
            let after_site = live.live_after(f, &cfg, &transfer, site);
            let clobbered = extra.intersection(after_site.regs);
            if !clobbered.is_empty() {
                diags.push(Diagnostic::error(
                    Code::LiveClobber,
                    Location::item(&f.name, site),
                    format!(
                        "call to `{frag_name}` clobbers live register(s) {clobbered} \
                         the replaced instructions left intact"
                    ),
                ));
            }
            if extra_flags && after_site.flags {
                diags.push(Diagnostic::error(
                    Code::LiveClobber,
                    Location::item(&f.name, site),
                    format!(
                        "call to `{frag_name}` clobbers the live condition flags \
                         the replaced instructions left intact"
                    ),
                ));
            }
        }
    }
}

/// V104: the program must survive encode → decode → encode with a
/// byte-identical image — i.e. its encoding is a fixpoint of the lift.
fn check_round_trip(program: &Program, diags: &mut Vec<Diagnostic>) {
    let image = match encode_program(program) {
        Ok(image) => image,
        Err(e) => {
            diags.push(Diagnostic::error(
                Code::RoundTrip,
                Location::program(),
                format!("program does not re-encode: {e}"),
            ));
            return;
        }
    };
    let lifted = match decode_image(&image) {
        Ok(p) => p,
        Err(e) => {
            diags.push(Diagnostic::error(
                Code::RoundTrip,
                Location::program(),
                format!("encoded image does not lift back: {e}"),
            ));
            return;
        }
    };
    match encode_program(&lifted) {
        Ok(again) if again == image => {}
        Ok(_) => diags.push(Diagnostic::error(
            Code::RoundTrip,
            Location::program(),
            "encode → decode → encode does not reproduce the image".to_owned(),
        )),
        Err(e) => diags.push(Diagnostic::error(
            Code::RoundTrip,
            Location::program(),
            format!("lifted program does not re-encode: {e}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use gpa_cfg::FunctionCode;
    use gpa_verify::has_errors;

    use crate::candidate::Occurrence;
    use crate::extract;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn program(functions: Vec<FunctionCode>) -> Program {
        let entry = functions[0].name.clone();
        Program {
            functions,
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry,
        }
    }

    fn func(name: &str, texts: &[&str]) -> FunctionCode {
        FunctionCode {
            name: name.into(),
            address_taken: false,
            items: texts.iter().map(|t| insn(t)).collect(),
            label_count: 0,
        }
    }

    /// Two lr-free functions sharing a 3-item block, plus the candidate
    /// extracting it as a plain procedure.
    fn shared_block_case() -> (Program, Candidate) {
        let block = ["ldr r3, [r0]", "add r3, r3, #1", "str r3, [r0]"];
        let wrap = |name: &str| {
            let mut items = vec![insn("push {r4, lr}")];
            items.extend(block.iter().map(|t| insn(t)));
            items.push(insn("pop {r4, pc}"));
            FunctionCode {
                name: name.into(),
                address_taken: false,
                items,
                label_count: 0,
            }
        };
        let p = program(vec![wrap("a"), wrap("b")]);
        let body: Vec<Item> = block.iter().map(|t| insn(t)).collect();
        let kind = ExtractionKind::Procedure { lr_save: false };
        let candidate = Candidate {
            saved: cost::saved_words(body.len(), 2, kind),
            body,
            occurrences: vec![
                Occurrence {
                    function: 0,
                    region_start: 0,
                    region_len: 5,
                    item_indices: vec![1, 2, 3],
                },
                Occurrence {
                    function: 1,
                    region_start: 0,
                    region_len: 5,
                    item_indices: vec![1, 2, 3],
                },
            ],
            kind,
            relaxed: Vec::new(),
        };
        (p, candidate)
    }

    fn applied(p: &Program, c: &Candidate) -> Program {
        let mut after = p.clone();
        extract::apply(&mut after, c, "__gpa_frag0").unwrap();
        after
    }

    #[test]
    fn sound_extraction_validates_clean() {
        let (p, c) = shared_block_case();
        let after = applied(&p, &c);
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wrong_savings_caught() {
        let (p, mut c) = shared_block_case();
        let after = applied(&p, &c);
        c.saved += 1;
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(diags.iter().any(|d| d.code == Code::SavingsMismatch));
        assert!(has_errors(&diags));
    }

    #[test]
    fn scrambled_body_order_caught() {
        let (p, mut c) = shared_block_case();
        let after = applied(&p, &c);
        // `ldr` and `add` form a read-after-write pair; swapping them in
        // the body breaks the linearization claim.
        c.body.swap(0, 1);
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(diags.iter().any(|d| d.code == Code::BadLinearization));
    }

    #[test]
    fn non_convex_occurrence_caught() {
        // r3 flows out of item 0 into external item 1 and back into
        // item 2 — the classic Fig. 9 rejection.
        let f = func(
            "f",
            &["ldr r3, [r1]", "add r4, r3, #1", "str r4, [r3]", "bx lr"],
        );
        let p = program(vec![f]);
        let c = Candidate {
            body: vec![insn("ldr r3, [r1]"), insn("str r4, [r3]")],
            occurrences: vec![Occurrence {
                function: 0,
                region_start: 0,
                region_len: 4,
                item_indices: vec![0, 2],
            }],
            kind: ExtractionKind::Procedure { lr_save: false },
            saved: 1,
            relaxed: Vec::new(),
        };
        let mut diags = Vec::new();
        check_occurrences(&p, &c, &VerifiedClaims::new(), &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::BadLinearization));
    }

    #[test]
    fn missing_fragment_function_caught() {
        let (p, c) = shared_block_case();
        let mut after = applied(&p, &c);
        after.functions.pop();
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(diags.iter().any(|d| d.code == Code::BadFragmentShape));
    }

    #[test]
    fn lr_live_after_site_caught() {
        // A leaf function keeps its entry lr live up to the `bx lr`;
        // inserting a bl there clobbers it.
        let block = ["ldr r3, [r0]", "add r3, r3, #1", "str r3, [r0]"];
        let leaf = |name: &str| {
            let mut items: Vec<Item> = block.iter().map(|t| insn(t)).collect();
            items.push(insn("bx lr"));
            FunctionCode {
                name: name.into(),
                address_taken: false,
                items,
                label_count: 0,
            }
        };
        let p = program(vec![leaf("a"), leaf("b")]);
        let body: Vec<Item> = block.iter().map(|t| insn(t)).collect();
        let kind = ExtractionKind::Procedure { lr_save: false };
        let c = Candidate {
            saved: cost::saved_words(body.len(), 2, kind),
            body,
            occurrences: vec![
                Occurrence {
                    function: 0,
                    region_start: 0,
                    region_len: 4,
                    item_indices: vec![0, 1, 2],
                },
                Occurrence {
                    function: 1,
                    region_start: 0,
                    region_len: 4,
                    item_indices: vec![0, 1, 2],
                },
            ],
            kind,
            relaxed: Vec::new(),
        };
        let after = applied(&p, &c);
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(
            diags.iter().any(|d| d.code == Code::LiveClobber),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_jump_validates_clean() {
        let tail = ["add r0, r0, #1", "pop {r4, pc}"];
        let build = |name: &str, lead: &str| {
            let mut items = vec![insn("push {r4, lr}"), insn(lead)];
            items.extend(tail.iter().map(|t| insn(t)));
            FunctionCode {
                name: name.into(),
                address_taken: false,
                items,
                label_count: 0,
            }
        };
        let p = program(vec![build("a", "mov r0, #1"), build("b", "mov r0, #2")]);
        let body: Vec<Item> = tail.iter().map(|t| insn(t)).collect();
        let c = Candidate {
            saved: cost::saved_words(body.len(), 2, ExtractionKind::CrossJump),
            body,
            occurrences: vec![
                Occurrence {
                    function: 0,
                    region_start: 0,
                    region_len: 4,
                    item_indices: vec![2, 3],
                },
                Occurrence {
                    function: 1,
                    region_start: 0,
                    region_len: 4,
                    item_indices: vec![2, 3],
                },
            ],
            kind: ExtractionKind::CrossJump,
            relaxed: Vec::new(),
        };
        let after = applied(&p, &c);
        let diags = validate_extraction(&p, &after, &c, "__gpa_frag0");
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// A function with two provably disjoint stack stores (entry-sp
    /// ranges [-8, -4) and [-4, 0)) and a load overlapping the first.
    fn stack_slots_fn() -> Program {
        program(vec![func(
            "f",
            &[
                "sub sp, sp, #8",
                "str r0, [sp]",
                "str r1, [sp, #4]",
                "ldr r2, [sp]",
                "add sp, sp, #8",
                "bx lr",
            ],
        )])
    }

    fn claim(function: usize, earlier: usize, later: usize) -> crate::candidate::RelaxedPair {
        crate::candidate::RelaxedPair {
            function,
            earlier,
            later,
        }
    }

    fn claim_only_candidate(relaxed: Vec<crate::candidate::RelaxedPair>) -> Candidate {
        Candidate {
            body: Vec::new(),
            occurrences: Vec::new(),
            kind: ExtractionKind::Procedure { lr_save: false },
            saved: 0,
            relaxed,
        }
    }

    #[test]
    fn disjoint_stack_claim_is_re_derived() {
        let p = stack_slots_fn();
        let c = claim_only_candidate(vec![claim(0, 1, 2)]);
        let mut diags = Vec::new();
        let verified = check_alias_claims(&p, &c, AliasLevel::Stack, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(verified.contains(&(0, 1, 2)));
    }

    #[test]
    fn overlapping_claim_rejected() {
        let p = stack_slots_fn();
        // Items 1 and 3 both touch [-8, -4): the claim is a lie.
        let c = claim_only_candidate(vec![claim(0, 1, 3)]);
        let mut diags = Vec::new();
        let verified = check_alias_claims(&p, &c, AliasLevel::Stack, &mut diags);
        assert!(verified.is_empty());
        assert!(diags.iter().any(|d| d.code == Code::AliasUnsound));
    }

    #[test]
    fn unresolvable_and_out_of_range_claims_rejected() {
        let p = stack_slots_fn();
        // Item 0 is not a memory access the interpreter can bound against
        // item 5 (`bx lr`), and (9, 3) is unordered.
        let c = claim_only_candidate(vec![claim(0, 9, 3), claim(7, 1, 2)]);
        let mut diags = Vec::new();
        let verified = check_alias_claims(&p, &c, AliasLevel::Stack, &mut diags);
        assert!(verified.is_empty());
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == Code::AliasUnsound)
                .count(),
            2
        );
    }

    #[test]
    fn any_claim_rejected_when_alias_off() {
        let p = stack_slots_fn();
        let c = claim_only_candidate(vec![claim(0, 1, 2)]);
        let mut diags = Vec::new();
        let verified = check_alias_claims(&p, &c, AliasLevel::Off, &mut diags);
        assert!(verified.is_empty());
        assert!(diags.iter().any(|d| d.code == Code::AliasUnsound));
    }

    #[test]
    fn verified_claim_permits_relaxed_linearization() {
        let p = stack_slots_fn();
        // Body emits the two stores swapped relative to region order:
        // only legal because their footprints are disjoint.
        let c = Candidate {
            body: vec![insn("str r1, [sp, #4]"), insn("str r0, [sp]")],
            occurrences: vec![Occurrence {
                function: 0,
                region_start: 0,
                region_len: 6,
                item_indices: vec![1, 2],
            }],
            kind: ExtractionKind::Procedure { lr_save: false },
            saved: 0,
            relaxed: vec![claim(0, 1, 2)],
        };
        let mut conservative = Vec::new();
        check_occurrences(&p, &c, &VerifiedClaims::new(), &mut conservative);
        assert!(conservative
            .iter()
            .any(|d| d.code == Code::BadLinearization));
        let mut diags = Vec::new();
        let verified = check_alias_claims(&p, &c, AliasLevel::Stack, &mut diags);
        check_occurrences(&p, &c, &verified, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cross_jump_exit_escape_caught() {
        // Member 1 stores through r1; external item 2 loads the same
        // address *after* it. The cross-jump rewrite would move the load
        // before the store — the validator must reject this even though
        // the occurrence is convex under the classic Fig. 9 test.
        let f = func(
            "f",
            &["mov r0, #1", "str r0, [r1]", "ldr r2, [r1]", "pop {r4, pc}"],
        );
        let p = program(vec![f]);
        let c = Candidate {
            body: vec![insn("str r0, [r1]"), insn("pop {r4, pc}")],
            occurrences: vec![Occurrence {
                function: 0,
                region_start: 0,
                region_len: 4,
                item_indices: vec![1, 3],
            }],
            kind: ExtractionKind::CrossJump,
            saved: 1,
            relaxed: Vec::new(),
        };
        let mut diags = Vec::new();
        check_occurrences(&p, &c, &VerifiedClaims::new(), &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::BadLinearization && d.message.contains("not exit-closed")),
            "{diags:?}"
        );
    }

    #[test]
    fn default_level_tracks_build_profile() {
        let expected = if cfg!(debug_assertions) {
            ValidateLevel::EveryRound
        } else {
            ValidateLevel::Off
        };
        assert_eq!(ValidateLevel::default(), expected);
    }
}
