//! Applying an extraction to the program (§2.1 step 8).
//!
//! Procedure extraction contracts each occurrence's nodes into a single
//! call and re-schedules the region topologically; cross-jump extraction
//! moves the shared tail into a new "function" every occurrence branches
//! to. Both directions of the dependence relation are re-derived from the
//! items themselves, so a cycle (which the detection filters should have
//! prevented) is caught and reported rather than miscompiled.

use std::collections::HashSet;
use std::fmt;

use gpa_arm::Cond;
use gpa_cfg::{FunctionCode, Item, Program};

use crate::candidate::{Candidate, ExtractionKind, Occurrence};

/// Error produced when an extraction cannot be applied soundly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtractError(String);

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot extract fragment: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

/// A scheduling unit of a contracted region: one external item or one
/// whole occurrence.
enum Unit {
    External(usize),      // item index, relative to region
    Fragment(Vec<usize>), // member item indices, relative to region
}

impl Unit {
    fn members(&self) -> &[usize] {
        match self {
            Unit::External(i) => std::slice::from_ref(i),
            Unit::Fragment(v) => v,
        }
    }

    fn min_pos(&self) -> usize {
        *self.members().first().expect("units are non-empty")
    }
}

/// Computes the rewritten item list of a region after contracting the
/// given occurrences (item indices relative to the region) into calls to
/// `frag_name`. Returns `None` when the contraction would create a cyclic
/// dependence (the occurrences are incompatible).
///
/// Also usable as a dry-run compatibility check during detection.
pub fn contract_region(
    region_items: &[Item],
    occurrence_sets: &[Vec<usize>],
    frag_name: &str,
) -> Option<Vec<Item>> {
    contract_region_with(region_items, occurrence_sets, frag_name, &HashSet::new())
}

/// [`contract_region`] with a set of region-local `(earlier, later)` item
/// pairs whose *memory* conflicts are exempt from the dependence relation
/// — pairs an alias analysis proved touch disjoint stack slots. Register
/// and flag conflicts are never exempt. Every exemption the rewrite
/// relies on must reach the validator as a [`Candidate::relaxed`] claim
/// so V107 can re-derive it.
pub fn contract_region_with(
    region_items: &[Item],
    occurrence_sets: &[Vec<usize>],
    frag_name: &str,
    exempt: &HashSet<(usize, usize)>,
) -> Option<Vec<Item>> {
    let in_fragment: HashSet<usize> = occurrence_sets.iter().flatten().copied().collect();
    debug_assert_eq!(
        in_fragment.len(),
        occurrence_sets.iter().map(Vec::len).sum::<usize>(),
        "occurrences must be disjoint"
    );
    let mut units: Vec<Unit> = Vec::new();
    for (i, _) in region_items.iter().enumerate() {
        if !in_fragment.contains(&i) {
            units.push(Unit::External(i));
        }
    }
    for set in occurrence_sets {
        units.push(Unit::Fragment(set.clone()));
    }
    // Dependence edges between units, from pairwise item conflicts ordered
    // by original position.
    let n = units.len();
    let effects: Vec<_> = region_items.iter().map(Item::effects).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in (a + 1)..n {
            // Direction of the dependence between the two units, from the
            // original positions of their conflicting member pairs.
            let mut forward = false;
            let mut backward = false;
            for &u in units[a].members() {
                for &v in units[b].members() {
                    let relaxed = exempt.contains(&(u.min(v), u.max(v)));
                    let conflict = gpa_arm::defuse::reg_or_flag_conflict(&effects[u], &effects[v])
                        || (!relaxed && gpa_arm::defuse::mem_conflict(&effects[u], &effects[v]));
                    if conflict {
                        if u < v {
                            forward = true;
                        } else {
                            backward = true;
                        }
                    }
                }
            }
            // Conflicts in both directions between two units make the
            // contraction cyclic (only possible when at least one unit is
            // a multi-item fragment).
            if forward && backward {
                return None;
            }
            if forward {
                succs[a].push(b);
            } else if backward {
                succs[b].push(a);
            }
        }
    }
    let mut pred_count = vec![0usize; n];
    for s in &succs {
        for &b in s {
            pred_count[b] += 1;
        }
    }
    // Kahn, preferring the unit whose first item came first originally —
    // keeps the output close to the source order.
    let mut ready: Vec<usize> = (0..n).filter(|&u| pred_count[u] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pos = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &u)| units[u].min_pos())
            .map(|(p, _)| p)
            .expect("ready is non-empty");
        let u = ready.swap_remove(pos);
        order.push(u);
        for &s in &succs[u] {
            pred_count[s] -= 1;
            if pred_count[s] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        return None; // Cycle through contracted units.
    }
    let mut out = Vec::with_capacity(region_items.len());
    for u in order {
        match &units[u] {
            Unit::External(i) => out.push(region_items[*i].clone()),
            Unit::Fragment(_) => out.push(Item::Call {
                cond: Cond::Al,
                target: frag_name.to_owned(),
            }),
        }
    }
    Some(out)
}

/// Builds the new function for a candidate.
fn fragment_function(candidate: &Candidate, name: &str) -> FunctionCode {
    let mut items = Vec::with_capacity(candidate.body.len() + 3);
    match candidate.kind {
        ExtractionKind::Procedure { lr_save: false } => {
            items.extend(candidate.body.iter().cloned());
            items.push(Item::Insn(gpa_arm::Instruction::ret()));
        }
        ExtractionKind::Procedure { lr_save: true } => {
            items.push(Item::Insn("push {lr}".parse().expect("valid asm")));
            items.extend(candidate.body.iter().cloned());
            items.push(Item::Insn("pop {pc}".parse().expect("valid asm")));
        }
        ExtractionKind::CrossJump => {
            items.extend(candidate.body.iter().cloned());
        }
    }
    FunctionCode {
        name: name.to_owned(),
        address_taken: false,
        items,
        label_count: 0,
    }
}

/// Applies `candidate` to the program, adding a new function named
/// `frag_name` and rewriting every occurrence site.
///
/// # Errors
///
/// Returns an [`ExtractError`] if the contraction of any region turns out
/// cyclic — detection is expected to have filtered such occurrence
/// combinations, so this indicates a bug upstream.
pub fn apply(
    program: &mut Program,
    candidate: &Candidate,
    frag_name: &str,
) -> Result<(), ExtractError> {
    // Group occurrences by (function, region), splicing bottom-up so item
    // indices stay valid.
    let mut grouped: std::collections::BTreeMap<(usize, usize), (usize, Vec<&Occurrence>)> =
        Default::default();
    for occ in &candidate.occurrences {
        let entry = grouped
            .entry((occ.function, occ.region_start))
            .or_insert((occ.region_len, Vec::new()));
        entry.1.push(occ);
    }
    for (&(func, region_start), (region_len, occs)) in grouped.iter().rev() {
        let f = &mut program.functions[func];
        let region_end = region_start + *region_len;
        if region_end > f.items.len() {
            return Err(ExtractError(format!(
                "occurrence region out of bounds in `{}`",
                f.name
            )));
        }
        let region_items: Vec<Item> = f.items[region_start..region_end].to_vec();
        // The candidate's alias claims, projected onto this region as
        // region-local exempt pairs (the validator re-derives every one).
        let exempt: HashSet<(usize, usize)> = candidate
            .relaxed
            .iter()
            .filter(|c| c.function == func && c.earlier >= region_start && c.later < region_end)
            .map(|c| (c.earlier - region_start, c.later - region_start))
            .collect();
        let new_items = match candidate.kind {
            ExtractionKind::Procedure { .. } => {
                let sets: Vec<Vec<usize>> = occs
                    .iter()
                    .map(|o| o.item_indices.iter().map(|&i| i - region_start).collect())
                    .collect();
                contract_region_with(&region_items, &sets, frag_name, &exempt).ok_or_else(|| {
                    ExtractError(format!(
                        "cyclic contraction in `{}` at {region_start}",
                        f.name
                    ))
                })?
            }
            ExtractionKind::CrossJump => {
                // One occurrence per region (a region has one return).
                let occ = occs.first().expect("grouped entries are non-empty");
                if occs.len() != 1 {
                    return Err(ExtractError(
                        "multiple cross-jump occurrences in one region".into(),
                    ));
                }
                let members: HashSet<usize> =
                    occ.item_indices.iter().map(|&i| i - region_start).collect();
                let mut rest: Vec<Item> = region_items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !members.contains(i))
                    .map(|(_, item)| item.clone())
                    .collect();
                rest.push(Item::TailCall {
                    cond: Cond::Al,
                    target: frag_name.to_owned(),
                });
                rest
            }
        };
        f.items.splice(region_start..region_end, new_items);
    }
    program
        .functions
        .push(fragment_function(candidate, frag_name));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    #[test]
    fn contract_simple_region() {
        // [ldr, sub, add-independent] with fragment {0, 1}.
        let items = vec![
            insn("ldr r3, [r1], #4"),
            insn("sub r2, r2, r3"),
            insn("add r7, r7, #1"),
        ];
        let out = contract_region(&items, &[vec![0, 1]], "frag").unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Item::Call { target, .. } if target == "frag"));
        assert_eq!(out[1], items[2]);
    }

    #[test]
    fn contract_interleaved_fragments() {
        // Two independent chains interleaved; both become calls.
        let items = vec![
            insn("ldr r3, [r1], #4"),
            insn("ldr r5, [r6], #4"),
            insn("sub r2, r2, r3"),
            insn("sub r4, r4, r5"),
        ];
        let out = contract_region(&items, &[vec![0, 2], vec![1, 3]], "frag").unwrap();
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|i| matches!(i, Item::Call { target, .. } if target == "frag")));
    }

    #[test]
    fn contract_rejects_cycles() {
        // fragment = {0, 2}; item 1 depends on 0 and 2 depends on 1 —
        // contracting {0, 2} is the non-convex case of Fig. 9.
        let items = vec![
            insn("ldr r3, [r1], #4"), // 0: defs r3, r1
            insn("sub r2, r2, r3"),   // 1: uses r3, defs r2
            insn("add r4, r2, #4"),   // 2: uses r2
        ];
        assert_eq!(contract_region(&items, &[vec![0, 2]], "frag"), None);
    }

    #[test]
    fn contract_preserves_external_order() {
        let items = vec![
            insn("mov r0, #1"),
            insn("ldr r3, [r1], #4"),
            insn("sub r2, r2, r3"),
            insn("mov r7, #2"),
        ];
        let out = contract_region(&items, &[vec![1, 2]], "frag").unwrap();
        assert_eq!(out[0], items[0]);
        assert!(matches!(&out[1], Item::Call { .. }));
        assert_eq!(out[2], items[3]);
    }

    #[test]
    fn fragment_function_shapes() {
        let body = vec![insn("ldr r3, [r1], #4"), insn("sub r2, r2, r3")];
        let plain = Candidate {
            body: body.clone(),
            occurrences: vec![],
            kind: ExtractionKind::Procedure { lr_save: false },
            saved: 1,
            relaxed: Vec::new(),
        };
        let f = fragment_function(&plain, "frag0");
        assert_eq!(f.items.len(), 3);
        assert!(matches!(f.items.last(), Some(Item::Insn(i)) if i.to_string() == "bx lr"));

        let saved = Candidate {
            body: body.clone(),
            occurrences: vec![],
            kind: ExtractionKind::Procedure { lr_save: true },
            saved: 1,
            relaxed: Vec::new(),
        };
        let f = fragment_function(&saved, "frag1");
        assert_eq!(f.items.len(), 4);
        // `push {lr}` prints in its canonical stm form.
        assert!(matches!(&f.items[0], Item::Insn(i) if i.to_string() == "stmdb sp!, {lr}"));
        assert!(
            matches!(f.items.last(), Some(Item::Insn(i)) if i.to_string() == "ldmia sp!, {pc}")
        );

        let cj = Candidate {
            body: vec![insn("add sp, sp, #8"), insn("pop {r4, pc}")],
            occurrences: vec![],
            kind: ExtractionKind::CrossJump,
            saved: 1,
            relaxed: Vec::new(),
        };
        let f = fragment_function(&cj, "frag2");
        assert_eq!(f.items.len(), 2);
    }
}
