//! Per-stage wall-time accounting for optimization runs.
//!
//! The batch pipeline (`gpa batch`) wants to know where corpus time goes:
//! lifting, DFG construction, lattice mining, MIS overlap resolution,
//! extraction, validation. [`StageTimings`] is the accumulator the
//! instrumented entry points ([`crate::Optimizer::run_instrumented`],
//! [`crate::Optimizer::from_image_timed`]) fill in; totals merge across
//! rounds, images and worker threads by plain addition.
//!
//! Times are nanoseconds of wall clock *per stage invocation*, summed.
//! When detection itself runs on several mining threads the per-worker
//! times add up, so a stage total can exceed the end-to-end wall time —
//! read them as CPU-seconds of attributable work, not as a timeline.

use crate::json::Json;

/// Stable stage names, in pipeline order; [`StageTimings::stages`]
/// yields values in the same order, and the metrics schema keys its
/// per-stage histograms by these names.
pub const STAGE_NAMES: [&str; 6] = [
    "decode",
    "dfg_build",
    "mining",
    "mis",
    "extraction",
    "validation",
];

/// Accumulated per-stage wall time, in nanoseconds.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StageTimings {
    /// Image lifting ([`gpa_cfg::decode_image`]).
    pub decode_ns: u64,
    /// Data-flow-graph construction and reachability closures.
    pub dfg_build_ns: u64,
    /// Frequent-fragment lattice search (minus the MIS share below).
    pub mining_ns: u64,
    /// Maximum-independent-set overlap resolution during candidate
    /// construction.
    pub mis_ns: u64,
    /// Applying the winning candidate (program rewriting).
    pub extraction_ns: u64,
    /// Translation validation (per-round and final).
    pub validation_ns: u64,
}

impl StageTimings {
    /// Adds another accumulator into this one, stage by stage.
    pub fn merge(&mut self, other: &StageTimings) {
        self.decode_ns += other.decode_ns;
        self.dfg_build_ns += other.dfg_build_ns;
        self.mining_ns += other.mining_ns;
        self.mis_ns += other.mis_ns;
        self.extraction_ns += other.extraction_ns;
        self.validation_ns += other.validation_ns;
    }

    /// The accumulator as `(stage name, nanoseconds)` pairs, in
    /// [`STAGE_NAMES`] order — the iteration surface the metrics
    /// harness feeds its per-stage histograms from.
    pub fn stages(&self) -> [(&'static str, u64); 6] {
        [
            (STAGE_NAMES[0], self.decode_ns),
            (STAGE_NAMES[1], self.dfg_build_ns),
            (STAGE_NAMES[2], self.mining_ns),
            (STAGE_NAMES[3], self.mis_ns),
            (STAGE_NAMES[4], self.extraction_ns),
            (STAGE_NAMES[5], self.validation_ns),
        ]
    }

    /// Sum over all stages.
    pub fn total_ns(&self) -> u64 {
        self.decode_ns
            + self.dfg_build_ns
            + self.mining_ns
            + self.mis_ns
            + self.extraction_ns
            + self.validation_ns
    }

    /// The metrics-schema JSON object (`{"decode_ns": …, …}`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("decode_ns", Json::from(self.decode_ns)),
            ("dfg_build_ns", Json::from(self.dfg_build_ns)),
            ("mining_ns", Json::from(self.mining_ns)),
            ("mis_ns", Json::from(self.mis_ns)),
            ("extraction_ns", Json::from(self.extraction_ns)),
            ("validation_ns", Json::from(self.validation_ns)),
        ])
    }

    /// Mirrors the accumulator into the trace stream: one
    /// `run.stage_timings` event plus a `time.*_ns` counter twin per
    /// stage, so JSONL consumers see the same figures the report's
    /// metrics object carries.
    pub fn trace(&self, tracer: &dyn gpa_trace::Tracer) {
        if !tracer.enabled() {
            return;
        }
        tracer.event(
            "run.stage_timings",
            &[
                ("decode_ns", gpa_trace::Value::from(self.decode_ns)),
                ("dfg_build_ns", gpa_trace::Value::from(self.dfg_build_ns)),
                ("mining_ns", gpa_trace::Value::from(self.mining_ns)),
                ("mis_ns", gpa_trace::Value::from(self.mis_ns)),
                ("extraction_ns", gpa_trace::Value::from(self.extraction_ns)),
                ("validation_ns", gpa_trace::Value::from(self.validation_ns)),
            ],
        );
        tracer.count("time.decode_ns", self.decode_ns);
        tracer.count("time.dfg_build_ns", self.dfg_build_ns);
        tracer.count("time.mining_ns", self.mining_ns);
        tracer.count("time.mis_ns", self.mis_ns);
        tracer.count("time.extraction_ns", self.extraction_ns);
        tracer.count("time.validation_ns", self.validation_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_total() {
        let mut a = StageTimings {
            decode_ns: 1,
            dfg_build_ns: 2,
            mining_ns: 3,
            mis_ns: 4,
            extraction_ns: 5,
            validation_ns: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ns(), 42);
        assert_eq!(a.mining_ns, 6);
    }

    #[test]
    fn stages_follow_declaration_order() {
        let t = StageTimings {
            decode_ns: 1,
            dfg_build_ns: 2,
            mining_ns: 3,
            mis_ns: 4,
            extraction_ns: 5,
            validation_ns: 6,
        };
        let stages = t.stages();
        assert_eq!(stages.map(|(name, _)| name), STAGE_NAMES);
        assert_eq!(stages.map(|(_, ns)| ns), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn json_shape() {
        let t = StageTimings::default();
        let doc = t.to_json();
        for key in [
            "decode_ns",
            "dfg_build_ns",
            "mining_ns",
            "mis_ns",
            "extraction_ns",
            "validation_ns",
        ] {
            assert_eq!(doc.get(key).and_then(Json::as_int), Some(0), "{key}");
        }
    }
}
