//! Optimization reports: the data behind Table 1 and Fig. 12.

use crate::candidate::ExtractionKind;
use crate::json::Json;

/// Version tag of the report JSON schema (bump on incompatible change;
/// the artifact cache rejects mismatched payloads, turning a format
/// change into a cache miss instead of a parse error).
pub const REPORT_SCHEMA: &str = "gpa-report/1";

/// One extraction round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Round {
    /// How the fragment was extracted.
    pub kind: ExtractionKind,
    /// Fragment body size in words.
    pub body_words: usize,
    /// Number of sites rewritten.
    pub occurrences: usize,
    /// Net words saved this round.
    pub saved: i64,
    /// Name of the new fragment function.
    pub fragment_name: String,
}

/// The result of running the optimizer to a fixpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Instruction words before optimization.
    pub initial_words: usize,
    /// Instruction words after optimization.
    pub final_words: usize,
    /// The extraction rounds, in order.
    pub rounds: Vec<Round>,
}

impl Report {
    /// Total words saved (Table 1's "# of saved instructions").
    pub fn saved_words(&self) -> i64 {
        self.initial_words as i64 - self.final_words as i64
    }

    /// Number of procedure-call extractions (Fig. 12).
    pub fn procedure_count(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| matches!(r.kind, ExtractionKind::Procedure { .. }))
            .count()
    }

    /// Number of cross-jump extractions (Fig. 12).
    pub fn cross_jump_count(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.kind == ExtractionKind::CrossJump)
            .count()
    }

    /// Relative improvement over a baseline's savings, in percent
    /// (Fig. 11's y-axis).
    pub fn relative_increase_vs(&self, baseline: &Report) -> f64 {
        let base = baseline.saved_words() as f64;
        if base == 0.0 {
            return if self.saved_words() > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        (self.saved_words() as f64 / base - 1.0) * 100.0
    }

    /// Serializes the report to the [`REPORT_SCHEMA`] JSON document — the
    /// payload the pipeline's artifact cache stores and the corpus report
    /// embeds. [`Report::from_json`] is its exact inverse.
    pub fn to_json(&self) -> Json {
        let rounds = self
            .rounds
            .iter()
            .map(|r| {
                let mut pairs = vec![(
                    "kind".to_owned(),
                    Json::from(match r.kind {
                        ExtractionKind::Procedure { .. } => "procedure",
                        ExtractionKind::CrossJump => "cross_jump",
                    }),
                )];
                if let ExtractionKind::Procedure { lr_save } = r.kind {
                    pairs.push(("lr_save".to_owned(), Json::from(lr_save)));
                }
                pairs.push(("body_words".to_owned(), Json::from(r.body_words)));
                pairs.push(("occurrences".to_owned(), Json::from(r.occurrences)));
                pairs.push(("saved".to_owned(), Json::from(r.saved)));
                pairs.push((
                    "fragment_name".to_owned(),
                    Json::from(r.fragment_name.as_str()),
                ));
                Json::Obj(pairs)
            })
            .collect();
        Json::obj([
            ("schema", Json::from(REPORT_SCHEMA)),
            ("initial_words", Json::from(self.initial_words)),
            ("final_words", Json::from(self.final_words)),
            ("saved_words", Json::from(self.saved_words())),
            ("rounds", Json::Arr(rounds)),
        ])
    }

    /// Deserializes a report written by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on schema mismatch or any missing/mistyped field.
    pub fn from_json(doc: &Json) -> Result<Report, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(REPORT_SCHEMA) => {}
            other => return Err(format!("unsupported report schema {other:?}")),
        }
        let int = |key: &str| -> Result<i64, String> {
            doc.get(key)
                .and_then(Json::as_int)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let initial_words = usize::try_from(int("initial_words")?)
            .map_err(|_| "negative initial_words".to_owned())?;
        let final_words =
            usize::try_from(int("final_words")?).map_err(|_| "negative final_words".to_owned())?;
        let mut rounds = Vec::new();
        for (i, r) in doc
            .get("rounds")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing `rounds` array".to_owned())?
            .iter()
            .enumerate()
        {
            let field = |key: &str| -> Result<&Json, String> {
                r.get(key)
                    .ok_or_else(|| format!("round {i}: missing field `{key}`"))
            };
            let kind = match field("kind")?.as_str() {
                Some("procedure") => ExtractionKind::Procedure {
                    lr_save: field("lr_save")?
                        .as_bool()
                        .ok_or_else(|| format!("round {i}: bad lr_save"))?,
                },
                Some("cross_jump") => ExtractionKind::CrossJump,
                other => return Err(format!("round {i}: unknown kind {other:?}")),
            };
            let uint = |key: &str| -> Result<usize, String> {
                field(key)?
                    .as_int()
                    .and_then(|v| usize::try_from(v).ok())
                    .ok_or_else(|| format!("round {i}: bad `{key}`"))
            };
            rounds.push(Round {
                kind,
                body_words: uint("body_words")?,
                occurrences: uint("occurrences")?,
                saved: field("saved")?
                    .as_int()
                    .ok_or_else(|| format!("round {i}: bad `saved`"))?,
                fragment_name: field("fragment_name")?
                    .as_str()
                    .ok_or_else(|| format!("round {i}: bad `fragment_name`"))?
                    .to_owned(),
            });
        }
        Ok(Report {
            initial_words,
            final_words,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(kind: ExtractionKind, saved: i64) -> Round {
        Round {
            kind,
            body_words: 3,
            occurrences: 2,
            saved,
            fragment_name: "f".into(),
        }
    }

    #[test]
    fn counts_and_savings() {
        let report = Report {
            initial_words: 100,
            final_words: 90,
            rounds: vec![
                round(ExtractionKind::Procedure { lr_save: false }, 6),
                round(ExtractionKind::CrossJump, 3),
                round(ExtractionKind::Procedure { lr_save: true }, 1),
            ],
        };
        assert_eq!(report.saved_words(), 10);
        assert_eq!(report.procedure_count(), 2);
        assert_eq!(report.cross_jump_count(), 1);
    }

    #[test]
    fn relative_increase() {
        let a = Report {
            initial_words: 100,
            final_words: 52,
            rounds: vec![],
        };
        let b = Report {
            initial_words: 100,
            final_words: 80,
            rounds: vec![],
        };
        // a saved 48, b saved 20 → +140%.
        assert!((a.relative_increase_vs(&b) - 140.0).abs() < 1e-9);
    }
}
