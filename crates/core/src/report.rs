//! Optimization reports: the data behind Table 1 and Fig. 12.

use crate::candidate::ExtractionKind;

/// One extraction round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Round {
    /// How the fragment was extracted.
    pub kind: ExtractionKind,
    /// Fragment body size in words.
    pub body_words: usize,
    /// Number of sites rewritten.
    pub occurrences: usize,
    /// Net words saved this round.
    pub saved: i64,
    /// Name of the new fragment function.
    pub fragment_name: String,
}

/// The result of running the optimizer to a fixpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Instruction words before optimization.
    pub initial_words: usize,
    /// Instruction words after optimization.
    pub final_words: usize,
    /// The extraction rounds, in order.
    pub rounds: Vec<Round>,
}

impl Report {
    /// Total words saved (Table 1's "# of saved instructions").
    pub fn saved_words(&self) -> i64 {
        self.initial_words as i64 - self.final_words as i64
    }

    /// Number of procedure-call extractions (Fig. 12).
    pub fn procedure_count(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| matches!(r.kind, ExtractionKind::Procedure { .. }))
            .count()
    }

    /// Number of cross-jump extractions (Fig. 12).
    pub fn cross_jump_count(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.kind == ExtractionKind::CrossJump)
            .count()
    }

    /// Relative improvement over a baseline's savings, in percent
    /// (Fig. 11's y-axis).
    pub fn relative_increase_vs(&self, baseline: &Report) -> f64 {
        let base = baseline.saved_words() as f64;
        if base == 0.0 {
            return if self.saved_words() > 0 { f64::INFINITY } else { 0.0 };
        }
        (self.saved_words() as f64 / base - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(kind: ExtractionKind, saved: i64) -> Round {
        Round {
            kind,
            body_words: 3,
            occurrences: 2,
            saved,
            fragment_name: "f".into(),
        }
    }

    #[test]
    fn counts_and_savings() {
        let report = Report {
            initial_words: 100,
            final_words: 90,
            rounds: vec![
                round(ExtractionKind::Procedure { lr_save: false }, 6),
                round(ExtractionKind::CrossJump, 3),
                round(ExtractionKind::Procedure { lr_save: true }, 1),
            ],
        };
        assert_eq!(report.saved_words(), 10);
        assert_eq!(report.procedure_count(), 2);
        assert_eq!(report.cross_jump_count(), 1);
    }

    #[test]
    fn relative_increase() {
        let a = Report {
            initial_words: 100,
            final_words: 52,
            rounds: vec![],
        };
        let b = Report {
            initial_words: 100,
            final_words: 80,
            rounds: vec![],
        };
        // a saved 48, b saved 20 → +140%.
        assert!((a.relative_increase_vs(&b) - 140.0).abs() < 1e-9);
    }
}
