//! A minimal, dependency-free JSON value model.
//!
//! The batch pipeline serializes [`crate::Report`]s into a
//! content-addressed artifact cache and a machine-readable corpus report;
//! `gpa stats --json` reuses the same writer. The build environment is
//! offline (no serde), so this module implements exactly the JSON subset
//! the toolchain emits and consumes:
//!
//! * values: `null`, booleans, 64-bit signed integers, strings, arrays,
//!   objects — **no floats** (every figure the toolchain reports is a
//!   count or a nanosecond total, and integer-only output stays
//!   byte-deterministic across platforms);
//! * objects preserve insertion order, so serialization is deterministic
//!   and re-serializing a parsed document is the identity.
//!
//! # Examples
//!
//! ```
//! use gpa::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("crc")),
//!     ("saved", Json::from(42i64)),
//!     ("rounds", Json::Arr(vec![Json::from(1i64), Json::from(2i64)])),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"name":"crc","saved":42,"rounds":[1,2]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON value (integer-only numbers; see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on both write and parse.
    Obj(Vec<(String, Json)>),
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    /// Saturates at `i64::MAX` (timings and counts never get there).
    fn from(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    /// Saturates at `i64::MAX`.
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes, plus
    /// arbitrary whitespace).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input, floats, or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "floating-point numbers are unsupported (byte {start})"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(-3)]),
            ),
            ("b", Json::obj([("nested", Json::from("x\"y\\z\n"))])),
            ("c", Json::Int(i64::MAX)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Deterministic: re-serializing the parse is the identity.
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(doc.get("k").unwrap().as_arr().unwrap()[0].as_int(), Some(1));
        assert_eq!(
            doc.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A\t")
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "1.5", "1e3", "tru", "\"\\q\"", "{}x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([
            ("n", Json::Int(7)),
            ("s", Json::from("hi")),
            ("b", Json::Bool(false)),
        ]);
        assert_eq!(doc.get("n").unwrap().as_int(), Some(7));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
        assert!(doc.as_int().is_none());
    }
}
