//! Graph-based fragment detection: DgSpan and Edgar candidates.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use gpa_cfg::{Item, Program};
use gpa_dfg::{AliasOracle, Dfg, LabelMode};
use gpa_mining::embed::seed_buckets;
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{
    mine_seed, non_overlapping_count_traced, Config, Frequent, GrowDecision, Support,
};
use gpa_trace::{NoopTracer, Tracer, Value};

use crate::artifact::{BlockArtifact, DfgCache};
use crate::candidate::{classify_body, Candidate, ExtractionKind, Occurrence, RelaxedPair};
use crate::cost::saved_words;
use crate::extract::contract_region_with;
use crate::optimizer::AliasLevel;
use crate::stage::StageTimings;
use crate::trace::trace_equivalent;

/// Detection configuration for the graph-based methods.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Support counting: `Graphs` = DgSpan, `Embeddings` = Edgar.
    pub support: Support,
    /// Node-label scheme (exact for extraction; canonical only estimates).
    pub label_mode: LabelMode,
    /// Fragment size cap in nodes.
    pub max_nodes: usize,
    /// Pattern-visit budget per mining round (bounds the exponential
    /// lattice of large repetitive blocks; see
    /// [`gpa_mining::miner::Config::max_patterns`]).
    pub max_patterns: usize,
    /// Worker threads for the lattice search (seed-level round-robin
    /// partition; `1` = in-place sequential search). Results are merged
    /// so the winning candidate matches the sequential search whenever
    /// the pattern budget is not exhausted.
    pub threads: usize,
    /// Worker threads for the front-end per-block artifact build (the
    /// region DFGs, their reachability closures, and — under
    /// [`AliasLevel::Stack`] — the relaxed overlays). Each block builds
    /// independently and results land in input order, so the graphs are
    /// bit-identical at any thread count and the knob — like `threads` —
    /// is excluded from [`crate::artifact::image_cache_key`].
    pub front_threads: usize,
    /// Telemetry sink for detection counters, the per-round candidate
    /// table and degradation events. Tracing never changes which
    /// candidate wins, so the tracer — like `threads` — is excluded
    /// from [`crate::artifact::image_cache_key`].
    pub tracer: Arc<dyn Tracer>,
    /// Memory disambiguation for the region DFGs. Under
    /// [`AliasLevel::Stack`] the abstract interpreter builds a second,
    /// *relaxed* DFG per region with the MEM edges between provably
    /// disjoint stack accesses dropped. Mining still counts on the
    /// conservative DFG (dropped edges are context-dependent, so they
    /// would break cross-region isomorphism and fragment connectivity);
    /// the relaxed graph only widens what is *extractable* — convexity,
    /// cross-jump exit-closedness, and the contraction probe — so the
    /// candidate universe under `Stack` is a superset of `Off`'s. Every
    /// winning candidate carries the dropped pairs as claims for the
    /// validator.
    pub alias: AliasLevel,
}

impl Default for GraphConfig {
    fn default() -> GraphConfig {
        GraphConfig {
            support: Support::Embeddings,
            label_mode: LabelMode::Exact,
            max_nodes: 16,
            max_patterns: crate::optimizer::DEFAULT_MAX_PATTERNS,
            threads: 1,
            front_threads: 1,
            tracer: Arc::new(NoopTracer),
            alias: AliasLevel::default(),
        }
    }
}

/// A region with its provenance, aligned with the DFG/graph indices.
pub(crate) struct RegionInfo {
    pub function: usize,
    pub start: usize,
    pub len: usize,
    pub items: Vec<Item>,
}

pub(crate) fn region_infos(program: &Program) -> Vec<RegionInfo> {
    let mut infos = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        for r in f.regions() {
            infos.push(RegionInfo {
                function: fi,
                start: r.start,
                len: r.items.len(),
                items: r.items.to_vec(),
            });
        }
    }
    infos
}

/// Runs the value-set abstract interpreter over the whole program and
/// projects its verdicts onto the detection regions: one [`AliasOracle`]
/// per region, whose slot `u` holds the based byte intervals item `u`
/// touches (entry-sp-relative, absolute, or symbolic-pointer-relative) —
/// or `None` when the interpreter could not resolve every access of that
/// item to a based interval.
///
/// Symbolic bases whose defining item lies inside the region carry the
/// def's region-relative index so [`AliasOracle::disjoint`] can refuse
/// pairs that straddle a redefinition of the base pointer.
///
/// Emits the `absint.points` counter (reachable program points analyzed).
pub(crate) fn region_oracles(
    program: &Program,
    infos: &[RegionInfo],
    tracer: &dyn Tracer,
) -> Vec<AliasOracle> {
    use gpa_dfg::{AliasBase, AliasInterval};
    use gpa_verify::AccessBase;

    let graph = gpa_verify::CallGraph::build(program);
    let env = gpa_verify::AbsEnv::build(program, &graph);
    let mut points = 0u64;
    let per_fn: Vec<gpa_verify::AbsInt> = program
        .functions
        .iter()
        .map(|f| {
            let analysis = gpa_verify::AbsInt::analyze(f, Some(&env));
            points += analysis.points;
            analysis
        })
        .collect();
    tracer.count("absint.points", points);
    infos
        .iter()
        .map(|info| {
            let before = &per_fn[info.function].before;
            let slots = (0..info.len)
                .map(|u| {
                    let state = before.get(info.start + u)?.as_ref()?;
                    let accesses =
                        gpa_verify::absint::resolved_accesses(state, &info.items[u], Some(&env))?;
                    Some(
                        accesses
                            .iter()
                            .map(|a| AliasInterval {
                                base: match a.base {
                                    AccessBase::Sp => AliasBase::Sp,
                                    AccessBase::Abs => AliasBase::Abs,
                                    AccessBase::Sym(sym) => AliasBase::Sym {
                                        sym,
                                        def: gpa_verify::absint::sym_def_index(sym)
                                            .filter(|&d| {
                                                d >= info.start && d < info.start + info.len
                                            })
                                            .map(|d| d - info.start),
                                    },
                                },
                                lo: a.lo,
                                hi: a.hi,
                            })
                            .collect(),
                    )
                })
                .collect();
            AliasOracle { slots }
        })
        .collect()
}

/// Computes, per function, whether `lr` is free to clobber (a `bl` may be
/// inserted anywhere). `lr` is *live* in a function when the function can
/// still read the entry value of `lr`: it contains a `bx lr`, or it
/// tail-branches into a function that does (cross-jump fragments carry the
/// `bx lr` of the leaf epilogues they merged, so liveness must propagate
/// backwards over `TailCall` edges to a fixpoint).
pub(crate) fn lr_free_functions(program: &Program) -> Vec<bool> {
    let index: std::collections::HashMap<&str, usize> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut live: Vec<bool> = program
        .functions
        .iter()
        .map(|f| {
            f.items.iter().any(|i| {
                matches!(
                    i,
                    Item::Insn(gpa_arm::Instruction::Bx { rm, .. }) if *rm == gpa_arm::Reg::LR
                )
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for (fi, f) in program.functions.iter().enumerate() {
            if live[fi] {
                continue;
            }
            let tail_live = f.items.iter().any(|i| {
                matches!(i, Item::TailCall { target, .. }
                    if index.get(target.as_str()).map(|&t| live[t]).unwrap_or(true))
            });
            if tail_live {
                live[fi] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    live.into_iter().map(|l| !l).collect()
}

/// Builds the best extractable candidate from one frequent fragment, or
/// `None`.
/// Forward-reachability closure of a DFG as one bitset row per node.
pub(crate) struct Reach {
    words: usize,
    rows: Vec<u64>,
}

impl Reach {
    pub(crate) fn new(dfg: &Dfg) -> Reach {
        let n = dfg.node_count();
        let words = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words];
        // Edges only go forward in node order; sweep backwards.
        for u in (0..n).rev() {
            for e in dfg.succs(u) {
                let v = e.to;
                rows[u * words + v / 64] |= 1 << (v % 64);
                let (a, b) = rows.split_at_mut(u.max(v) * words);
                let (src, dst) = if u < v {
                    (&b[..words], &mut a[u * words..u * words + words])
                } else {
                    unreachable!("DFG edges point forward")
                };
                for w in 0..words {
                    dst[w] |= src[w];
                }
            }
        }
        Reach { words, rows }
    }

    fn row(&self, u: usize) -> &[u64] {
        &self.rows[u * self.words..(u + 1) * self.words]
    }
}

/// Cap on embeddings validated per pattern: beyond this many occurrences
/// the benefit is enormous anyway, and validation cost must stay bounded.
const MAX_VALIDATED_EMBEDDINGS: usize = 512;

fn candidate_from_frequent(
    freq: &Frequent,
    infos: &[RegionInfo],
    artifacts: &[Arc<BlockArtifact>],
    relaxed: Option<&[Arc<BlockArtifact>]>,
    lr_free: &[bool],
    mis_ns: &mut u64,
    tracer: &dyn Tracer,
) -> Option<Candidate> {
    if freq.embeddings.len() < 2 {
        return None;
    }
    if freq.embeddings.len() > MAX_VALIDATED_EMBEDDINGS {
        // Occurrences beyond the cap are silently never extracted;
        // record how many a consumer of this pattern loses sight of.
        tracer.event(
            "detect.validation_truncated",
            &[
                ("pattern_nodes", Value::from(freq.pattern.node_count())),
                ("embeddings", Value::from(freq.embeddings.len())),
                ("validated", Value::from(MAX_VALIDATED_EMBEDDINGS)),
            ],
        );
    }
    // Body: the first embedding's nodes in program order.
    let first = &freq.embeddings[0];
    let first_info = &infos[first.graph as usize];
    let first_nodes = first.sorted_nodes();
    let body: Vec<Item> = first_nodes
        .iter()
        .map(|&n| first_info.items[n as usize].clone())
        .collect();
    let kind = classify_body(&body)?;

    // Validate each embedding site (bounded; see the constant above).
    // Extractability — convexity and exit-closedness — is checked on the
    // alias-relaxed graph when one exists: fewer edges means weakly less
    // reachability, so everything extractable conservatively stays
    // extractable and provably-disjoint stack traffic stops blocking.
    let mut valid: Vec<&gpa_mining::embed::Embedding> = Vec::new();
    for emb in freq.embeddings.iter().take(MAX_VALIDATED_EMBEDDINGS) {
        let info = &infos[emb.graph as usize];
        let check: &BlockArtifact = match relaxed {
            Some(r) => &r[emb.graph as usize],
            None => &artifacts[emb.graph as usize],
        };
        let dfg = &check.dfg;
        let reach = &check.reach;
        let nodes = emb.sorted_nodes();
        let seq: Vec<Item> = nodes
            .iter()
            .map(|&n| info.items[n as usize].clone())
            .collect();
        if !trace_equivalent(&body, &seq) {
            continue;
        }
        let in_set = |n: usize| emb.node_set().contains(n as u32);
        let ok = match kind {
            ExtractionKind::Procedure { .. } => {
                if !lr_free[info.function] {
                    false
                } else {
                    // Convexity (Fig. 9): no path from the fragment out and
                    // back in through an external node — checked on the
                    // precomputed reachability closure: the fragment is
                    // convex iff no externally-reachable node w (reached
                    // FROM the fragment) itself reaches INTO the fragment.
                    let words = dfg.node_count().div_ceil(64).max(1);
                    let mut frag_mask = vec![0u64; words];
                    // The embedding's bitset IS the fragment mask: copy
                    // its words instead of re-setting bits one by one
                    // (node ids are < dfg.node_count(), so the set never
                    // has significant words beyond `words`).
                    let set_words = emb.node_set().as_words();
                    let n = set_words.len().min(words);
                    frag_mask[..n].copy_from_slice(&set_words[..n]);
                    let mut from_frag = vec![0u64; words];
                    for &u in &nodes {
                        for (w, &r) in reach.row(u as usize).iter().enumerate() {
                            from_frag[w] |= r;
                        }
                    }
                    let mut convex = true;
                    'outer: for wi in 0..words {
                        let mut outside = from_frag[wi] & !frag_mask[wi];
                        while outside != 0 {
                            let bit = outside.trailing_zeros() as usize;
                            outside &= outside - 1;
                            let w = wi * 64 + bit;
                            let row = reach.row(w);
                            if (0..words).any(|x| row[x] & frag_mask[x] != 0) {
                                convex = false;
                                break 'outer;
                            }
                        }
                    }
                    convex
                }
            }
            ExtractionKind::CrossJump => {
                // Exit-closed: no direct edge from a fragment node to an
                // external node (the fragment must be schedulable last).
                !dfg.edges().iter().any(|e| in_set(e.from) && !in_set(e.to))
            }
        };
        if ok {
            valid.push(emb);
        } else {
            // Convexity / exit-closedness rejections: the headroom a
            // finer alias analysis could reclaim.
            tracer.count("detect.embedding_unextractable", 1);
        }
    }
    if valid.len() < 2 {
        return None;
    }

    // Occurrence selection: a maximum set of non-overlapping embeddings.
    // DgSpan and Edgar differ only in *frequency counting* during the
    // mining search (§4.2: fragments occurring several times in one block
    // look infrequent to DgSpan); once a fragment is selected, the
    // extraction machinery takes every non-overlapping occurrence for
    // both methods.
    let selected: Vec<&gpa_mining::embed::Embedding> = {
        let owned: Vec<gpa_mining::embed::Embedding> = valid.iter().map(|e| (*e).clone()).collect();
        let mis_start = Instant::now();
        let (_, chosen) = non_overlapping_count_traced(&owned, tracer);
        *mis_ns += gpa_trace::saturating_ns(mis_start.elapsed());
        chosen.into_iter().map(|i| valid[i]).collect()
    };

    // Per-region compatibility: simultaneous contractions must stay
    // acyclic. Greedily keep occurrences in order, dropping incompatible
    // ones.
    let mut kept: Vec<&gpa_mining::embed::Embedding> = Vec::new();
    if matches!(kind, ExtractionKind::Procedure { .. }) {
        let mut by_region: BTreeMap<u32, Vec<Vec<usize>>> = BTreeMap::new();
        let mut exempts: BTreeMap<u32, HashSet<(usize, usize)>> = BTreeMap::new();
        for e in selected {
            let info = &infos[e.graph as usize];
            let set: Vec<usize> = e.sorted_nodes().iter().map(|&n| n as usize).collect();
            let sets = by_region.entry(e.graph).or_default();
            sets.push(set);
            // The probe ignores memory conflicts the oracle relaxed —
            // the same exemptions `extract::apply` will use, and which
            // the validator re-derives from the candidate's claims.
            let exempt = exempts.entry(e.graph).or_insert_with(|| {
                relaxed
                    .map(|r| r[e.graph as usize].relaxed.iter().copied().collect())
                    .unwrap_or_default()
            });
            if contract_region_with(&info.items, sets, "__probe", exempt).is_none() {
                sets.pop();
                tracer.count("detect.probe_dropped", 1);
            } else {
                kept.push(e);
            }
        }
    } else {
        kept = selected;
    }
    if kept.len() < 2 {
        return None;
    }

    let body_words: usize = body.iter().map(Item::encoded_words).sum();
    let saved = saved_words(body_words, kept.len(), kind);
    if saved <= 0 {
        return None;
    }
    let occurrences: Vec<Occurrence> = kept
        .iter()
        .map(|e| {
            let info = &infos[e.graph as usize];
            Occurrence {
                function: info.function,
                region_start: info.start,
                region_len: info.len,
                item_indices: e
                    .sorted_nodes()
                    .iter()
                    .map(|&n| info.start + n as usize)
                    .collect(),
            }
        })
        .collect();
    // Every MEM edge the alias oracle dropped in a region that hosts a
    // kept occurrence becomes an explicit claim for the validator to
    // re-derive (regions can host several occurrences; dedup).
    let mut claims: std::collections::BTreeSet<RelaxedPair> = std::collections::BTreeSet::new();
    if let Some(r) = relaxed {
        for e in &kept {
            let info = &infos[e.graph as usize];
            for &(u, v) in &r[e.graph as usize].relaxed {
                claims.insert(RelaxedPair {
                    function: info.function,
                    earlier: info.start + u,
                    later: info.start + v,
                });
            }
        }
    }
    Some(Candidate {
        body,
        occurrences,
        kind,
        saved,
        relaxed: claims.into_iter().collect(),
    })
}

/// The strict total preference order on candidates: more savings, then
/// smaller body, then earliest first occurrence. A full tie means the two
/// candidates rewrite the same first site with the same-size body for the
/// same benefit; the incumbent wins.
fn better(c: &Candidate, b: &Candidate) -> bool {
    c.saved > b.saved
        || (c.saved == b.saved && c.body_words() < b.body_words())
        || (c.saved == b.saved
            && c.body_words() == b.body_words()
            && (&c.occurrences[0].function, &c.occurrences[0].item_indices)
                < (&b.occurrences[0].function, &b.occurrences[0].item_indices))
}

/// Shared, read-only state of one detection round's lattice search.
struct SearchCtx<'a> {
    infos: &'a [RegionInfo],
    artifacts: &'a [Arc<BlockArtifact>],
    relaxed: Option<&'a [Arc<BlockArtifact>]>,
    lr_free: &'a [bool],
    region_live: &'a [bool],
    graphs: &'a [InputGraph],
    max_body_words: i64,
    tracer: &'a dyn Tracer,
}

/// The stable lowercase mechanism name used in trace events.
pub(crate) fn kind_name(kind: ExtractionKind) -> &'static str {
    match kind {
        ExtractionKind::Procedure { .. } => "procedure",
        ExtractionKind::CrossJump => "cross_jump",
    }
}

/// A line of the per-round candidate table: enough of an evaluated
/// candidate to explain, in the trace, why the winner won.
#[derive(Clone, Debug)]
struct CandidateSummary {
    saved: i64,
    body_words: usize,
    occurrences: usize,
    kind: &'static str,
    seed: usize,
}

impl CandidateSummary {
    fn of(c: &Candidate, seed: usize) -> CandidateSummary {
        CandidateSummary {
            saved: c.saved,
            body_words: c.body_words(),
            occurrences: c.occurrences.len(),
            kind: kind_name(c.kind),
            seed,
        }
    }
}

/// How many candidate-table lines each round's trace carries.
const CANDIDATE_TABLE_LEN: usize = 5;

/// One worker's running result: its best candidate, the seed index that
/// produced it (for deterministic cross-worker tie-breaking), its MIS
/// time share, and — when tracing — its slice of the candidate table.
#[derive(Default)]
struct WorkerBest {
    candidate: Option<Candidate>,
    seed: usize,
    mis_ns: u64,
    top: Vec<CandidateSummary>,
}

impl SearchCtx<'_> {
    // The cross-jump benefit k·m − k − m is the most generous extraction
    // kind and is increasing in both k (occurrences) and m (body words),
    // so evaluating it at upper bounds of k and m bounds every candidate
    // derivable from a pattern (and, for the subtree bound, from any of
    // its descendants).
    fn benefit_bound(k: i64, m: i64) -> i64 {
        k * m - k - m
    }

    /// Upper bound on disjoint occurrences of ANY pattern with ≥ `m`
    /// nodes embedded in the given graphs: disjoint embeddings of size m
    /// tile a graph, so at most ⌊|V|/m⌋ fit per graph.
    fn tiling_bound(&self, f: &Frequent, m: usize) -> i64 {
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0i64;
        for e in &f.embeddings {
            if seen.insert(e.graph) {
                total += (self.graphs[e.graph as usize].node_count() / m) as i64;
            }
        }
        total.min(f.embeddings.len() as i64)
    }

    /// The streaming visitor body; `seed` is the index of the seed whose
    /// subtree is being grown. Bounds are compared against
    /// `max(best, 1)` *inclusively*, so candidates tying the incumbent
    /// are still evaluated — this keeps the tie-break total and makes
    /// the partitioned search merge to the sequential result.
    fn visit(&self, f: &Frequent, seed: usize, best: &mut WorkerBest) -> GrowDecision {
        let m = f.pattern.node_count();
        // Any real candidate saves at least one word.
        let target = best.candidate.as_ref().map(|b| b.saved).unwrap_or(0).max(1);
        // §3.5 PA-specific lattice pruning: an embedding can only ever be
        // extracted if its region admits *some* mechanism (see
        // region_live in best_candidate_instrumented); branches of the
        // lattice supported only by dead regions are pruned.
        let k_live = f
            .embeddings
            .iter()
            .filter(|e| self.region_live[e.graph as usize])
            .count();
        if k_live < 2 {
            self.tracer.count("detect.prune_dead_region", 1);
            return GrowDecision::SkipChildren;
        }
        let k_ub = self.tiling_bound(f, m);
        // No descendant (m′ ≥ m, occurrences ≤ k_ub since disjoint
        // counts are antimonotone) can reach the target: prune.
        if Self::benefit_bound(k_ub, self.max_body_words) < target {
            self.tracer.count("detect.prune_tiling_bound", 1);
            return GrowDecision::SkipChildren;
        }
        // This very pattern cannot reach the target: skip the expensive
        // validation but keep growing.
        if Self::benefit_bound(k_ub, 2 * m as i64) >= target {
            self.tracer.count("detect.candidates_evaluated", 1);
            if let Some(c) = candidate_from_frequent(
                f,
                self.infos,
                self.artifacts,
                self.relaxed,
                self.lr_free,
                &mut best.mis_ns,
                self.tracer,
            ) {
                if self.tracer.enabled() {
                    best.top.push(CandidateSummary::of(&c, seed));
                    best.top.sort_by_key(|s| (-s.saved, s.body_words, s.seed));
                    best.top.truncate(CANDIDATE_TABLE_LEN);
                }
                let wins = match &best.candidate {
                    None => true,
                    Some(b) => better(&c, b),
                };
                if wins {
                    best.candidate = Some(c);
                    best.seed = seed;
                }
            }
        } else {
            self.tracer.count("detect.skip_eval_benefit", 1);
        }
        GrowDecision::Continue
    }
}

/// Runs `build(i)` for every `i in 0..n` over a bounded pool of up to
/// `threads` workers and returns the results in input order (the
/// `crates/pipeline` batch idiom: a shared claim counter plus one result
/// slot per item). `build` must be independent per item; with one
/// worker the pool degenerates to a plain in-place map.
fn pooled_build<T, F>(n: usize, threads: usize, build: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return (0..n).map(build).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let built = build(i);
        *slots[i].lock().expect("front slot poisoned") = Some(built);
    };
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(worker);
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("front slot poisoned")
                .expect("every claimed index leaves a result")
        })
        .collect()
}

/// Finds the best extractable candidate in the program under graph-based
/// detection, or `None` when no extraction shrinks the program.
pub fn best_candidate(program: &Program, config: &GraphConfig) -> Option<Candidate> {
    let mut scratch = StageTimings::default();
    best_candidate_instrumented(program, config, &mut scratch, None)
}

/// [`best_candidate`] with per-stage timing accumulation and an optional
/// content-addressed cache of per-block artifacts.
///
/// With `config.threads > 1` the seed patterns of the DFS-code lattice
/// are partitioned round-robin over worker threads; each worker keeps a
/// local best and the results merge under the same total preference
/// order the sequential search uses (ties broken towards the earlier
/// seed), so the returned candidate is the sequential one whenever the
/// per-worker pattern budget is not exhausted.
pub(crate) fn best_candidate_instrumented(
    program: &Program,
    config: &GraphConfig,
    timings: &mut StageTimings,
    cache: Option<&DfgCache>,
) -> Option<Candidate> {
    let infos = region_infos(program);
    let build_start = Instant::now();
    let front_span = gpa_trace::span(&*config.tracer, "front");
    // Mining always counts on the conservative DFGs: alias verdicts are
    // context-dependent, so relaxed edges would break cross-region
    // isomorphism and fragment connectivity (shrinking the candidate
    // universe instead of growing it). Conservative artifacts are also
    // what the content-addressed cache may serve.
    let artifacts: Vec<Arc<BlockArtifact>> = pooled_build(infos.len(), config.front_threads, |i| {
        let info = &infos[i];
        match cache {
            Some(cache) => cache.get_or_build(&info.items, config.label_mode),
            None => Arc::new(BlockArtifact::build(&info.items, config.label_mode)),
        }
    });
    // Under `Stack`, a second per-region artifact built against the alias
    // oracle overlays the conservative one wherever *extractability* is
    // decided (convexity, exit-closedness, contraction). Oracle-refined
    // DFGs depend on whole-function abstract states, not just the block's
    // items, so the overlay bypasses the content-addressed cache.
    let relaxed_artifacts: Option<Vec<Arc<BlockArtifact>>> = match config.alias {
        AliasLevel::Off => None,
        AliasLevel::Stack => {
            let oracles = region_oracles(program, &infos, &*config.tracer);
            let overlay: Vec<Arc<BlockArtifact>> =
                pooled_build(infos.len(), config.front_threads, |i| {
                    Arc::new(BlockArtifact::build_with(
                        &infos[i].items,
                        config.label_mode,
                        Some(&oracles[i]),
                    ))
                });
            let mut examined = 0u64;
            let mut disjoint = 0u64;
            for a in &overlay {
                examined += a.relax_stats.mem_pairs_examined;
                disjoint += a.relax_stats.mem_pairs_disjoint;
            }
            config.tracer.count("absint.mem_pairs_examined", examined);
            config.tracer.count("absint.mem_pairs_disjoint", disjoint);
            config
                .tracer
                .count("absint.mem_pairs_kept", examined - disjoint);
            Some(overlay)
        }
    };
    drop(front_span);
    let lr_free = lr_free_functions(program);
    let (graphs, _interner) = InputGraph::from_dfg_refs(artifacts.iter().map(|a| &a.dfg));
    timings.dfg_build_ns += gpa_trace::saturating_ns(build_start.elapsed());
    // A region is "live" when it could ever host an extraction: its
    // function's lr is clobberable (procedures), or its return
    // participates in a connected fragment (cross-jumps).
    let region_live: Vec<bool> = infos
        .iter()
        .zip(&artifacts)
        .map(|(info, artifact)| {
            if lr_free[info.function] {
                return true;
            }
            let dfg = &artifact.dfg;
            let n = dfg.node_count();
            n > 0
                && info.items[n - 1].is_return()
                && (dfg.in_degree(n - 1) > 0 || dfg.out_degree(n - 1) > 0)
        })
        .collect();
    let ctx = SearchCtx {
        infos: &infos,
        artifacts: &artifacts,
        relaxed: relaxed_artifacts.as_deref(),
        lr_free: &lr_free,
        region_live: &region_live,
        graphs: &graphs,
        max_body_words: 2 * config.max_nodes as i64, // fused calls = 2 words
        tracer: &*config.tracer,
    };
    let mine_config = Config {
        min_support: 2,
        support: config.support,
        max_nodes: config.max_nodes,
        max_patterns: config.max_patterns,
        tracer: config.tracer.clone(),
        ..Config::default()
    };
    let mine_start = Instant::now();
    let mine_span = gpa_trace::span(&*config.tracer, "mine");
    let seeds: Vec<_> = seed_buckets(&graphs).into_iter().collect();
    let workers = config.threads.max(1).min(seeds.len().max(1));
    let run_worker = |worker: usize, stride: usize| -> WorkerBest {
        let mut best = WorkerBest::default();
        let mut budget = mine_config.max_patterns;
        for (si, (tuple, embeddings)) in seeds.iter().enumerate() {
            if si % stride != worker {
                continue;
            }
            let keep_going = mine_seed(
                *tuple,
                embeddings.clone(),
                &graphs,
                &mine_config,
                &mut |f| ctx.visit(f, si, &mut best),
                &mut budget,
            );
            if !keep_going {
                break;
            }
        }
        best
    };
    let worker_bests: Vec<WorkerBest> = if workers <= 1 {
        vec![run_worker(0, 1)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_worker = &run_worker;
                    scope.spawn(move || run_worker(w, workers))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mining worker panicked"))
                .collect()
        })
    };
    drop(mine_span);
    let mut mis_total = 0u64;
    let mut merged: Option<(Candidate, usize)> = None;
    let mut table: Vec<CandidateSummary> = Vec::new();
    for wb in worker_bests {
        mis_total += wb.mis_ns;
        table.extend(wb.top);
        let Some(c) = wb.candidate else { continue };
        merged = match merged {
            None => Some((c, wb.seed)),
            Some((incumbent, inc_seed)) => {
                if better(&c, &incumbent) || (!better(&incumbent, &c) && wb.seed < inc_seed) {
                    Some((c, wb.seed))
                } else {
                    Some((incumbent, inc_seed))
                }
            }
        };
    }
    if config.tracer.enabled() {
        table.sort_by_key(|s| (-s.saved, s.body_words, s.seed));
        table.truncate(CANDIDATE_TABLE_LEN);
        for (rank, s) in table.iter().enumerate() {
            config.tracer.event(
                "detect.candidate",
                &[
                    ("rank", Value::from(rank + 1)),
                    ("saved", Value::Int(s.saved)),
                    ("body_words", Value::from(s.body_words)),
                    ("occurrences", Value::from(s.occurrences)),
                    ("kind", Value::from(s.kind)),
                    ("seed", Value::from(s.seed)),
                ],
            );
        }
        if let Some((winner, _)) = &merged {
            // Explain the win against the strongest runner-up in the
            // table (the table order mirrors `better`, so the winner is
            // line 1 and the runner-up line 2).
            let runner_up = table.get(1);
            let why = match runner_up {
                None => "only_candidate",
                Some(r) if winner.saved > r.saved => "more_savings",
                Some(r) if winner.body_words() < r.body_words => "smaller_body",
                Some(_) => "earlier_site",
            };
            config.tracer.event(
                "detect.winner",
                &[
                    ("saved", Value::Int(winner.saved)),
                    ("body_words", Value::from(winner.body_words())),
                    ("occurrences", Value::from(winner.occurrences.len())),
                    ("kind", Value::from(kind_name(winner.kind))),
                    ("why", Value::from(why)),
                    (
                        "margin",
                        Value::Int(winner.saved - runner_up.map_or(winner.saved, |r| r.saved)),
                    ),
                ],
            );
        }
    }
    let mine_ns = gpa_trace::saturating_ns(mine_start.elapsed());
    timings.mining_ns += mine_ns.saturating_sub(mis_total);
    timings.mis_ns += mis_total;
    merged.map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_cfg::{FunctionCode, LabelId};

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    /// A program with one function holding the paper's running example
    /// plus a return, and a second copy in another function.
    fn running_example_program() -> Program {
        let block: Vec<Item> = [
            "ldr r3, [r1]!",
            "sub r2, r2, r3",
            "add r4, r2, #4",
            "ldr r3, [r1]!",
            "sub r2, r2, r3",
            "ldr r3, [r1]!",
            "add r4, r2, #4",
        ]
        .iter()
        .map(|s| insn(s))
        .collect();
        let mut items_a = vec![Item::Insn("push {r4, lr}".parse().unwrap())];
        items_a.extend(block.iter().cloned());
        items_a.push(Item::Insn("pop {r4, pc}".parse().unwrap()));
        let f_a = FunctionCode {
            name: "a".into(),
            address_taken: false,
            items: items_a,
            label_count: 0,
        };
        let mut items_b = vec![Item::Insn("push {r4, lr}".parse().unwrap())];
        items_b.extend(block.iter().cloned());
        items_b.push(Item::Insn("pop {r4, pc}".parse().unwrap()));
        let f_b = FunctionCode {
            name: "b".into(),
            address_taken: false,
            items: items_b,
            label_count: 0,
        };
        let _ = LabelId(0);
        Program {
            functions: vec![f_a, f_b],
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry: "a".into(),
        }
    }

    #[test]
    fn edgar_finds_profitable_fragment() {
        let program = running_example_program();
        let cand = best_candidate(
            &program,
            &GraphConfig {
                support: Support::Embeddings,
                ..GraphConfig::default()
            },
        )
        .expect("four occurrences of a three-node fragment are profitable");
        assert!(cand.saved > 0);
        assert!(cand.occurrences.len() >= 2);
        // Occurrences never overlap.
        for w in cand.occurrences.windows(2) {
            if w[0].function == w[1].function {
                let a: std::collections::HashSet<_> = w[0].item_indices.iter().collect();
                assert!(w[1].item_indices.iter().all(|i| !a.contains(i)));
            }
        }
    }

    #[test]
    fn threaded_search_matches_sequential() {
        let program = running_example_program();
        for support in [Support::Embeddings, Support::Graphs] {
            let sequential = best_candidate(
                &program,
                &GraphConfig {
                    support,
                    ..GraphConfig::default()
                },
            );
            for threads in [2, 3, 8] {
                let parallel = best_candidate(
                    &program,
                    &GraphConfig {
                        support,
                        threads,
                        ..GraphConfig::default()
                    },
                );
                assert_eq!(parallel, sequential, "threads={threads}");
            }
        }
    }

    #[test]
    fn cached_search_matches_uncached_and_hits_on_reuse() {
        let program = running_example_program();
        let config = GraphConfig {
            support: Support::Embeddings,
            ..GraphConfig::default()
        };
        let uncached = best_candidate(&program, &config);
        let cache = DfgCache::new();
        let mut timings = StageTimings::default();
        let first = best_candidate_instrumented(&program, &config, &mut timings, Some(&cache));
        let second = best_candidate_instrumented(&program, &config, &mut timings, Some(&cache));
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        // Both regions are identical blocks, so even the cold pass hits
        // once; the warm pass hits on every region.
        assert!(cache.hits() >= 2, "hits: {}", cache.hits());
        assert!(timings.dfg_build_ns > 0 && timings.mining_ns > 0);
    }

    #[test]
    fn edgar_beats_dgspan_on_intra_block_repeats() {
        let program = running_example_program();
        let edgar = best_candidate(
            &program,
            &GraphConfig {
                support: Support::Embeddings,
                ..GraphConfig::default()
            },
        )
        .map(|c| c.saved)
        .unwrap_or(0);
        let dgspan = best_candidate(
            &program,
            &GraphConfig {
                support: Support::Graphs,
                ..GraphConfig::default()
            },
        )
        .map(|c| c.saved)
        .unwrap_or(0);
        assert!(
            edgar >= dgspan,
            "edgar {edgar} must be at least dgspan {dgspan}"
        );
    }
}
