//! Extraction candidates: a fragment body plus the sites it can replace.

use gpa_arm::Reg;
use gpa_cfg::Item;

/// How a fragment is extracted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtractionKind {
    /// Outline into a new procedure, called with `bl`.
    Procedure {
        /// The body contains calls, so the new procedure must save and
        /// restore `lr` (`push {lr}` / `pop {pc}`).
        lr_save: bool,
    },
    /// The body ends in a return: keep one shared copy, branch to it
    /// (cross-jump / tail-merge).
    CrossJump,
}

/// One site where the fragment occurs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Occurrence {
    /// Index of the function in `Program::functions`.
    pub function: usize,
    /// Start of the containing region (item index in the function).
    pub region_start: usize,
    /// Length of the containing region in items.
    pub region_len: usize,
    /// The fragment's item indices, absolute within the function, sorted.
    pub item_indices: Vec<usize>,
}

/// One MEM dependence the alias analysis dropped while building the DFG
/// a candidate was detected on. Item indices are absolute within the
/// function, `earlier < later`.
///
/// A candidate carrying these is only valid if each claim can be
/// re-derived: the per-round validator re-runs the abstract interpreter
/// from scratch and rejects the rewrite (V107) on any pair it cannot
/// prove disjoint itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RelaxedPair {
    /// Index of the function in `Program::functions`.
    pub function: usize,
    /// Item index of the earlier access.
    pub earlier: usize,
    /// Item index of the later access.
    pub later: usize,
}

/// A scored extraction candidate.
#[derive(Clone, PartialEq, Debug)]
pub struct Candidate {
    /// Fragment body in a dependency-valid emission order.
    pub body: Vec<Item>,
    /// Non-overlapping, individually extractable sites (≥ 2).
    pub occurrences: Vec<Occurrence>,
    /// Procedure or cross-jump.
    pub kind: ExtractionKind,
    /// Net words saved (always > 0 for reported candidates).
    pub saved: i64,
    /// MEM edges relaxed in the occurrence regions' DFGs (empty unless
    /// detection ran with stack alias analysis).
    pub relaxed: Vec<RelaxedPair>,
}

impl Candidate {
    /// Body size in machine words.
    pub fn body_words(&self) -> usize {
        self.body.iter().map(Item::encoded_words).sum()
    }
}

/// Whether an item may appear inside an extracted fragment at all.
/// Branches to local labels (and tail calls) are position-dependent and
/// never extractable; everything else is.
pub fn item_extractable(item: &Item) -> bool {
    !matches!(
        item,
        Item::Branch { .. } | Item::TailCall { .. } | Item::Label(_)
    )
}

/// Whether the item is return-like (writes `pc`): allowed only as the
/// last body item, turning the candidate into a cross-jump.
pub fn item_is_return(item: &Item) -> bool {
    item.is_return()
}

/// Classifies a prospective body: `None` if it cannot be extracted,
/// otherwise the [`ExtractionKind`] it requires.
///
/// Rules (§2.1 step 8 of the paper, plus the link-register discipline of
/// Debray et al.):
///
/// * a return-like item is allowed only at the end → cross-jump;
/// * bodies reading `lr` (e.g. `push {…, lr}`, `bx lr` mid-body) cannot
///   be outlined as procedures — the call would have clobbered `lr`;
/// * bodies containing calls need the `lr` save/restore wrap, which uses
///   the stack — so such bodies must not otherwise touch `sp`.
pub fn classify_body(body: &[Item]) -> Option<ExtractionKind> {
    if body.len() < 2 || !body.iter().all(item_extractable) {
        return None;
    }
    let last = body.len() - 1;
    if body[..last].iter().any(item_is_return) {
        return None;
    }
    if item_is_return(&body[last]) {
        // Cross-jump: the shared copy is branched to, not called, so lr
        // is untouched; the body may freely read it (e.g. `bx lr`).
        return Some(ExtractionKind::CrossJump);
    }
    // Procedure: the call clobbers lr, so the body must not read it.
    if body.iter().any(|i| i.effects().uses.contains(Reg::LR)) {
        return None;
    }
    let is_call = |i: &Item| matches!(i, Item::Call { .. } | Item::IndirectCall { .. });
    let has_call = body.iter().any(is_call);
    if has_call {
        // lr save/restore moves sp by 4 during the body; reject bodies
        // whose non-call items address or move the stack. (Calls
        // themselves only use the stack *below* sp, which stays safe.)
        let touches_sp = body.iter().any(|i| {
            let fx = i.effects();
            !is_call(i) && (fx.uses.contains(Reg::SP) || fx.defs.contains(Reg::SP))
        });
        if touches_sp {
            return None;
        }
    }
    Some(ExtractionKind::Procedure { lr_save: has_call })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::Cond;
    use gpa_cfg::LabelId;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    #[test]
    fn plain_bodies_are_procedures() {
        let body = vec![insn("ldr r3, [r1], #4"), insn("sub r2, r2, r3")];
        assert_eq!(
            classify_body(&body),
            Some(ExtractionKind::Procedure { lr_save: false })
        );
    }

    #[test]
    fn returns_only_at_the_end() {
        let tail = vec![insn("add sp, sp, #8"), insn("pop {r4, pc}")];
        assert_eq!(classify_body(&tail), Some(ExtractionKind::CrossJump));
        let mid = vec![insn("bx lr"), insn("mov r0, #1")];
        assert_eq!(classify_body(&mid), None);
    }

    #[test]
    fn branches_never_extract() {
        let body = vec![
            insn("mov r0, #1"),
            Item::Branch {
                cond: Cond::Al,
                target: LabelId(0),
            },
        ];
        assert_eq!(classify_body(&body), None);
        let body2 = vec![Item::Label(LabelId(0)), insn("mov r0, #1")];
        assert_eq!(classify_body(&body2), None);
    }

    #[test]
    fn lr_reading_bodies_rejected_for_procedures() {
        let body = vec![insn("push {r4, lr}"), insn("mov r4, r0")];
        assert_eq!(classify_body(&body), None);
    }

    #[test]
    fn calls_force_lr_save() {
        let body = vec![
            insn("mov r0, r4"),
            Item::Call {
                cond: Cond::Al,
                target: "f".into(),
            },
        ];
        assert_eq!(
            classify_body(&body),
            Some(ExtractionKind::Procedure { lr_save: true })
        );
    }

    #[test]
    fn calls_plus_sp_rejected() {
        let body = vec![
            insn("str r0, [sp, #4]"),
            Item::Call {
                cond: Cond::Al,
                target: "f".into(),
            },
        ];
        assert_eq!(classify_body(&body), None);
    }

    #[test]
    fn singleton_bodies_rejected() {
        assert_eq!(classify_body(&[insn("mov r0, #1")]), None);
        assert_eq!(classify_body(&[]), None);
    }
}
