//! Graph-based procedural abstraction (PA) for ARM binaries — the primary
//! contribution of *"Graph-Based Procedural Abstraction"* (CGO 2007),
//! reimplemented end to end.
//!
//! The [`Optimizer`] drives the paper's loop: lift a binary
//! ([`gpa_cfg::decode_image`]), build the basic-block data-flow graphs
//! ([`gpa_dfg`]), detect repeated fragments with one of three
//! [`Method`]s —
//!
//! * [`Method::Sfx`] — the suffix-trie baseline over the linear
//!   instruction stream ([`gpa_sfx`]);
//! * [`Method::DgSpan`] — directed gSpan counting *graphs* that contain a
//!   fragment;
//! * [`Method::Edgar`] — embedding-based counting with
//!   maximum-independent-set overlap resolution and PA-specific
//!   extractability checks —
//!
//! score them with a common cost model ([`cost`]), extract the best one
//! per round ([`extract`]; a new procedure, or a cross-jump/tail-merge
//! when the fragment ends in a return), and repeat to a fixpoint. The
//! result re-encodes to a runnable image whose behaviour the test-suite
//! verifies in the emulator.
//!
//! Every rewrite can additionally be re-checked by a static translation
//! validator ([`validate`], on by default in debug builds via
//! [`validate::ValidateLevel`]): it independently re-derives the cost
//! model, the dependence-preserving linearization, the liveness safety
//! of the inserted calls, and the encode → decode round trip, failing
//! the run with [`OptimizerError::Validate`] instead of miscompiling.
//!
//! # Examples
//!
//! ```
//! use gpa::{Method, Optimizer};
//!
//! let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())?;
//! let mut optimizer = Optimizer::from_image(&image)?;
//! let report = optimizer.run(Method::Edgar)?;
//! assert!(report.saved_words() > 0);
//!
//! // The optimized binary still runs and prints the same checksums.
//! let optimized = optimizer.encode()?;
//! let before = gpa_emu::Machine::new(&image).run(400_000_000)?;
//! let after = gpa_emu::Machine::new(&optimized).run(400_000_000)?;
//! assert_eq!(before.output, after.output);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod candidate;
pub mod cost;
pub mod extract;
pub mod graph_detect;
pub mod json;
pub mod optimizer;
pub mod report;
pub mod sfx_detect;
pub mod stage;
pub mod trace;
pub mod validate;

pub use artifact::{image_cache_key, DfgCache};
pub use candidate::{Candidate, ExtractionKind, Occurrence, RelaxedPair};
pub use optimizer::{
    AliasLevel, Method, Optimizer, OptimizerError, RunConfig, DEFAULT_MAX_PATTERNS,
};
pub use report::{Report, Round, REPORT_SCHEMA};
pub use stage::StageTimings;
pub use validate::ValidateLevel;
