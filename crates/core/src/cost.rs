//! The cost/benefit model shared by all detection methods.
//!
//! Sizes are in machine words (= ARM instructions; the fused indirect
//! call counts as two). A fragment of `body_words` words occurring at `k`
//! sites can be extracted as:
//!
//! * a **procedure**: each site becomes one `bl`, the new procedure is
//!   the body plus a return — plus a `push {lr}` / `pop {pc}` pair when
//!   the body itself contains calls (which clobber `lr`);
//! * a **cross-jump / tail-merge** (body ends in a return): each site
//!   becomes one `b` to a single shared copy of the body, which needs no
//!   extra return.

use crate::candidate::ExtractionKind;

/// Net instruction-count reduction of extracting a fragment.
///
/// Returns a negative number when the extraction would grow the program.
///
/// # Examples
///
/// ```
/// use gpa::cost::saved_words;
/// use gpa::ExtractionKind;
///
/// // 3-word fragment at 2 sites, plain procedure:
/// // 2*3 - 2 (bl) - 4 (proc of 3 + bx lr) = 0.
/// assert_eq!(saved_words(3, 2, ExtractionKind::Procedure { lr_save: false }), 0);
/// // Same fragment at 4 sites: 12 - 4 - 4 = 4.
/// assert_eq!(saved_words(3, 4, ExtractionKind::Procedure { lr_save: false }), 4);
/// // Cross-jump, 3 words × 2 sites: 6 - 2 - 3 = 1.
/// assert_eq!(saved_words(3, 2, ExtractionKind::CrossJump), 1);
/// ```
pub fn saved_words(body_words: usize, occurrences: usize, kind: ExtractionKind) -> i64 {
    let m = body_words as i64;
    let k = occurrences as i64;
    match kind {
        ExtractionKind::Procedure { lr_save } => {
            // Plain: body + `bx lr`. With lr save: `push {lr}` + body +
            // `pop {pc}` — the pop doubles as the return, so the wrap
            // costs one extra word, not two.
            let proc_size = m + 1 + i64::from(lr_save);
            k * m - k - proc_size
        }
        ExtractionKind::CrossJump => k * m - k - m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedure_grows_with_occurrences() {
        let kind = ExtractionKind::Procedure { lr_save: false };
        assert!(saved_words(2, 2, kind) < 0);
        assert_eq!(saved_words(2, 3, kind), 0);
        assert_eq!(saved_words(2, 4, kind), 1);
        assert_eq!(saved_words(5, 2, kind), 10 - 2 - 6);
        // Benefit is monotone in body size for fixed k ≥ 2.
        for k in 2..6 {
            for m in 2..20 {
                assert!(saved_words(m + 1, k, kind) >= saved_words(m, k, kind));
            }
        }
    }

    #[test]
    fn lr_save_costs_one_word() {
        // push {lr} is extra; pop {pc} replaces the bx lr return.
        let plain = ExtractionKind::Procedure { lr_save: false };
        let saved = ExtractionKind::Procedure { lr_save: true };
        assert_eq!(saved_words(4, 3, plain) - saved_words(4, 3, saved), 1);
    }

    #[test]
    fn cross_jump_beats_procedure() {
        // Cross-jump saves the return instruction.
        for m in 2..10 {
            for k in 2..6 {
                assert!(
                    saved_words(m, k, ExtractionKind::CrossJump)
                        > saved_words(m, k, ExtractionKind::Procedure { lr_save: false })
                );
            }
        }
    }
}
