//! Suffix-trie (SFX) fragment detection: the paper's baseline, fed
//! through the same cost model and extractor as the graph methods.

use gpa_cfg::{Item, Program};
use gpa_mining::graph::LabelInterner;
use gpa_sfx::{repeated_factors, RepeatCandidate};

use crate::candidate::{classify_body, Candidate, ExtractionKind, Occurrence};
use crate::cost::saved_words;
use crate::graph_detect::{lr_free_functions, region_infos, RegionInfo};

/// Builds the best candidate from one repeated factor (trying the full
/// length first, then the longest classifiable prefix).
fn candidate_from_repeat(
    repeat: &RepeatCandidate,
    infos: &[RegionInfo],
    lr_free: &[bool],
) -> Option<Candidate> {
    let (seq0, off0) = repeat.occurrences[0];
    let full: Vec<Item> = infos[seq0].items[off0..off0 + repeat.len].to_vec();
    // Benefit is monotone in length for a fixed occurrence set, so try the
    // longest classifiable prefix first.
    let mut best: Option<Candidate> = None;
    for len in (2..=repeat.len).rev() {
        let body = &full[..len];
        let Some(kind) = classify_body(body) else {
            continue;
        };
        // A cross-jump prefix must still end at the region end; only the
        // full length can (the return terminates the region).
        let occurrences: Vec<(usize, usize)> = repeat
            .truncated(len)
            .disjoint_occurrences()
            .into_iter()
            .filter(|&(seq, off)| {
                let info = &infos[seq];
                match kind {
                    ExtractionKind::Procedure { .. } => lr_free[info.function],
                    ExtractionKind::CrossJump => off + len == info.items.len(),
                }
            })
            .collect();
        if occurrences.len() < 2 {
            continue;
        }
        let body_words: usize = body.iter().map(Item::encoded_words).sum();
        let saved = saved_words(body_words, occurrences.len(), kind);
        if saved <= 0 {
            continue;
        }
        let candidate = Candidate {
            body: body.to_vec(),
            occurrences: occurrences
                .into_iter()
                .map(|(seq, off)| {
                    let info = &infos[seq];
                    Occurrence {
                        function: info.function,
                        region_start: info.start,
                        region_len: info.len,
                        item_indices: (info.start + off..info.start + off + len).collect(),
                    }
                })
                .collect(),
            kind,
            saved,
            relaxed: Vec::new(),
        };
        if best
            .as_ref()
            .map(|b| candidate.saved > b.saved)
            .unwrap_or(true)
        {
            best = Some(candidate);
        }
    }
    best
}

/// Finds the best extractable candidate under suffix-trie detection, or
/// `None` when no extraction shrinks the program.
pub fn best_candidate(program: &Program) -> Option<Candidate> {
    let infos = region_infos(program);
    let lr_free = lr_free_functions(program);
    // Symbol sequences: one per region, sharing an interner so identical
    // instructions get identical symbols program-wide.
    let mut interner = LabelInterner::new();
    let seqs: Vec<Vec<u32>> = infos
        .iter()
        .map(|info| {
            info.items
                .iter()
                .map(|i| interner.intern(&i.mining_label()))
                .collect()
        })
        .collect();
    let repeats = repeated_factors(&seqs, 2);
    repeats
        .iter()
        .filter_map(|r| candidate_from_repeat(r, &infos, &lr_free))
        .max_by(|a, b| {
            a.saved
                .cmp(&b.saved)
                .then(b.body_words().cmp(&a.body_words()))
                .then_with(|| {
                    let ka = (&a.occurrences[0].function, &a.occurrences[0].item_indices);
                    let kb = (&b.occurrences[0].function, &b.occurrences[0].item_indices);
                    kb.cmp(&ka)
                })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_cfg::FunctionCode;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn function(name: &str, texts: &[&str]) -> FunctionCode {
        FunctionCode {
            name: name.into(),
            address_taken: false,
            items: texts.iter().map(|s| insn(s)).collect(),
            label_count: 0,
        }
    }

    fn program(functions: Vec<FunctionCode>) -> Program {
        let entry = functions[0].name.clone();
        Program {
            functions,
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry,
        }
    }

    #[test]
    fn finds_repeated_sequence_across_functions() {
        // A 4-instruction sequence in three lr-free functions: saving
        // 3*4 - 3 - 5 = 4 words.
        let seq = [
            "push {r4, lr}",
            "ldr r3, [r0]",
            "add r3, r3, #1",
            "str r3, [r0]",
            "mul r4, r3, r3",
            "pop {r4, pc}",
        ];
        let p = program(vec![
            function("a", &seq),
            function("b", &seq),
            function("c", &seq),
        ]);
        let cand = best_candidate(&p).expect("profitable repeat");
        assert!(cand.saved > 0);
        assert_eq!(cand.occurrences.len(), 3);
        assert!(matches!(
            cand.kind,
            ExtractionKind::Procedure { .. } | ExtractionKind::CrossJump
        ));
    }

    #[test]
    fn reordered_duplicates_are_invisible_to_sfx() {
        // The same three instructions in different orders (independent):
        // the suffix view sees no repeat of length ≥ 2.
        let p = program(vec![
            function(
                "a",
                &[
                    "push {r4, lr}",
                    "mov r4, #1",
                    "mov r3, #2",
                    "mov r2, #3",
                    "pop {r4, pc}",
                ],
            ),
            function(
                "b",
                &[
                    "push {r4, lr}",
                    "mov r2, #3",
                    "mov r4, #1",
                    "mov r3, #2",
                    "pop {r4, pc}",
                ],
            ),
        ]);
        // The only shared 2+-sequences are the prologue/epilogue pairs,
        // which are too small to profit (2*2 - 2 - 3 < 0), and
        // "mov r4,#1; mov r3,#2" (also 2 long).
        assert!(best_candidate(&p).is_none());
    }

    #[test]
    fn leaf_functions_excluded_from_procedure_extraction() {
        let seq = [
            "ldr r3, [r0]",
            "add r3, r3, #1",
            "str r3, [r0]",
            "mul r4, r3, r3",
            "bx lr",
        ];
        let p = program(vec![
            function("a", &seq),
            function("b", &seq),
            function("c", &seq),
        ]);
        // lr is live in leaf functions, so no procedure extraction; but
        // the whole block ends in a return → cross-jump is allowed.
        if let Some(c) = best_candidate(&p) {
            assert_eq!(c.kind, ExtractionKind::CrossJump);
        }
    }
}
