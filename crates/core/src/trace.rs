//! Trace (Mazurkiewicz) equivalence of instruction sequences.
//!
//! Two instruction sequences compute the same thing when one can be
//! reached from the other by repeatedly swapping adjacent *independent*
//! instructions. This is decidable by projection: the sequences must be
//! equal as multisets, and for every pair of mutually dependent
//! instruction values, the projections onto those two values must be
//! identical. Extraction relies on this to prove that one shared fragment
//! body is a valid stand-in for every occurrence.

use std::collections::HashMap;

use gpa_arm::defuse::conflicts;
use gpa_cfg::Item;

/// Whether two item sequences are trace-equivalent: equal as multisets,
/// with every dependent pair ordered identically.
///
/// # Examples
///
/// ```
/// use gpa_cfg::Item;
/// use gpa::trace::trace_equivalent;
///
/// let a: Vec<Item> = ["ldr r3, [r1]", "add r5, r5, #1", "sub r2, r2, r3"]
///     .iter().map(|s| Item::Insn(s.parse().unwrap())).collect();
/// // Hoisting the independent add is fine …
/// let b = vec![a[1].clone(), a[0].clone(), a[2].clone()];
/// assert!(trace_equivalent(&a, &b));
/// // … but the sub must stay after the load feeding it.
/// let c = vec![a[2].clone(), a[0].clone(), a[1].clone()];
/// assert!(!trace_equivalent(&a, &c));
/// ```
pub fn trace_equivalent(a: &[Item], b: &[Item]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Fast path: identical sequences are trivially equivalent (the common
    // case — template-generated duplicates usually match order exactly).
    if a == b {
        return true;
    }
    // Intern item values.
    let mut ids: HashMap<&Item, u32> = HashMap::new();
    let mut values: Vec<&Item> = Vec::new();
    let mut seq_a: Vec<u32> = Vec::with_capacity(a.len());
    for item in a {
        let next = values.len() as u32;
        let id = *ids.entry(item).or_insert_with(|| {
            values.push(item);
            next
        });
        seq_a.push(id);
    }
    let mut seq_b: Vec<u32> = Vec::with_capacity(b.len());
    for item in b {
        match ids.get(item) {
            Some(&id) => seq_b.push(id),
            None => return false, // b contains an item a lacks
        }
    }
    // Multiset equality.
    let mut count_a = vec![0i64; values.len()];
    let mut count_b = vec![0i64; values.len()];
    for &x in &seq_a {
        count_a[x as usize] += 1;
    }
    for &x in &seq_b {
        count_b[x as usize] += 1;
    }
    if count_a != count_b {
        return false;
    }
    // Projection equality for every conflicting value pair (including a
    // value with itself — identical items trivially project equally, so
    // only distinct pairs need checking).
    for x in 0..values.len() as u32 {
        for y in (x + 1)..values.len() as u32 {
            let fx = values[x as usize].effects();
            let fy = values[y as usize].effects();
            if !conflicts(&fx, &fy) {
                continue;
            }
            let proj = |seq: &[u32]| -> Vec<u32> {
                seq.iter().copied().filter(|&s| s == x || s == y).collect()
            };
            if proj(&seq_a) != proj(&seq_b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(texts: &[&str]) -> Vec<Item> {
        texts
            .iter()
            .map(|s| Item::Insn(s.parse().unwrap()))
            .collect()
    }

    #[test]
    fn identical_sequences() {
        let a = items(&["mov r0, #1", "mov r1, #2"]);
        assert!(trace_equivalent(&a, &a));
    }

    #[test]
    fn independent_swap_ok() {
        let a = items(&["mov r0, #1", "mov r1, #2"]);
        let b = items(&["mov r1, #2", "mov r0, #1"]);
        assert!(trace_equivalent(&a, &b));
    }

    #[test]
    fn dependent_swap_rejected() {
        let a = items(&["mov r0, #1", "add r1, r0, #2"]);
        let b = items(&["add r1, r0, #2", "mov r0, #1"]);
        assert!(!trace_equivalent(&a, &b));
    }

    #[test]
    fn multiset_mismatch_rejected() {
        let a = items(&["mov r0, #1", "mov r0, #1"]);
        let b = items(&["mov r0, #1", "mov r0, #2"]);
        assert!(!trace_equivalent(&a, &b));
        assert!(!trace_equivalent(&a, &a[..1]));
    }

    #[test]
    fn duplicate_items_commute() {
        // Two identical loads with an independent add between/around.
        let a = items(&["ldr r3, [r1], #4", "add r5, r5, #1", "ldr r3, [r1], #4"]);
        let b = items(&["add r5, r5, #1", "ldr r3, [r1], #4", "ldr r3, [r1], #4"]);
        assert!(trace_equivalent(&a, &b));
    }

    #[test]
    fn memory_ordering_matters() {
        let a = items(&["str r0, [r1]", "ldr r2, [r3]"]);
        let b = items(&["ldr r2, [r3]", "str r0, [r1]"]);
        assert!(!trace_equivalent(&a, &b));
    }
}
