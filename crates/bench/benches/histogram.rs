//! Latency-histogram benchmarks: the `gpa perf` harness records one
//! [`LogHistogram`] sample per stage per image, and the regression gate
//! reads percentiles back out — both must stay cheap enough to never
//! distort the latencies they measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpa_trace::LogHistogram;

/// Log-uniform latencies spanning nanoseconds to seconds, the range the
/// stage timings actually cover.
fn samples(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let exponent = rng.gen_range(0..30u32);
            rng.gen_range(0..2u64 << exponent)
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_record");
    for &n in &[1_000usize, 100_000] {
        let values = samples(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| {
                let mut h = LogHistogram::new();
                for &v in values {
                    h.record(v);
                }
                h.count()
            });
        });
    }
    group.finish();
}

fn bench_percentiles(c: &mut Criterion) {
    let mut h = LogHistogram::new();
    for v in samples(100_000, 7) {
        h.record(v);
    }
    c.bench_function("histogram_p50_p90_p99", |b| {
        b.iter(|| (h.percentile(50), h.percentile(90), h.percentile(99)));
    });
}

fn bench_merge(c: &mut Criterion) {
    let mut parts = Vec::new();
    for seed in 0..8u64 {
        let mut h = LogHistogram::new();
        for v in samples(10_000, seed) {
            h.record(v);
        }
        parts.push(h);
    }
    c.bench_function("histogram_merge_8x10k", |b| {
        b.iter(|| {
            let mut total = LogHistogram::new();
            for part in &parts {
                total.merge(part);
            }
            total.count()
        });
    });
}

criterion_group!(benches, bench_record, bench_percentiles, bench_merge);
criterion_main!(benches);
