//! Suffix-array baseline benchmarks: construction and repeat enumeration
//! over the real benchmark instruction streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpa_bench::compile;
use gpa_mining::graph::LabelInterner;
use gpa_sfx::{repeated_factors, suffix_array};

fn sequences_for(name: &str) -> Vec<Vec<u32>> {
    let image = compile(name, true);
    let program = gpa_cfg::decode_image(&image).expect("benchmark lifts");
    let mut interner = LabelInterner::new();
    program
        .regions()
        .iter()
        .map(|r| {
            r.items
                .iter()
                .map(|i| interner.intern(&i.mining_label()))
                .collect()
        })
        .collect()
}

fn bench_suffix_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_array");
    for name in ["crc", "rijndael"] {
        let text: Vec<u32> = sequences_for(name).concat();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{name}_{}", text.len())),
            &text,
            |b, text| b.iter(|| suffix_array(text)),
        );
    }
    group.finish();
}

fn bench_repeat_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("repeated_factors");
    for name in ["crc", "rijndael"] {
        let seqs = sequences_for(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &seqs, |b, seqs| {
            b.iter(|| repeated_factors(seqs, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suffix_array, bench_repeat_enumeration);
criterion_main!(benches);
