//! Batch-pipeline benchmarks: cold vs cache-warm corpus runs and the
//! worker-pool scaling of `gpa batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpa::{RunConfig, ValidateLevel};
use gpa_bench::compile;
use gpa_pipeline::{run_batch, BatchConfig, BatchInput};

fn corpus() -> Vec<BatchInput> {
    ["crc", "sha", "bitcnts", "qsort"]
        .iter()
        .map(|name| BatchInput::loaded(*name, compile(name, true)))
        .collect()
}

fn config(jobs: usize) -> BatchConfig {
    BatchConfig {
        jobs,
        run: RunConfig {
            validate: ValidateLevel::Off,
            ..RunConfig::default()
        },
        ..BatchConfig::default()
    }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let inputs = corpus();
    let mut group = c.benchmark_group("batch_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        // A fresh in-memory cache per run: every image misses.
        b.iter(|| run_batch(&inputs, &config(1)).unwrap());
    });
    let dir = std::env::temp_dir().join(format!("gpa-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let warm_config = BatchConfig {
        cache_dir: Some(dir.clone()),
        ..config(1)
    };
    run_batch(&inputs, &warm_config).unwrap(); // prime the disk layer
    group.bench_function("warm", |b| {
        b.iter(|| run_batch(&inputs, &warm_config).unwrap());
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_worker_scaling(c: &mut Criterion) {
    let inputs = corpus();
    let mut group = c.benchmark_group("batch_jobs");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| run_batch(&inputs, &config(jobs)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_worker_scaling);
criterion_main!(benches);
