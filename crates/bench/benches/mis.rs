//! MIS-solver benchmarks: the exact branch-and-bound (Kumlander-style
//! bound) against the greedy heuristic on random collision graphs — the
//! ablation for the "exact vs greedy overlap resolution" design choice
//! called out in DESIGN.md, plus dense-overlap instances sized around the
//! 64→128 exact-width boundary for the bitset-kernel rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpa_mining::mis::{collision_graph, greedy_disjoint_count, max_independent_set};
use gpa_mining::nodeset::NodeSet;

/// Random embedding node-sets over a block of `universe` instructions.
fn random_sets(n: usize, universe: u32, set_len: usize, seed: u64) -> Vec<NodeSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..set_len)
                .map(|_| rng.gen_range(0..universe))
                .collect::<NodeSet>()
        })
        .collect()
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    for &(n, universe) in &[(12usize, 30u32), (24, 40), (48, 60)] {
        let sets = random_sets(n, universe, 4, 42);
        let adj = collision_graph(&sets);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{n}sets_{universe}u")),
            &adj,
            |b, adj| b.iter(|| max_independent_set(adj)),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{n}sets_{universe}u")),
            &sets,
            |b, sets| b.iter(|| greedy_disjoint_count(sets)),
        );
    }
    group.finish();
}

/// Dense-overlap instances: many medium-length sets drawn from a tight
/// universe, so most pairs collide and both the pairwise intersection
/// sweep and the branch-and-bound carry real load. Sized to straddle the
/// widened exact-solver boundary (n ≤ 128 is solved exactly).
fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_dense");
    group.sample_size(20);
    for &n in &[32usize, 64, 96, 128] {
        // universe ≈ 2n keeps expected pairwise overlap high at every n.
        let sets = random_sets(n, (2 * n) as u32, 6, 0xdecade + n as u64);
        group.bench_with_input(BenchmarkId::new("collision_graph", n), &sets, |b, sets| {
            b.iter(|| collision_graph(sets));
        });
        // Scalar reference: the pre-bitset pairwise sorted-merge sweep,
        // on identical instances — the speedup baseline for the word-AND
        // kernel.
        let sorted: Vec<Vec<u32>> = sets
            .iter()
            .map(gpa_mining::nodeset::NodeSet::to_sorted_vec)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("collision_graph_scalar", n),
            &sorted,
            |b, sorted| {
                b.iter(|| {
                    let mut edges = 0usize;
                    for i in 0..sorted.len() {
                        for j in (i + 1)..sorted.len() {
                            if gpa_mining::mis::sorted_intersects(&sorted[i], &sorted[j]) {
                                edges += 1;
                            }
                        }
                    }
                    edges
                });
            },
        );
        let adj = collision_graph(&sets);
        group.bench_with_input(BenchmarkId::new("exact_mis", n), &adj, |b, adj| {
            b.iter(|| max_independent_set(adj));
        });
        group.bench_with_input(BenchmarkId::new("graph_plus_mis", n), &sets, |b, sets| {
            b.iter(|| max_independent_set(&collision_graph(sets)));
        });
    }
    group.finish();
}

fn bench_collision_graph(c: &mut Criterion) {
    let sets = random_sets(64, 80, 5, 7);
    c.bench_function("collision_graph_64", |b| b.iter(|| collision_graph(&sets)));
}

criterion_group!(benches, bench_mis, bench_dense, bench_collision_graph);
criterion_main!(benches);
