//! MIS-solver benchmarks: the exact branch-and-bound (Kumlander-style
//! bound) against the greedy heuristic on random collision graphs — the
//! ablation for the "exact vs greedy overlap resolution" design choice
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpa_mining::mis::{collision_graph, greedy_disjoint_count, max_independent_set};

/// Random embedding node-sets over a block of `universe` instructions.
fn random_sets(n: usize, universe: u32, set_len: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut s: Vec<u32> = (0..set_len).map(|_| rng.gen_range(0..universe)).collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect()
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    for &(n, universe) in &[(12usize, 30u32), (24, 40), (48, 60)] {
        let sets = random_sets(n, universe, 4, 42);
        let adj = collision_graph(&sets);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{n}sets_{universe}u")),
            &adj,
            |b, adj| b.iter(|| max_independent_set(adj)),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{n}sets_{universe}u")),
            &sets,
            |b, sets| b.iter(|| greedy_disjoint_count(sets)),
        );
    }
    group.finish();
}

fn bench_collision_graph(c: &mut Criterion) {
    let sets = random_sets(64, 80, 5, 7);
    c.bench_function("collision_graph_64", |b| b.iter(|| collision_graph(&sets)));
}

criterion_group!(benches, bench_mis, bench_collision_graph);
criterion_main!(benches);
