//! Mining-time benchmarks: DgSpan vs Edgar over real benchmark DFGs —
//! the reproduction of the paper's §4.2 timing discussion (DgSpan ~50 s,
//! Edgar ~90 s per program on 2007 hardware; Edgar costs more because of
//! embedding lists and MIS computation), plus a fragment-size-cap sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpa_bench::compile;
use gpa_dfg::{build_all, LabelMode};
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{mine, Config, Support};

fn graphs_for(name: &str) -> Vec<InputGraph> {
    let image = compile(name, true);
    let program = gpa_cfg::decode_image(&image).expect("benchmark lifts");
    let dfgs = build_all(&program, LabelMode::Exact);
    InputGraph::from_dfgs(&dfgs).0
}

fn bench_support_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_support");
    group.sample_size(10);
    for name in ["crc", "search", "sha"] {
        let graphs = graphs_for(name);
        group.bench_with_input(BenchmarkId::new("dgspan", name), &graphs, |b, graphs| {
            b.iter(|| {
                mine(
                    graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Graphs,
                        max_nodes: 10,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("edgar", name), &graphs, |b, graphs| {
            b.iter(|| {
                mine(
                    graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Embeddings,
                        max_nodes: 10,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_fragment_cap(c: &mut Criterion) {
    let graphs = graphs_for("crc");
    let mut group = c.benchmark_group("mining_max_nodes");
    group.sample_size(10);
    for cap in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                mine(
                    &graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Embeddings,
                        max_nodes: cap,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // The paper's companion work [33] reports shared-memory speedups for
    // exactly this workload; seed-level partitioning scales until subtree
    // sizes skew.
    let graphs = graphs_for("sha");
    let config = Config {
        min_support: 2,
        support: Support::Embeddings,
        max_nodes: 8,
        max_patterns: 30_000,
        ..Config::default()
    };
    let mut group = c.benchmark_group("mining_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| gpa_mining::miner::mine_parallel(&graphs, &config, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_support_modes,
    bench_fragment_cap,
    bench_parallel
);
criterion_main!(benches);
