//! Mining-time benchmarks: DgSpan vs Edgar over real benchmark DFGs —
//! the reproduction of the paper's §4.2 timing discussion (DgSpan ~50 s,
//! Edgar ~90 s per program on 2007 hardware; Edgar costs more because of
//! embedding lists and MIS computation), plus a fragment-size-cap sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpa_bench::compile;
use gpa_dfg::{build_all, LabelMode};
use gpa_mining::graph::{GEdge, InputGraph};
use gpa_mining::miner::{mine, Config, Support};
use gpa_trace::Tracer;

fn graphs_for(name: &str) -> Vec<InputGraph> {
    let image = compile(name, true);
    let program = gpa_cfg::decode_image(&image).expect("benchmark lifts");
    let dfgs = build_all(&program, LabelMode::Exact);
    InputGraph::from_dfgs(&dfgs).0
}

fn bench_support_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_support");
    group.sample_size(10);
    for name in ["crc", "search", "sha"] {
        let graphs = graphs_for(name);
        group.bench_with_input(BenchmarkId::new("dgspan", name), &graphs, |b, graphs| {
            b.iter(|| {
                mine(
                    graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Graphs,
                        max_nodes: 10,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("edgar", name), &graphs, |b, graphs| {
            b.iter(|| {
                mine(
                    graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Embeddings,
                        max_nodes: 10,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_fragment_cap(c: &mut Criterion) {
    let graphs = graphs_for("crc");
    let mut group = c.benchmark_group("mining_max_nodes");
    group.sample_size(10);
    for cap in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                mine(
                    &graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Embeddings,
                        max_nodes: cap,
                        max_patterns: 30_000,
                        ..Config::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // The paper's companion work [33] reports shared-memory speedups for
    // exactly this workload; seed-level partitioning scales until subtree
    // sizes skew.
    let graphs = graphs_for("sha");
    let config = Config {
        min_support: 2,
        support: Support::Embeddings,
        max_nodes: 8,
        max_patterns: 30_000,
        ..Config::default()
    };
    let mut group = c.benchmark_group("mining_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| gpa_mining::miner::mine_parallel(&graphs, &config, threads));
            },
        );
    }
    group.finish();
}

fn bench_dense_bucket(c: &mut Criterion) {
    // Regression guard for the `push_bucket` dedup rewrite: a star graph
    // funnels every seed embedding into one extension bucket, which the
    // old `Vec::contains` scan made quadratic in bucket size. With the
    // hash-set dedup, doubling the leaf count should roughly double the
    // per-bucket work, not quadruple it.
    let star = |leaves: u32| {
        let labels: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(2, leaves as usize))
            .collect();
        let edges: Vec<GEdge> = (1..=leaves)
            .map(|leaf| GEdge {
                from: 0,
                to: leaf,
                label: 1,
            })
            .collect();
        InputGraph::new(labels, edges)
    };
    let mut group = c.benchmark_group("mining_dense_bucket");
    group.sample_size(10);
    for leaves in [32u32, 64] {
        let graphs = vec![star(leaves)];
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &graphs, |b, graphs| {
            b.iter(|| {
                mine(
                    graphs,
                    &Config {
                        min_support: 2,
                        support: Support::Embeddings,
                        max_nodes: 3,
                        max_patterns: 10_000,
                        ..Config::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_canonical_cache(c: &mut Criterion) {
    // The canonicality cache memoizes `Pattern::is_min` by content hash;
    // repeated mining rounds over the same corpus (the optimizer's normal
    // shape) re-check mostly-identical patterns. Report the observed
    // hit rate once, then measure the re-mining time the cache serves.
    let graphs = graphs_for("crc");
    let config = Config {
        min_support: 2,
        support: Support::Embeddings,
        max_nodes: 8,
        max_patterns: 30_000,
        ..Config::default()
    };
    let tracer = std::sync::Arc::new(gpa_trace::CounterTracer::new());
    let traced = Config {
        tracer: tracer.clone(),
        ..config.clone()
    };
    // Two rounds: the second runs against a warm cache, like round 2 of
    // the optimizer does.
    let _ = mine(&graphs, &traced);
    let _ = mine(&graphs, &traced);
    let counters = tracer.counters();
    let checks = counters.get("mine.canon_checks");
    let hits = counters.get("mine.canon_cache_hit");
    eprintln!(
        "canonical cache: {hits}/{checks} hits ({:.1}%)",
        100.0 * hits as f64 / checks.max(1) as f64
    );
    let mut group = c.benchmark_group("mining_canonical_cache");
    group.sample_size(10);
    group.bench_function("warm_rerun", |b| b.iter(|| mine(&graphs, &config)));
    group.finish();
}

criterion_group!(
    benches,
    bench_support_modes,
    bench_fragment_cap,
    bench_parallel,
    bench_dense_bucket,
    bench_canonical_cache
);
criterion_main!(benches);
