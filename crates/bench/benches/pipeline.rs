//! Pipeline-stage benchmarks: compiling, lifting, DFG construction and
//! re-encoding — the fixed costs around the miners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpa_bench::compile;
use gpa_dfg::{build_all, LabelMode};
use gpa_minicc::Options;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("minicc_compile");
    group.sample_size(20);
    for name in ["crc", "rijndael"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| gpa_minicc::compile_benchmark(name, &Options::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_lift_and_encode(c: &mut Criterion) {
    let image = compile("rijndael", true);
    c.bench_function("decode_image_rijndael", |b| {
        b.iter(|| gpa_cfg::decode_image(&image).unwrap());
    });
    let program = gpa_cfg::decode_image(&image).unwrap();
    c.bench_function("encode_program_rijndael", |b| {
        b.iter(|| gpa_cfg::encode_program(&program).unwrap());
    });
    c.bench_function("build_dfgs_rijndael", |b| {
        b.iter(|| build_all(&program, LabelMode::Exact));
    });
}

fn bench_emulation(c: &mut Criterion) {
    let image = compile("crc", true);
    let mut group = c.benchmark_group("emulator");
    group.sample_size(10);
    group.bench_function("crc_full_run", |b| {
        b.iter(|| {
            gpa_emu::Machine::new(&image)
                .run(600_000_000)
                .expect("crc runs")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_lift_and_encode,
    bench_emulation
);
criterion_main!(benches);
