//! Behavior goldens for the mining hot path.
//!
//! The bitset rewrite of the Edgar mining core (`NodeSet` embeddings,
//! word-parallel collision graphs, the widened exact MIS, the
//! canonicality cache) must be invisible in every deterministic output:
//! same fragments, same MIS choices, same savings. These tests pin the
//! deterministic sections of the `gpa-report/1`, `gpa-corpus/1` and
//! `gpa-bench/1` documents — and a raw fingerprint of `mine` /
//! `mine_parallel` results — to golden files captured from the
//! pre-rewrite implementation.
//!
//! Regenerate deliberately (e.g. after an intentional behavior change)
//! with `GPA_REGEN_GOLDEN=1 cargo test -p gpa-bench --test
//! hotpath_golden`.

use std::path::PathBuf;

use gpa::{RunConfig, ValidateLevel};
use gpa_dfg::hash::Fnv128;
use gpa_dfg::{build_all, LabelMode};
use gpa_metrics::{run_perf, PerfConfig};
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{mine, mine_parallel, Config, Frequent, Support};
use gpa_pipeline::{run_batch, BatchConfig, BatchInput};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden, or rewrites the
/// golden when `GPA_REGEN_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GPA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "deterministic output drifted from the committed golden {name}"
    );
}

fn kernel_inputs() -> Vec<BatchInput> {
    gpa_minicc::programs::BENCHMARKS
        .iter()
        .map(|&name| {
            let image =
                gpa_minicc::compile_benchmark(name, &gpa_minicc::Options::default()).unwrap();
            BatchInput::loaded(name, image)
        })
        .collect()
}

fn fast_batch_config() -> BatchConfig {
    BatchConfig {
        jobs: 1,
        run: RunConfig {
            validate: ValidateLevel::Off,
            ..RunConfig::default()
        },
        ..BatchConfig::default()
    }
}

/// The deterministic section of the `gpa-corpus/1` document over the
/// full bundled corpus is byte-identical to the pre-rewrite output.
#[test]
fn corpus_document_matches_pre_rewrite_golden() {
    let corpus = run_batch(&kernel_inputs(), &fast_batch_config()).unwrap();
    assert_eq!(corpus.error_count(), 0);
    assert_golden("corpus8.json", &corpus.to_json(false).to_string());
}

/// Every kernel's full `gpa-report/1` document (fragments, occurrence
/// sites, savings — the MIS choices made visible) is byte-identical to
/// the pre-rewrite output.
#[test]
fn per_kernel_reports_match_pre_rewrite_golden() {
    let corpus = run_batch(&kernel_inputs(), &fast_batch_config()).unwrap();
    let mut out = String::new();
    for entry in &corpus.images {
        let report = entry.outcome.as_ref().expect("kernel optimizes");
        out.push_str(&entry.name);
        out.push('\t');
        out.push_str(&report.to_json().to_string());
        out.push('\n');
    }
    assert_golden("reports8.txt", &out);
}

/// The deterministic section of the `gpa-bench/1` document (all three
/// methods over all eight kernels) is byte-identical to the pre-rewrite
/// output.
#[test]
fn bench_document_matches_pre_rewrite_golden() {
    let report = run_perf(&PerfConfig {
        jobs: 2,
        validate: ValidateLevel::Off,
        ..PerfConfig::default()
    })
    .unwrap();
    assert_golden("bench8.json", &report.to_json(false).to_string());
}

/// A stable FNV-1a/128 fingerprint of a mining result list: every
/// pattern's tuples, its support, and every embedding's map.
fn fingerprint(results: &[Frequent]) -> String {
    let mut h = Fnv128::new();
    h.write(b"gpa-mine-fingerprint/1");
    h.write_u64(results.len() as u64);
    for f in results {
        h.write_u64(f.pattern.tuples().len() as u64);
        for t in f.pattern.tuples() {
            h.write_u64(u64::from(t.from));
            h.write_u64(u64::from(t.to));
            h.write_u64(u64::from(t.from_label));
            h.write_u64(u64::from(t.to_label));
            h.write_u64(u64::from(t.outgoing));
            h.write_u64(u64::from(t.edge_label));
        }
        h.write_u64(f.support as u64);
        h.write_u64(f.embeddings.len() as u64);
        for e in &f.embeddings {
            h.write_u64(u64::from(e.graph));
            h.write_u64(e.map.len() as u64);
            for &n in &e.map {
                h.write_u64(u64::from(n));
            }
        }
    }
    format!("{:032x}", h.finish())
}

/// Raw `mine` / `mine_parallel` results over the 8-kernel corpus are
/// identical pre/post rewrite, down to every embedding map.
#[test]
fn mine_results_match_pre_rewrite_fingerprint() {
    let mut dfgs = Vec::new();
    for &name in &gpa_minicc::programs::BENCHMARKS {
        let image = gpa_minicc::compile_benchmark(name, &gpa_minicc::Options::default()).unwrap();
        let program = gpa_cfg::decode_image(&image).expect("kernel lifts");
        dfgs.extend(build_all(&program, LabelMode::Exact));
    }
    let (graphs, _interner) = InputGraph::from_dfgs(&dfgs);
    let config = Config {
        min_support: 2,
        support: Support::Embeddings,
        max_nodes: 6,
        max_patterns: 20_000,
        ..Config::default()
    };
    let sequential = mine(&graphs, &config);
    let mut lines = format!("sequential\t{}\n", fingerprint(&sequential));
    // Parallel runs split the pattern budget per worker, so their result
    // lists are pinned separately (they need not match the sequential
    // list when budgets bind, but must be stable run over run).
    for threads in [2usize, 4] {
        let parallel = mine_parallel(&graphs, &config, threads);
        lines.push_str(&format!("threads{threads}\t{}\n", fingerprint(&parallel)));
    }
    assert_golden("mine_fingerprint.txt", &lines);
}
