//! Regenerates **Table 1**: saved instructions per benchmark for the
//! suffix-trie baseline (SFX), DgSpan and Edgar, plus the totals row and
//! per-method optimization times (the paper's §4.2 timing discussion).
//!
//! ```text
//! cargo run --release -p gpa-bench --bin table1 [--no-sched]
//! ```
//!
//! `--no-sched` compiles the kernels without the instruction-scheduling
//! pass — the ablation showing *why* graph-based PA wins: without
//! reordering, SFX closes most of the gap.

use gpa_bench::{evaluate, secs, BENCHMARKS};

fn main() {
    let schedule = !std::env::args().any(|a| a == "--no-sched");
    println!(
        "Table 1: Saved instructions in the benchmark suite{}",
        if schedule {
            ""
        } else {
            " (scheduler disabled)"
        }
    );
    println!(
        "{:<10} {:>13} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Program", "#Instructions", "SFX", "DgSpan", "Edgar", "t(SFX)", "t(DgS)", "t(Edg)"
    );
    let mut totals = (0usize, 0i64, 0i64, 0i64);
    for name in BENCHMARKS {
        let row = evaluate(name, schedule);
        let [sfx, dgspan, edgar] = &row.outcomes;
        println!(
            "{:<10} {:>13} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            row.name,
            row.instructions,
            sfx.report.saved_words(),
            dgspan.report.saved_words(),
            edgar.report.saved_words(),
            secs(sfx.elapsed),
            secs(dgspan.elapsed),
            secs(edgar.elapsed),
        );
        totals.0 += row.instructions;
        totals.1 += sfx.report.saved_words();
        totals.2 += dgspan.report.saved_words();
        totals.3 += edgar.report.saved_words();
    }
    println!(
        "{:<10} {:>13} | {:>8} {:>8} {:>8}",
        "total", totals.0, totals.1, totals.2, totals.3
    );
    if totals.1 > 0 {
        println!(
            "\nEdgar/SFX improvement factor: {:.2}x (paper: 2.6x)",
            totals.3 as f64 / totals.1 as f64
        );
        println!(
            "DgSpan/SFX improvement factor: {:.2}x (paper: 1.6x)",
            totals.2 as f64 / totals.1 as f64
        );
    }
    println!("\n(All optimized binaries re-ran in the emulator with identical output.)");
}
