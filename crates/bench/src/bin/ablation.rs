//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * **canonical (fuzzy) instruction labels** — the paper's Fig. 13
//!   future-work extension. Mining with registers/immediates abstracted
//!   finds more frequent fragments; this reports how many more (an
//!   upper-bound indicator — extraction with register reconciliation is
//!   future work here too, exactly as in the paper).
//! * **scheduler on/off** — how much of graph PA's edge over SFX comes
//!   from instruction reordering (`table1 --no-sched` gives the full
//!   table; this prints the one-line summary).
//!
//! ```text
//! cargo run --release -p gpa-bench --bin ablation
//! ```

use gpa::{Method, Optimizer};
use gpa_bench::{compile, BENCHMARKS};
use gpa_dfg::{build_all, LabelMode};
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{mine_streaming, Config, GrowDecision, Support};

fn frequent_count(name: &str, mode: LabelMode) -> usize {
    let image = compile(name, true);
    let program = gpa_cfg::decode_image(&image).expect("benchmark lifts");
    let dfgs = build_all(&program, mode);
    let (graphs, _) = InputGraph::from_dfgs(&dfgs);
    let mut count = 0usize;
    mine_streaming(
        &graphs,
        &Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 6,
            max_patterns: 50_000,
            ..Config::default()
        },
        &mut |_| {
            count += 1;
            GrowDecision::Continue
        },
    );
    count
}

fn main() {
    println!("Ablation 1: canonical (fuzzy) instruction labels — Fig. 13 extension");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "Program", "exact labels", "canonical", "ratio"
    );
    for name in ["crc", "search", "sha"] {
        let exact = frequent_count(name, LabelMode::Exact);
        let canonical = frequent_count(name, LabelMode::Canonical);
        println!(
            "{:<10} {:>14} {:>14} {:>7.2}x",
            name,
            exact,
            canonical,
            canonical as f64 / exact.max(1) as f64
        );
    }
    println!("\n(Canonical labels merge register variants, exposing more frequent");
    println!("fragments — the headroom the paper attributes to fuzzy matching.)\n");

    println!("Ablation 2: scheduler on/off — where the SFX gap comes from");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Program", "SFX(sched)", "SFX(plain)", "Edgar(sched)"
    );
    for name in BENCHMARKS.iter().take(4) {
        let saved = |schedule: bool, method: Method| {
            let image = compile(name, schedule);
            let mut opt = Optimizer::from_image(&image).expect("lifts");
            opt.run(method)
                .expect("optimization validates")
                .saved_words()
        };
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            name,
            saved(true, Method::Sfx),
            saved(false, Method::Sfx),
            saved(true, Method::Edgar),
        );
    }
    println!("\n(Without reordering, the suffix view recovers much of the loss —");
    println!("the paper's explanation for rijndael's extreme numbers.)");
}
