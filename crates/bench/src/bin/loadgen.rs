//! `gpa-bench`: the serve-mode load generator.
//!
//! Drives a running `gpa serve` daemon with a mixed hot/cold request
//! stream from several concurrent client connections, optionally
//! follows up with a burst phase sized to overflow the server's queue
//! (exercising shed/backpressure), and writes `BENCH_serve.json`:
//! a deterministic section (per-image saved words — the same numbers a
//! one-shot `gpa batch` produces) plus a `"measured"` section
//! (latency percentiles, status counts, throughput).
//!
//! ```text
//! gpa-bench --addr HOST:PORT [--requests N] [--clients C]
//!           [--soak-seconds S] [--burst B] [--out FILE]
//!           [--baseline FILE] [--shutdown]
//! ```
//!
//! * `--requests N` — total request target across all clients
//!   (default 60; the soak profile in verify.sh uses 500).
//! * `--soak-seconds S` — keep issuing requests until `S` seconds have
//!   elapsed, even past `--requests`.
//! * `--burst B` — after the main phase, fire `B` cold requests
//!   concurrently (distinct cache keys, one per thread) to provoke
//!   `overloaded` responses.
//! * `--baseline FILE` — compare the deterministic section against a
//!   committed baseline; exit 2 on mismatch (the perf-regression gate).
//! * `--shutdown` — send a Shutdown frame when done (drains the
//!   daemon).
//!
//! Exit codes: 0 success, 1 usage/transport/protocol failure, 2
//! baseline mismatch.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gpa::json::Json;
use gpa_serve::{send_shutdown, submit};
use gpa_trace::histogram::LogHistogram;

/// Kernels the stream cycles over (a subset keeps the soak fast while
/// still exercising distinct cache entries).
const IMAGES: [&str; 4] = ["crc", "sha", "qsort", "bitcnts"];

struct Args {
    addr: String,
    requests: u64,
    clients: usize,
    soak_seconds: u64,
    burst: usize,
    out: Option<String>,
    baseline: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        requests: 60,
        clients: 4,
        soak_seconds: 0,
        burst: 0,
        out: None,
        baseline: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--soak-seconds" => {
                args.soak_seconds = value("--soak-seconds")?
                    .parse()
                    .map_err(|e| format!("--soak-seconds: {e}"))?;
            }
            "--burst" => {
                args.burst = value("--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    Ok(args)
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    cached: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    error: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Tally {
    fn record(&self, doc: &str) {
        let Ok(parsed) = Json::parse(doc) else {
            self.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match parsed.get("status").and_then(Json::as_str) {
            Some("ok") => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                if parsed
                    .get("metrics")
                    .and_then(|m| m.get("cached"))
                    .and_then(Json::as_bool)
                    == Some(true)
                {
                    self.cached.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some("overloaded") | Some("draining") => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            Some("deadline_exceeded") => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Some("error") => {
                self.error.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn percentiles(hist: &LogHistogram) -> (u64, u64, u64) {
    (
        hist.percentile(50),
        hist.percentile(90),
        hist.percentile(99),
    )
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("gpa-bench: {message}");
            std::process::exit(1);
        }
    };

    let opts = gpa_minicc::Options::default();
    let images: Vec<(&str, Vec<u8>)> = IMAGES
        .iter()
        .map(|name| {
            let image = gpa_minicc::compile_benchmark(name, &opts)
                .unwrap_or_else(|e| panic!("bundled benchmark {name}: {e}"));
            (*name, image.to_bytes())
        })
        .collect();

    // ---- main phase: mixed hot/cold stream over `clients` connections.
    let issued = AtomicU64::new(0);
    let cold_seq = AtomicUsize::new(0);
    let tally = Tally::default();
    let hist = Mutex::new(LogHistogram::default());
    let started = Instant::now();
    let deadline =
        (args.soak_seconds > 0).then(|| started + Duration::from_secs(args.soak_seconds));
    let transport_failed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            let (issued, cold_seq, tally, hist, transport_failed) =
                (&issued, &cold_seq, &tally, &hist, &transport_failed);
            let (images, args) = (&images, &args);
            scope.spawn(move || {
                let Ok(mut conn) = TcpStream::connect(&args.addr) else {
                    transport_failed.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                loop {
                    let n = issued.fetch_add(1, Ordering::Relaxed);
                    let past_target = n >= args.requests;
                    let past_deadline = deadline.is_none_or(|d| Instant::now() >= d);
                    if past_target && (deadline.is_none() || past_deadline) {
                        return;
                    }
                    let (_, bytes) = &images[(n as usize) % images.len()];
                    // 1 in 4 requests goes cold: a unique max_rounds
                    // value gives it a never-seen cache key without
                    // changing the fixpoint result for these kernels.
                    let knobs = if n % 4 == 3 {
                        let unique = 1000 + cold_seq.fetch_add(1, Ordering::Relaxed);
                        format!("{{\"validate\":\"off\",\"max_rounds\":{unique}}}")
                    } else {
                        "{\"validate\":\"off\"}".to_owned()
                    };
                    let sent = Instant::now();
                    match submit(&mut conn, &knobs, bytes) {
                        Ok(doc) => {
                            hist.lock()
                                .expect("histogram poisoned")
                                .record(gpa_trace::saturating_ns(sent.elapsed()));
                            tally.record(&doc);
                        }
                        Err(_) => {
                            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    let main_elapsed = started.elapsed();
    if transport_failed.load(Ordering::Relaxed) > 0 {
        eprintln!("gpa-bench: could not connect to {}", args.addr);
        std::process::exit(1);
    }

    // ---- burst phase: concurrent cold requests to provoke shedding.
    if args.burst > 0 {
        std::thread::scope(|scope| {
            for i in 0..args.burst {
                let (tally, images, args) = (&tally, &images, &args);
                scope.spawn(move || {
                    let Ok(mut conn) = TcpStream::connect(&args.addr) else {
                        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    let (_, bytes) = &images[i % images.len()];
                    let knobs = format!("{{\"validate\":\"off\",\"max_rounds\":{}}}", 5000 + i);
                    match submit(&mut conn, &knobs, bytes) {
                        Ok(doc) => tally.record(&doc),
                        Err(_) => {
                            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
    }

    // ---- deterministic section: one warm request per image; the
    // report's saved words must match a one-shot `gpa batch`.
    let mut per_image = Vec::new();
    {
        let Ok(mut conn) = TcpStream::connect(&args.addr) else {
            eprintln!("gpa-bench: could not connect to {}", args.addr);
            std::process::exit(1);
        };
        for (name, bytes) in &images {
            match submit(&mut conn, "{\"validate\":\"off\"}", bytes) {
                Ok(doc) => {
                    let parsed = Json::parse(&doc).unwrap_or(Json::Obj(vec![]));
                    let saved = parsed
                        .get("report")
                        .and_then(|r| r.get("saved_words"))
                        .and_then(Json::as_int);
                    match saved {
                        Some(saved) => per_image.push((name.to_owned(), saved)),
                        None => {
                            eprintln!("gpa-bench: no report for {name}: {doc}");
                            std::process::exit(1);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("gpa-bench: probe of {name} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if args.shutdown {
            match send_shutdown(&mut conn) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("gpa-bench: shutdown frame failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // ---- the BENCH_serve.json document.
    let hist = hist.into_inner().expect("histogram poisoned");
    let (p50, p90, p99) = percentiles(&hist);
    let image_docs: Vec<String> = per_image
        .iter()
        .map(|(name, saved)| format!("{{\"name\":\"{name}\",\"saved_words\":{saved}}}"))
        .collect();
    let deterministic = format!(
        "{{\"schema\":\"gpa-serve-bench/1\",\"images\":[{}]",
        image_docs.join(",")
    );
    let requests_sent = hist.count();
    let doc = format!(
        "{deterministic},\"measured\":{{\"requests\":{requests_sent},\
         \"clients\":{},\"wall_ms\":{},\"ok\":{},\"cached\":{},\"overloaded\":{},\
         \"deadline_exceeded\":{},\"error\":{},\"protocol_errors\":{},\
         \"latency_ns\":{{\"p50\":{p50},\"p90\":{p90},\"p99\":{p99}}}}}}}",
        args.clients,
        main_elapsed.as_millis(),
        tally.ok.load(Ordering::Relaxed),
        tally.cached.load(Ordering::Relaxed),
        tally.overloaded.load(Ordering::Relaxed),
        tally.deadline_exceeded.load(Ordering::Relaxed),
        tally.error.load(Ordering::Relaxed),
        tally.protocol_errors.load(Ordering::Relaxed),
    );
    println!("{doc}");
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
            eprintln!("gpa-bench: write {out}: {e}");
            std::process::exit(1);
        }
    }

    if tally.protocol_errors.load(Ordering::Relaxed) > 0 {
        eprintln!("gpa-bench: protocol errors observed");
        std::process::exit(1);
    }

    // ---- baseline gate: deterministic sections must match bytewise.
    if let Some(baseline) = &args.baseline {
        let previous = match std::fs::read_to_string(baseline) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("gpa-bench: baseline {baseline}: {e}");
                std::process::exit(1);
            }
        };
        let previous_det = previous.split(",\"measured\":").next().unwrap_or("");
        if previous_det != deterministic {
            eprintln!(
                "gpa-bench: deterministic section drifted from {baseline}\n\
                 baseline: {previous_det}\n\
                 current:  {deterministic}"
            );
            std::process::exit(2);
        }
    }
}
