//! Prints compiled-image statistics for the benchmark suite: code words,
//! lifted instruction count (code minus literal pools), data bytes and
//! symbols. Useful for eyeballing the corpus against the paper's Table 1
//! instruction counts.

use gpa_bench::{compile, BENCHMARKS};

fn main() {
    println!(
        "{:<10} {:>10} {:>13} {:>11} {:>9}",
        "Program", "code words", "#instructions", "data bytes", "symbols"
    );
    for name in BENCHMARKS {
        let image = compile(name, true);
        let program = gpa_cfg::decode_image(&image).expect("benchmark images lift");
        println!(
            "{:<10} {:>10} {:>13} {:>11} {:>9}",
            name,
            image.code_len(),
            program.instruction_count(),
            image.data_bytes().len(),
            image.symbols().len()
        );
    }
}
