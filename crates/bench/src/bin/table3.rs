//! Regenerates **Table 3**: the in-/out-degree histograms (buckets 0, 1,
//! 2, 3 and ≥ 4) of every instruction in the mined DFGs.

use gpa_bench::{compile, BENCHMARKS};
use gpa_dfg::{build_all, stats::degree_stats, LabelMode};

fn main() {
    println!("Table 3: In/out-degree of all instructions");
    println!(
        "{:<10} {:<4} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Program", "Type", "0", "1", "2", "3", ">=4"
    );
    let mut total_in = [0usize; 5];
    let mut total_out = [0usize; 5];
    for name in BENCHMARKS {
        let image = compile(name, true);
        let program = gpa_cfg::decode_image(&image).expect("benchmark images lift");
        let dfgs = build_all(&program, LabelMode::Exact);
        let stats = degree_stats(&dfgs);
        println!(
            "{:<10} {:<4} {:>7} {:>7} {:>7} {:>7} {:>7}",
            name,
            "In",
            stats.in_hist[0],
            stats.in_hist[1],
            stats.in_hist[2],
            stats.in_hist[3],
            stats.in_hist[4]
        );
        println!(
            "{:<10} {:<4} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "",
            "Out",
            stats.out_hist[0],
            stats.out_hist[1],
            stats.out_hist[2],
            stats.out_hist[3],
            stats.out_hist[4]
        );
        for i in 0..5 {
            total_in[i] += stats.in_hist[i];
            total_out[i] += stats.out_hist[i];
        }
    }
    println!(
        "{:<10} {:<4} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "total", "In", total_in[0], total_in[1], total_in[2], total_in[3], total_in[4]
    );
    println!(
        "{:<10} {:<4} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "", "Out", total_out[0], total_out[1], total_out[2], total_out[3], total_out[4]
    );
}
