//! Regenerates **Fig. 12**: how often each extraction mechanism
//! (procedure call vs cross-jump/tail-merge) is used by SFX, DgSpan and
//! Edgar across the suite.

use gpa_bench::{evaluate, BENCHMARKS};

fn main() {
    println!("Fig. 12: Extraction mechanisms used");
    println!(
        "{:<10} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "", "SFX", "", "DgSpan", "", "Edgar", ""
    );
    println!(
        "{:<10} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "Program", "proc", "xjump", "proc", "xjump", "proc", "xjump"
    );
    let mut totals = [0usize; 6];
    for name in BENCHMARKS {
        let row = evaluate(name, true);
        let counts: Vec<(usize, usize)> = row
            .outcomes
            .iter()
            .map(|o| (o.report.procedure_count(), o.report.cross_jump_count()))
            .collect();
        println!(
            "{:<10} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            name, counts[0].0, counts[0].1, counts[1].0, counts[1].1, counts[2].0, counts[2].1
        );
        for (i, (p, x)) in counts.iter().enumerate() {
            totals[2 * i] += p;
            totals[2 * i + 1] += x;
        }
    }
    println!(
        "{:<10} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    println!("\n(Paper: cross jumps are rare — a fragment must end in a return or branch.)");
}
