//! Regenerates **Fig. 11**: relative increase of savings of graph-based
//! PA compared to the suffix-trie baseline, per program and on average.

use gpa_bench::{evaluate, BENCHMARKS};

fn main() {
    println!("Fig. 11: Relative increase of savings vs SFX (percent)");
    println!("{:<10} {:>10} {:>10}", "Program", "DgSpan", "Edgar");
    let mut sums = (0.0f64, 0.0f64);
    let mut count = 0usize;
    for name in BENCHMARKS {
        let row = evaluate(name, true);
        let [sfx, dgspan, edgar] = &row.outcomes;
        let d = dgspan.report.relative_increase_vs(&sfx.report);
        let e = edgar.report.relative_increase_vs(&sfx.report);
        println!("{name:<10} {d:>9.1}% {e:>9.1}%");
        if d.is_finite() && e.is_finite() {
            sums.0 += d;
            sums.1 += e;
            count += 1;
        }
    }
    if count > 0 {
        println!(
            "{:<10} {:>9.1}% {:>9.1}%",
            "average",
            sums.0 / count as f64,
            sums.1 / count as f64
        );
    }
    println!("\n(Paper: Edgar averages about +160% over SFX; rijndael peaks at +266%.)");
}
