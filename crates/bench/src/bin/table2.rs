//! Regenerates **Table 2**: number of instructions with
//! `(degree_IN ∨ degree_OUT) > 1` in all DFGs used for mining — the
//! measure of how much reordering freedom each benchmark offers.

use gpa_bench::{compile, BENCHMARKS};
use gpa_dfg::{build_all, stats::degree_stats, LabelMode};

fn main() {
    println!("Table 2: Instructions with (degree_IN v degree_OUT) > 1 in all DFGs");
    println!(
        "{:<10} {:>11} {:>11} {:>8}",
        "Program", "degree > 1", "degree <= 1", "share"
    );
    let mut total = (0usize, 0usize);
    for name in BENCHMARKS {
        let image = compile(name, true);
        let program = gpa_cfg::decode_image(&image).expect("benchmark images lift");
        let dfgs = build_all(&program, LabelMode::Exact);
        let stats = degree_stats(&dfgs);
        println!(
            "{:<10} {:>11} {:>11} {:>7.1}%",
            name,
            stats.high_degree,
            stats.low_degree,
            100.0 * stats.high_degree as f64 / stats.total().max(1) as f64
        );
        total.0 += stats.high_degree;
        total.1 += stats.low_degree;
    }
    println!(
        "{:<10} {:>11} {:>11} {:>7.1}%",
        "total",
        total.0,
        total.1,
        100.0 * total.0 as f64 / (total.0 + total.1).max(1) as f64
    );
    println!("\n(Paper: more than one third of all nodes have higher fan-in/fan-out.)");
}
