//! The evaluation harness: regenerates every table and figure of the
//! paper's §4 over the bundled MiBench kernels.
//!
//! Binaries:
//!
//! * `table1` — saved instructions per program for SFX / DgSpan / Edgar
//!   (plus timings and the semantic-preservation check);
//! * `table2` — instructions with (in ∨ out) degree > 1 vs ≤ 1;
//! * `table3` — in/out-degree histograms (0, 1, 2, 3, ≥ 4);
//! * `fig11` — relative increase of savings vs SFX;
//! * `fig12` — extraction mechanisms used (procedure call vs cross-jump);
//! * `sizes` — compiled image statistics.
//!
//! Criterion benches live under `benches/`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use gpa::{Method, Optimizer, Report};
use gpa_emu::Machine;
use gpa_image::Image;
use gpa_minicc::{compile_benchmark, Options};

/// The benchmark names, in the paper's Table 1 order.
pub const BENCHMARKS: [&str; 8] = gpa_minicc::programs::BENCHMARKS;

/// Emulator step budget for the largest kernels.
pub const STEP_BUDGET: u64 = 600_000_000;

/// Compiles one benchmark (with or without the scheduling pass).
///
/// # Panics
///
/// Panics if a bundled benchmark fails to compile — that is a build bug.
pub fn compile(name: &str, schedule: bool) -> Image {
    compile_benchmark(name, &Options { schedule })
        .unwrap_or_else(|e| panic!("bundled benchmark {name}: {e}"))
}

/// One optimization outcome.
pub struct MethodOutcome {
    /// The per-round report.
    pub report: Report,
    /// Wall-clock optimization time.
    pub elapsed: Duration,
    /// The optimized image.
    pub image: Image,
}

/// Runs one method over one image, verifying semantic preservation in the
/// emulator.
///
/// # Panics
///
/// Panics when the optimized binary misbehaves — the reproduction's
/// correctness gate.
pub fn optimize(image: &Image, method: Method) -> MethodOutcome {
    let start = Instant::now();
    let mut optimizer = Optimizer::from_image(image).expect("benchmark images lift");
    let report = optimizer.run(method).expect("optimization validates");
    let elapsed = start.elapsed();
    let optimized = optimizer.encode().expect("optimized programs encode");
    let before = Machine::new(image).run(STEP_BUDGET).expect("baseline runs");
    let after = Machine::new(&optimized)
        .run(STEP_BUDGET)
        .expect("optimized binary runs");
    assert_eq!(
        before.exit_code, after.exit_code,
        "{method}: exit code changed"
    );
    assert_eq!(before.output, after.output, "{method}: output changed");
    MethodOutcome {
        report,
        elapsed,
        image: optimized,
    }
}

/// A full Table 1 row.
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Instruction count before PA.
    pub instructions: usize,
    /// Outcomes per method, in [SFX, DgSpan, Edgar] order.
    pub outcomes: [MethodOutcome; 3],
}

/// Evaluates every method on one benchmark.
pub fn evaluate(name: &'static str, schedule: bool) -> Row {
    let image = compile(name, schedule);
    let program = gpa_cfg::decode_image(&image).expect("benchmark images lift");
    let instructions = program.instruction_count();
    let outcomes = [
        optimize(&image, Method::Sfx),
        optimize(&image, Method::DgSpan),
        optimize(&image, Method::Edgar),
    ];
    Row {
        name,
        instructions,
        outcomes,
    }
}

/// Formats a duration as seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}
