//! `gpa` — the command-line driver for the procedural-abstraction
//! toolchain.
//!
//! ```text
//! gpa compile <source.mc> -o <out.img> [--no-sched]   MiniC → linked image
//! gpa bench <name> -o <out.img> [--no-sched]          build a bundled benchmark
//! gpa run <image> [--input <file>]                    execute in the emulator
//! gpa dis <image>                                     lifted assembly listing
//! gpa stats <image> [--json]                          DFG degree statistics
//! gpa lint <image>                                    static binary lints
//! gpa optimize <image> -o <out.img> [--method sfx|dgspan|edgar] [--validate off|final|every-round] [--jobs N] [--trace out.jsonl]
//! gpa batch <dir|files...> [--jobs N] [--cache-dir D] [--trace-dir D] [--method sfx|dgspan|edgar] [--validate] [--report out.json]
//! gpa trace-check <trace.jsonl...>                    validate trace streams
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use gpa::json::Json;
use gpa::{Method, Optimizer, RunConfig, StageTimings, ValidateLevel};
use gpa_emu::Machine;
use gpa_image::Image;
use gpa_pipeline::{expand_inputs, run_batch, BatchConfig};
use gpa_trace::{JsonlTracer, TRACE_SCHEMA};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gpa: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::FAILURE);
    };
    let rest = &args[1..];
    match command.as_str() {
        "compile" => compile(rest),
        "bench" => bench(rest),
        "run" => run_image(rest),
        "dis" => disassemble(rest),
        "stats" => stats(rest),
        "lint" => lint(rest),
        "optimize" => optimize(rest),
        "batch" => batch_run(rest),
        "trace-check" => trace_check(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `gpa help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         gpa compile <source.mc> -o <out.img> [--no-sched]\n  \
         gpa bench <name> -o <out.img> [--no-sched]\n  \
         gpa run <image> [--input <file>]\n  \
         gpa dis <image>\n  \
         gpa stats <image> [--json]\n  \
         gpa lint <image>\n  \
         gpa optimize <image> -o <out.img> [--method sfx|dgspan|edgar] \
         [--validate off|final|every-round] [--jobs N] [--trace out.jsonl]\n  \
         gpa batch <dir|files...> [--jobs N] [--cache-dir D] [--trace-dir D] \
         [--method sfx|dgspan|edgar] [--validate] [--report out.json]\n  \
         gpa trace-check <trace.jsonl...>"
    );
}

/// Extracts `-o <path>` from an argument list, returning (path, rest).
fn take_output(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut rest = Vec::new();
    let mut output = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "-o" {
            output = Some(
                iter.next()
                    .ok_or_else(|| "-o requires a path".to_owned())?
                    .clone(),
            );
        } else {
            rest.push(a.clone());
        }
    }
    Ok((
        output.ok_or_else(|| "missing -o <out.img>".to_owned())?,
        rest,
    ))
}

fn load_image(path: &str) -> Result<Image, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Image::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn save_image(image: &Image, path: &str) -> Result<(), String> {
    std::fs::write(path, image.to_bytes()).map_err(|e| format!("{path}: {e}"))
}

fn compile(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let schedule = !rest.iter().any(|a| a == "--no-sched");
    let source_path = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing source file".to_owned())?;
    let source = std::fs::read_to_string(source_path).map_err(|e| format!("{source_path}: {e}"))?;
    let image = gpa_minicc::compile(&source, &gpa_minicc::Options { schedule })
        .map_err(|e| e.to_string())?;
    save_image(&image, &output)?;
    println!(
        "compiled {source_path}: {} code words, {} data bytes -> {output}",
        image.code_len(),
        image.data_bytes().len()
    );
    Ok(ExitCode::SUCCESS)
}

fn bench(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let schedule = !rest.iter().any(|a| a == "--no-sched");
    let name = rest.iter().find(|a| !a.starts_with("--")).ok_or_else(|| {
        format!(
            "missing benchmark name (one of: {})",
            gpa_minicc::programs::BENCHMARKS.join(", ")
        )
    })?;
    let image = gpa_minicc::compile_benchmark(name, &gpa_minicc::Options { schedule })
        .map_err(|e| e.to_string())?;
    save_image(&image, &output)?;
    println!("built benchmark {name} -> {output}");
    Ok(ExitCode::SUCCESS)
}

fn run_image(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let mut machine = Machine::new(&image);
    if let Some(pos) = args.iter().position(|a| a == "--input") {
        let input_path = args
            .get(pos + 1)
            .ok_or_else(|| "--input requires a path".to_owned())?;
        let input = std::fs::read(input_path).map_err(|e| format!("{input_path}: {e}"))?;
        machine.set_input(input);
    }
    let outcome = machine
        .run(2_000_000_000)
        .map_err(|e| format!("emulation failed: {e}"))?;
    print!("{}", outcome.output_string());
    eprintln!(
        "[exit {} after {} instructions]",
        outcome.exit_code, outcome.steps
    );
    Ok(ExitCode::from(outcome.exit_code as u8))
}

fn disassemble(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let program = gpa_cfg::decode_image(&image).map_err(|e| e.to_string())?;
    print!("{}", program.listing());
    Ok(ExitCode::SUCCESS)
}

fn stats(args: &[String]) -> Result<ExitCode, String> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let program = gpa_cfg::decode_image(&image).map_err(|e| e.to_string())?;
    let dfgs = gpa_dfg::build_all(&program, gpa_dfg::LabelMode::Exact);
    let stats = gpa_dfg::stats::degree_stats(&dfgs);
    if json {
        let hist = |h: &[usize]| Json::Arr(h.iter().map(|&v| Json::from(v)).collect());
        let doc = Json::obj([
            ("functions", Json::from(program.functions.len())),
            ("instructions", Json::from(program.instruction_count())),
            ("regions", Json::from(program.regions().len())),
            (
                "literal_pool_words",
                Json::from(image.code_len() - program.instruction_count()),
            ),
            ("high_degree_nodes", Json::from(stats.high_degree)),
            ("in_degree_hist", hist(&stats.in_hist)),
            ("out_degree_hist", hist(&stats.out_hist)),
        ]);
        println!("{doc}");
        return Ok(ExitCode::SUCCESS);
    }
    println!("functions:        {}", program.functions.len());
    println!("instructions:     {}", program.instruction_count());
    println!("regions:          {}", program.regions().len());
    println!(
        "literal pools:    {} words",
        image.code_len() - program.instruction_count()
    );
    println!(
        "degree > 1 nodes: {} ({:.1}%)",
        stats.high_degree,
        100.0 * stats.high_degree as f64 / stats.total().max(1) as f64
    );
    println!("in-degree hist:   {:?}", stats.in_hist);
    println!("out-degree hist:  {:?}", stats.out_hist);
    Ok(ExitCode::SUCCESS)
}

/// `gpa lint <image>`: run the static binary lints; exit non-zero when
/// any error-severity finding (or an undecodable image) is reported.
fn lint(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let diags = gpa_verify::lint_image(&image);
    for d in &diags {
        eprintln!("{path}: {d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == gpa_verify::Severity::Error)
        .count();
    if errors > 0 {
        eprintln!(
            "{path}: {errors} error(s), {} warning(s)",
            diags.len() - errors
        );
        Ok(ExitCode::FAILURE)
    } else {
        println!("{path}: clean ({} warning(s))", diags.len());
        Ok(ExitCode::SUCCESS)
    }
}

fn optimize(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let mut config = RunConfig::default();
    let mut method = Method::Edgar;
    let mut input = None;
    let mut trace_path = None;
    let mut iter = rest.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--method" => {
                let m = iter
                    .next()
                    .ok_or_else(|| "--method requires a value".to_owned())?;
                method = match m.as_str() {
                    "sfx" => Method::Sfx,
                    "dgspan" => Method::DgSpan,
                    "edgar" => Method::Edgar,
                    other => return Err(format!("unknown method `{other}`")),
                };
            }
            "--validate" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--validate requires a value".to_owned())?;
                config.validate = match v.as_str() {
                    "off" => ValidateLevel::Off,
                    "final" => ValidateLevel::Final,
                    "every-round" => ValidateLevel::EveryRound,
                    other => return Err(format!("unknown validate level `{other}`")),
                };
            }
            "--jobs" => config.mining_threads = take_jobs(&mut iter)?,
            "--trace" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--trace requires a path".to_owned())?;
                trace_path = Some(p.clone());
            }
            other if !other.starts_with("--") => input = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let input = input.ok_or_else(|| "missing image path".to_owned())?;
    if config.mining_threads == 0 {
        config.mining_threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    }
    if let Some(path) = &trace_path {
        let tracer =
            JsonlTracer::to_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        config.tracer = Arc::new(tracer);
    }
    let image = load_image(&input)?;
    let mut timings = StageTimings::default();
    let mut optimizer =
        Optimizer::from_image_timed(&image, &mut timings).map_err(|e| e.to_string())?;
    let report = optimizer
        .run_instrumented(method, &config, &mut timings, None)
        .map_err(|e| e.to_string())?;
    timings.trace(config.tracer.as_ref());
    config.tracer.finish();
    let optimized = optimizer.encode().map_err(|e| e.to_string())?;
    save_image(&optimized, &output)?;
    println!(
        "{method}: {} -> {} instructions ({} saved, {} rounds: {} procedures, {} cross-jumps)",
        report.initial_words,
        report.final_words,
        report.saved_words(),
        report.rounds.len(),
        report.procedure_count(),
        report.cross_jump_count()
    );
    println!("wrote {output}");
    if let Some(path) = &trace_path {
        eprintln!("trace written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the value of a `--jobs` flag (`0` means auto-detect).
fn take_jobs<'a>(iter: &mut impl Iterator<Item = &'a String>) -> Result<usize, String> {
    iter.next()
        .ok_or_else(|| "--jobs requires a number".to_owned())?
        .parse()
        .map_err(|_| "--jobs requires a number".to_owned())
}

/// `gpa batch`: optimize a whole corpus on a worker pool with the
/// content-addressed artifact cache.
///
/// The deterministic corpus report goes to stdout (or `--report <file>`);
/// a human-readable summary with cache and timing metrics goes to stderr.
/// Exits non-zero when any input failed.
fn batch_run(args: &[String]) -> Result<ExitCode, String> {
    let mut config = BatchConfig::default();
    let mut operands = Vec::new();
    let mut report_path = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--jobs" => config.jobs = take_jobs(&mut iter)?,
            "--cache-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--cache-dir requires a path".to_owned())?;
                config.cache_dir = Some(dir.into());
            }
            "--trace-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--trace-dir requires a path".to_owned())?;
                config.trace_dir = Some(dir.into());
            }
            "--method" => {
                let m = iter
                    .next()
                    .ok_or_else(|| "--method requires a value".to_owned())?;
                config.method = Method::parse(m).ok_or_else(|| format!("unknown method `{m}`"))?;
            }
            "--validate" => config.run.validate = ValidateLevel::Final,
            "--report" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--report requires a path".to_owned())?;
                report_path = Some(p.clone());
            }
            other if !other.starts_with("--") => operands.push(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if operands.is_empty() {
        return Err("missing inputs (files or directories)".to_owned());
    }
    let inputs = expand_inputs(&operands)?;
    if inputs.is_empty() {
        return Err("inputs expanded to no files".to_owned());
    }
    let corpus = run_batch(&inputs, &config)?;
    let document = corpus.to_json(true).to_string();
    match &report_path {
        Some(path) => std::fs::write(path, &document).map_err(|e| format!("{path}: {e}"))?,
        None => println!("{document}"),
    }
    let timings = corpus.total_timings();
    eprintln!(
        "batch: {} image(s) on {} worker(s), {} error(s), {} words saved",
        corpus.images.len(),
        corpus.jobs,
        corpus.error_count(),
        corpus.total_saved_words()
    );
    eprintln!(
        "cache: reports {}/{} hit, dfgs {}/{} hit",
        corpus.report_cache_hits,
        corpus.report_cache_hits + corpus.report_cache_misses,
        corpus.dfg_cache_hits,
        corpus.dfg_cache_hits + corpus.dfg_cache_misses
    );
    eprintln!(
        "stages (ms): decode {} dfg {} mining {} mis {} extract {} validate {} | wall {}",
        timings.decode_ns / 1_000_000,
        timings.dfg_build_ns / 1_000_000,
        timings.mining_ns / 1_000_000,
        timings.mis_ns / 1_000_000,
        timings.extraction_ns / 1_000_000,
        timings.validation_ns / 1_000_000,
        corpus.wall_ns / 1_000_000
    );
    for entry in corpus.images.iter().filter(|e| e.outcome.is_err()) {
        if let Err(message) = &entry.outcome {
            eprintln!("error: {}: {message}", entry.name);
        }
    }
    if corpus.error_count() > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `gpa trace-check`: structural validation of `gpa-trace/1` streams.
///
/// For each file: every line must parse as JSON, the first line must be
/// the schema header, the last the counter summary; every event name's
/// line count must equal its recorded counter; and the miner's visit
/// identity (`visited == expanded + subtree_skipped + stopped_max_nodes`)
/// must hold.
fn trace_check(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("missing trace file(s)".to_owned());
    }
    for path in args {
        check_one_trace(path)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn check_one_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", number + 1))?;
        lines.push(doc);
    }
    let Some((header, rest)) = lines.split_first() else {
        return Err(format!("{path}: empty trace"));
    };
    if header.get("schema").and_then(Json::as_str) != Some(TRACE_SCHEMA) {
        return Err(format!("{path}:1: missing or unknown schema header"));
    }
    let Some((summary, events)) = rest.split_last() else {
        return Err(format!("{path}: missing counter-summary line"));
    };
    if summary.get("ev").and_then(Json::as_str) != Some("counters") {
        return Err(format!("{path}: last line is not the counter summary"));
    }
    let counters = summary
        .get("counters")
        .ok_or_else(|| format!("{path}: summary has no counters object"))?;
    let mut observed: std::collections::BTreeMap<&str, i64> = std::collections::BTreeMap::new();
    for doc in events {
        let name = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: event line without \"ev\""))?;
        if doc.get("at_ns").and_then(Json::as_int).is_none() {
            return Err(format!("{path}: event `{name}` without \"at_ns\""));
        }
        *observed.entry(name).or_insert(0) += 1;
    }
    let counter = |name: &str| counters.get(name).and_then(Json::as_int).unwrap_or(0);
    for (name, lines_seen) in &observed {
        let recorded = counter(name);
        if recorded != *lines_seen {
            return Err(format!(
                "{path}: counter `{name}` records {recorded}, \
                 but {lines_seen} event line(s) are present"
            ));
        }
    }
    let visited = counter("mine.patterns_visited");
    let accounted = counter("mine.expanded")
        + counter("mine.subtree_skipped")
        + counter("mine.stopped_max_nodes");
    if visited != accounted {
        return Err(format!(
            "{path}: mine.patterns_visited is {visited}, \
             but expanded + subtree_skipped + stopped_max_nodes is {accounted}"
        ));
    }
    let counter_total = match counters {
        Json::Obj(pairs) => pairs.len(),
        _ => return Err(format!("{path}: counters is not an object")),
    };
    println!(
        "{path}: ok ({} event line(s), {counter_total} counter(s))",
        events.len()
    );
    Ok(())
}
