//! `gpa` — the command-line driver for the procedural-abstraction
//! toolchain.
//!
//! ```text
//! gpa compile <source.mc> -o <out.img> [--no-sched]   MiniC → linked image
//! gpa build-bench <name> -o <out.img> [--no-sched]    build a bundled benchmark image
//! gpa run <image> [--input <file>]                    execute in the emulator
//! gpa dis <image>                                     lifted assembly listing
//! gpa stats <image> [--json]                          DFG degree statistics
//! gpa lint <image> [--json]                           static binary lints
//! gpa absint <image>                                  abstract-interpretation dump
//! gpa optimize <image> -o <out.img> [--method sfx|dgspan|edgar] [--validate off|final|every-round] [--alias off|stack] [--jobs N] [--trace out.jsonl] [--report-json out.json]
//! gpa batch <dir|files...> [--jobs N] [--cache-dir D] [--cache-entries N] [--cache-bytes N] [--trace-dir D] [--method sfx|dgspan|edgar] [--validate] [--report out.json]
//! gpa serve --listen <addr> [--workers N] [--queue-depth N] [--method M] [--cache-dir D] [--cache-entries N] [--cache-bytes N] [--trace out.jsonl]
//! gpa submit <image> --addr <addr> [--knobs JSON] [--report-only]
//! gpa perf [-o bench.json] [--methods a,b] [--kernels a,b] [--jobs N] [--no-sched] [--validate L] [--alias off|stack] [--profile] [--baseline FILE] [--tolerance-pct N] [--compare FILE]
//! gpa trace-check <trace.jsonl...>                    validate trace streams
//! gpa trace-profile <trace.jsonl...>                  aggregate span profile
//! ```
//!
//! `gpa bench` remains a deprecated alias of `gpa build-bench`.
//!
//! # Exit codes
//!
//! Most commands exit `0` on success and `1` on any error. Two commands
//! distinguish their failure classes:
//!
//! * `gpa perf --baseline`: `2` — a *hard* compression regression (or a
//!   kernel/method missing vs the baseline); `3` — only *soft* latency
//!   drift beyond `--tolerance-pct`.
//! * `gpa trace-check`: `2` — I/O error; `3` — schema violation (bad
//!   JSON, missing header/summary, malformed event line); `4` — a
//!   counter-invariant mismatch; `5` — the serve counter identity
//!   (`serve.accepted == serve.completed + serve.shed +
//!   serve.deadline_exceeded + serve.in_flight_at_drain`) is broken.
//!
//! `gpa batch` exits `130` when interrupted (SIGINT/SIGTERM): in-flight
//! images finish, the partial report carries `"interrupted": true`.
//! `gpa submit` exits `0` only for an `ok` response.

use std::process::ExitCode;
use std::sync::Arc;

use gpa::json::Json;
use gpa::{AliasLevel, Method, Optimizer, RunConfig, StageTimings, ValidateLevel};
use gpa_emu::Machine;
use gpa_image::Image;
use gpa_pipeline::{expand_inputs, run_batch, BatchConfig, CacheBudget, ShutdownFlag};
use gpa_trace::{JsonlTracer, TRACE_SCHEMA};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gpa: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::FAILURE);
    };
    let rest = &args[1..];
    match command.as_str() {
        "compile" => compile(rest),
        // `bench` is the historical spelling, kept for compatibility.
        "build-bench" | "bench" => bench(rest),
        "run" => run_image(rest),
        "dis" => disassemble(rest),
        "stats" => stats(rest),
        "lint" => lint(rest),
        "absint" => absint_dump(rest),
        "optimize" => optimize(rest),
        "batch" => batch_run(rest),
        "serve" => serve(rest),
        "submit" => submit(rest),
        "perf" => perf(rest),
        "trace-check" => trace_check(rest),
        "trace-profile" => trace_profile(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `gpa help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         gpa compile <source.mc> -o <out.img> [--no-sched]\n  \
         gpa build-bench <name> -o <out.img> [--no-sched]   (alias: bench)\n  \
         gpa run <image> [--input <file>]\n  \
         gpa dis <image>\n  \
         gpa stats <image> [--json]\n  \
         gpa lint <image> [--json]\n  \
         gpa absint <image>\n  \
         gpa optimize <image> -o <out.img> [--method sfx|dgspan|edgar] \
         [--validate off|final|every-round] [--alias off|stack] [--jobs N] \
         [--trace out.jsonl] [--report-json out.json]\n  \
         gpa batch <dir|files...> [--jobs N] [--cache-dir D] [--cache-entries N] \
         [--cache-bytes N] [--trace-dir D] \
         [--method sfx|dgspan|edgar] [--validate] [--report out.json]\n  \
         gpa serve --listen <addr> [--workers N] [--queue-depth N] \
         [--method sfx|dgspan|edgar] [--validate off|final|every-round] \
         [--cache-dir D] [--cache-entries N] [--cache-bytes N] [--trace out.jsonl]\n  \
         gpa submit <image> --addr <addr> [--knobs JSON] [--report-only]\n  \
         gpa perf [-o bench.json] [--methods a,b] [--kernels a,b] [--jobs N] \
         [--no-sched] [--validate off|final|every-round] [--alias off|stack] \
         [--profile] [--baseline FILE] [--tolerance-pct N] [--compare FILE]\n  \
         gpa trace-check <trace.jsonl...>\n  \
         gpa trace-profile <trace.jsonl...>"
    );
}

/// Extracts `-o <path>` from an argument list, returning (path, rest).
fn take_output(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut rest = Vec::new();
    let mut output = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "-o" {
            output = Some(
                iter.next()
                    .ok_or_else(|| "-o requires a path".to_owned())?
                    .clone(),
            );
        } else {
            rest.push(a.clone());
        }
    }
    Ok((
        output.ok_or_else(|| "missing -o <out.img>".to_owned())?,
        rest,
    ))
}

fn load_image(path: &str) -> Result<Image, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Image::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn save_image(image: &Image, path: &str) -> Result<(), String> {
    std::fs::write(path, image.to_bytes()).map_err(|e| format!("{path}: {e}"))
}

fn compile(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let schedule = !rest.iter().any(|a| a == "--no-sched");
    let source_path = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing source file".to_owned())?;
    let source = std::fs::read_to_string(source_path).map_err(|e| format!("{source_path}: {e}"))?;
    let image = gpa_minicc::compile(&source, &gpa_minicc::Options { schedule })
        .map_err(|e| e.to_string())?;
    save_image(&image, &output)?;
    println!(
        "compiled {source_path}: {} code words, {} data bytes -> {output}",
        image.code_len(),
        image.data_bytes().len()
    );
    Ok(ExitCode::SUCCESS)
}

fn bench(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let schedule = !rest.iter().any(|a| a == "--no-sched");
    let name = rest.iter().find(|a| !a.starts_with("--")).ok_or_else(|| {
        format!(
            "missing benchmark name (one of: {})",
            gpa_minicc::programs::BENCHMARKS.join(", ")
        )
    })?;
    let image = gpa_minicc::compile_benchmark(name, &gpa_minicc::Options { schedule })
        .map_err(|e| e.to_string())?;
    save_image(&image, &output)?;
    println!("built benchmark {name} -> {output}");
    Ok(ExitCode::SUCCESS)
}

fn run_image(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let mut machine = Machine::new(&image);
    if let Some(pos) = args.iter().position(|a| a == "--input") {
        let input_path = args
            .get(pos + 1)
            .ok_or_else(|| "--input requires a path".to_owned())?;
        let input = std::fs::read(input_path).map_err(|e| format!("{input_path}: {e}"))?;
        machine.set_input(input);
    }
    let outcome = machine
        .run(2_000_000_000)
        .map_err(|e| format!("emulation failed: {e}"))?;
    print!("{}", outcome.output_string());
    eprintln!(
        "[exit {} after {} instructions]",
        outcome.exit_code, outcome.steps
    );
    Ok(ExitCode::from(outcome.exit_code as u8))
}

fn disassemble(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let program = gpa_cfg::decode_image(&image).map_err(|e| e.to_string())?;
    print!("{}", program.listing());
    Ok(ExitCode::SUCCESS)
}

fn stats(args: &[String]) -> Result<ExitCode, String> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let program = gpa_cfg::decode_image(&image).map_err(|e| e.to_string())?;
    let dfgs = gpa_dfg::build_all(&program, gpa_dfg::LabelMode::Exact);
    let stats = gpa_dfg::stats::degree_stats(&dfgs);
    if json {
        let hist = |h: &[usize]| Json::Arr(h.iter().map(|&v| Json::from(v)).collect());
        let doc = Json::obj([
            ("functions", Json::from(program.functions.len())),
            ("instructions", Json::from(program.instruction_count())),
            ("regions", Json::from(program.regions().len())),
            (
                "literal_pool_words",
                Json::from(image.code_len() - program.instruction_count()),
            ),
            ("high_degree_nodes", Json::from(stats.high_degree)),
            ("in_degree_hist", hist(&stats.in_hist)),
            ("out_degree_hist", hist(&stats.out_hist)),
        ]);
        println!("{doc}");
        return Ok(ExitCode::SUCCESS);
    }
    println!("functions:        {}", program.functions.len());
    println!("instructions:     {}", program.instruction_count());
    println!("regions:          {}", program.regions().len());
    println!(
        "literal pools:    {} words",
        image.code_len() - program.instruction_count()
    );
    println!(
        "degree > 1 nodes: {} ({:.1}%)",
        stats.high_degree,
        100.0 * stats.high_degree as f64 / stats.total().max(1) as f64
    );
    println!("in-degree hist:   {:?}", stats.in_hist);
    println!("out-degree hist:  {:?}", stats.out_hist);
    Ok(ExitCode::SUCCESS)
}

/// Schema tag of the `gpa lint --json` document.
const LINT_SCHEMA: &str = "gpa-lint/1";

/// `gpa lint <image> [--json]`: run the static binary lints; exit
/// non-zero when any error-severity finding (or an undecodable image) is
/// reported. With `--json`, a machine-readable `gpa-lint/1` document
/// goes to stdout instead of the human-readable lines on stderr.
fn lint(args: &[String]) -> Result<ExitCode, String> {
    let json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let diags = gpa_verify::lint_image(&image);
    let errors = diags
        .iter()
        .filter(|d| d.severity == gpa_verify::Severity::Error)
        .count();
    if json {
        let findings: Vec<Json> = diags
            .iter()
            .map(|d| {
                Json::obj([
                    ("code", Json::from(d.code.as_str())),
                    ("severity", Json::from(d.severity.to_string())),
                    (
                        "function",
                        d.location
                            .function
                            .as_deref()
                            .map_or(Json::Null, Json::from),
                    ),
                    ("item", d.location.item.map_or(Json::Null, Json::from)),
                    ("message", Json::from(d.message.as_str())),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("schema", Json::from(LINT_SCHEMA)),
            ("image", Json::from(path.as_str())),
            ("errors", Json::from(errors)),
            ("warnings", Json::from(diags.len() - errors)),
            ("findings", Json::Arr(findings)),
        ]);
        println!("{doc}");
        return Ok(if errors > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }
    for d in &diags {
        eprintln!("{path}: {d}");
    }
    if errors > 0 {
        eprintln!(
            "{path}: {errors} error(s), {} warning(s)",
            diags.len() - errors
        );
        Ok(ExitCode::FAILURE)
    } else {
        println!("{path}: clean ({} warning(s))", diags.len());
        Ok(ExitCode::SUCCESS)
    }
}

/// `gpa absint <image>`: dump the value-set abstract interpretation —
/// per function, the interprocedural sp-balance verdict, and per item
/// the abstract `sp` plus every memory footprint the interpreter
/// resolved to a based byte range (entry-sp-relative, absolute, or
/// relative to a symbolic pointer).
fn absint_dump(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .ok_or_else(|| "missing image path".to_owned())?;
    let image = load_image(path)?;
    let program = gpa_cfg::decode_image(&image).map_err(|e| e.to_string())?;
    let graph = gpa_verify::CallGraph::build(&program);
    let env = gpa_verify::AbsEnv::build(&program, &graph);
    let mut points = 0u64;
    for f in &program.functions {
        let analysis = gpa_verify::AbsInt::analyze(f, Some(&env));
        points += analysis.points;
        let verdict = if env.sp_balanced(&f.name) {
            "sp-balanced"
        } else {
            "sp-unbalanced"
        };
        println!("{} ({verdict}):", f.name);
        for (i, item) in f.items.iter().enumerate() {
            let text = item.to_string();
            let Some(state) = analysis.before.get(i).and_then(Option::as_ref) else {
                println!("  {i:4}  {text:<32}; unreachable");
                continue;
            };
            let mut note = format!("sp={}", state.get(gpa_arm::Reg::SP));
            match gpa_verify::absint::resolved_accesses(state, item, Some(&env)) {
                Some(accesses) => {
                    for a in &accesses {
                        let rw = if a.store { "store" } else { "load" };
                        match a.base {
                            gpa_verify::AccessBase::Sp => {
                                note.push_str(&format!(" {rw} sp[{}..{})", a.lo, a.hi));
                            }
                            gpa_verify::AccessBase::Abs => {
                                note.push_str(&format!(" {rw} abs[{:#x}..{:#x})", a.lo, a.hi));
                            }
                            gpa_verify::AccessBase::Sym(sym) => {
                                note.push_str(&format!(" {rw} sym{sym:#x}[{}..{})", a.lo, a.hi));
                            }
                        }
                    }
                }
                None => note.push_str(" mem=?"),
            }
            println!("  {i:4}  {text:<32}; {note}");
        }
    }
    println!(
        "{points} reachable point(s) across {} function(s)",
        program.functions.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn optimize(args: &[String]) -> Result<ExitCode, String> {
    let (output, rest) = take_output(args)?;
    let mut config = RunConfig::default();
    let mut method = Method::Edgar;
    let mut input = None;
    let mut trace_path = None;
    let mut report_json_path = None;
    let mut iter = rest.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--method" => {
                let m = iter
                    .next()
                    .ok_or_else(|| "--method requires a value".to_owned())?;
                method = match m.as_str() {
                    "sfx" => Method::Sfx,
                    "dgspan" => Method::DgSpan,
                    "edgar" => Method::Edgar,
                    other => return Err(format!("unknown method `{other}`")),
                };
            }
            "--validate" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--validate requires a value".to_owned())?;
                config.validate = match v.as_str() {
                    "off" => ValidateLevel::Off,
                    "final" => ValidateLevel::Final,
                    "every-round" => ValidateLevel::EveryRound,
                    other => return Err(format!("unknown validate level `{other}`")),
                };
            }
            "--alias" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--alias requires a value".to_owned())?;
                config.alias =
                    AliasLevel::parse(v).ok_or_else(|| format!("unknown alias level `{v}`"))?;
            }
            "--jobs" => {
                // One knob drives both thread pools: the front-end
                // (decode + per-block DFG build) and the mining lattice
                // search.
                let jobs = take_jobs(&mut iter)?;
                config.mining_threads = jobs;
                config.front_threads = jobs;
            }
            "--trace" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--trace requires a path".to_owned())?;
                trace_path = Some(p.clone());
            }
            "--report-json" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--report-json requires a path".to_owned())?;
                report_json_path = Some(p.clone());
            }
            other if !other.starts_with("--") => input = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let input = input.ok_or_else(|| "missing image path".to_owned())?;
    if config.mining_threads == 0 {
        config.mining_threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    }
    if config.front_threads == 0 {
        config.front_threads = config.mining_threads;
    }
    if let Some(path) = &trace_path {
        let tracer =
            JsonlTracer::to_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        config.tracer = Arc::new(tracer);
    }
    let image = load_image(&input)?;
    let mut timings = StageTimings::default();
    let mut optimizer = Optimizer::from_image_configured(&image, &config, &mut timings)
        .map_err(|e| e.to_string())?;
    let report = optimizer
        .run_instrumented(method, &config, &mut timings, None)
        .map_err(|e| e.to_string())?;
    timings.trace(config.tracer.as_ref());
    config.tracer.finish();
    if let Some(path) = &report_json_path {
        // The exact bytes `gpa serve` embeds as the response's
        // `"report"` member (newline-terminated, exactly as `gpa submit
        // --report-only` prints it) — scripts byte-compare the two.
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let optimized = optimizer.encode().map_err(|e| e.to_string())?;
    save_image(&optimized, &output)?;
    println!(
        "{method}: {} -> {} instructions ({} saved, {} rounds: {} procedures, {} cross-jumps)",
        report.initial_words,
        report.final_words,
        report.saved_words(),
        report.rounds.len(),
        report.procedure_count(),
        report.cross_jump_count()
    );
    println!("wrote {output}");
    if let Some(path) = &trace_path {
        eprintln!("trace written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the value of a `--jobs` flag (`0` means auto-detect).
fn take_jobs<'a>(iter: &mut impl Iterator<Item = &'a String>) -> Result<usize, String> {
    iter.next()
        .ok_or_else(|| "--jobs requires a number".to_owned())?
        .parse()
        .map_err(|_| "--jobs requires a number".to_owned())
}

/// `gpa batch`: optimize a whole corpus on a worker pool with the
/// content-addressed artifact cache.
///
/// The deterministic corpus report goes to stdout (or `--report <file>`);
/// a human-readable summary with cache and timing metrics goes to stderr.
/// Exits non-zero when any input failed; `130` when interrupted by
/// SIGINT/SIGTERM (in-flight images finish, the partial report carries
/// `"interrupted": true`, and stale cache temp files are swept).
fn batch_run(args: &[String]) -> Result<ExitCode, String> {
    let mut config = BatchConfig {
        shutdown: ShutdownFlag::install_signal_handler(),
        ..BatchConfig::default()
    };
    let mut cache_entries = None;
    let mut cache_bytes = None;
    let mut operands = Vec::new();
    let mut report_path = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--jobs" => config.jobs = take_jobs(&mut iter)?,
            "--cache-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--cache-dir requires a path".to_owned())?;
                config.cache_dir = Some(dir.into());
            }
            "--cache-entries" => cache_entries = Some(take_count(&mut iter, "--cache-entries")?),
            "--cache-bytes" => cache_bytes = Some(take_count(&mut iter, "--cache-bytes")? as u64),
            "--trace-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--trace-dir requires a path".to_owned())?;
                config.trace_dir = Some(dir.into());
            }
            "--method" => {
                let m = iter
                    .next()
                    .ok_or_else(|| "--method requires a value".to_owned())?;
                config.method = Method::parse(m).ok_or_else(|| format!("unknown method `{m}`"))?;
            }
            "--validate" => config.run.validate = ValidateLevel::Final,
            "--report" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--report requires a path".to_owned())?;
                report_path = Some(p.clone());
            }
            other if !other.starts_with("--") => operands.push(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if operands.is_empty() {
        return Err("missing inputs (files or directories)".to_owned());
    }
    if cache_entries.is_some() || cache_bytes.is_some() {
        config.cache_budget = CacheBudget::bounded(
            cache_entries.unwrap_or(usize::MAX),
            cache_bytes.unwrap_or(u64::MAX),
        );
    }
    let inputs = expand_inputs(&operands)?;
    if inputs.is_empty() {
        return Err("inputs expanded to no files".to_owned());
    }
    let corpus = run_batch(&inputs, &config)?;
    let document = corpus.to_json(true).to_string();
    match &report_path {
        Some(path) => std::fs::write(path, &document).map_err(|e| format!("{path}: {e}"))?,
        None => println!("{document}"),
    }
    let timings = corpus.total_timings();
    eprintln!(
        "batch: {} image(s) on {} worker(s), {} error(s), {} words saved",
        corpus.images.len(),
        corpus.jobs,
        corpus.error_count(),
        corpus.total_saved_words()
    );
    eprintln!(
        "cache: reports {}/{} hit, dfgs {}/{} hit",
        corpus.report_cache_hits,
        corpus.report_cache_hits + corpus.report_cache_misses,
        corpus.dfg_cache_hits,
        corpus.dfg_cache_hits + corpus.dfg_cache_misses
    );
    eprintln!(
        "stages (ms): decode {} dfg {} mining {} mis {} extract {} validate {} | wall {}",
        timings.decode_ns / 1_000_000,
        timings.dfg_build_ns / 1_000_000,
        timings.mining_ns / 1_000_000,
        timings.mis_ns / 1_000_000,
        timings.extraction_ns / 1_000_000,
        timings.validation_ns / 1_000_000,
        corpus.wall_ns / 1_000_000
    );
    for entry in corpus.images.iter().filter(|e| e.outcome.is_err()) {
        if let Err(message) = &entry.outcome {
            eprintln!("error: {}: {message}", entry.name);
        }
    }
    if corpus.interrupted {
        eprintln!("batch: interrupted — partial report written");
        Ok(ExitCode::from(130))
    } else if corpus.error_count() > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Parses a numeric flag value.
fn take_count<'a>(
    iter: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<usize, String> {
    iter.next()
        .ok_or_else(|| format!("{flag} requires a number"))?
        .parse()
        .map_err(|_| format!("{flag} requires a number"))
}

/// `gpa serve`: the resident optimization daemon.
///
/// Binds `--listen` (use port `0` for an ephemeral port — the chosen
/// address is printed as `gpa-serve listening on <addr>`), installs the
/// SIGINT/SIGTERM handler, and serves until a signal or a Shutdown
/// frame drains it. The end-of-life summary (counters, cache hit rates,
/// queue/run latency percentiles) goes to stderr.
fn serve(args: &[String]) -> Result<ExitCode, String> {
    use gpa_serve::{ServeConfig, Server};

    let mut config = ServeConfig {
        shutdown: ShutdownFlag::install_signal_handler(),
        ..ServeConfig::default()
    };
    let mut listen = None;
    let mut cache_entries = None;
    let mut cache_bytes = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--listen" => {
                let addr = iter
                    .next()
                    .ok_or_else(|| "--listen requires an address".to_owned())?;
                listen = Some(addr.clone());
            }
            "--workers" => config.workers = take_count(&mut iter, "--workers")?,
            "--queue-depth" => {
                config.queue_depth = take_count(&mut iter, "--queue-depth")?;
                if config.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".to_owned());
                }
            }
            "--method" => {
                let m = iter
                    .next()
                    .ok_or_else(|| "--method requires a value".to_owned())?;
                config.method = Method::parse(m).ok_or_else(|| format!("unknown method `{m}`"))?;
            }
            "--validate" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--validate requires a value".to_owned())?;
                config.run.validate = match v.as_str() {
                    "off" => ValidateLevel::Off,
                    "final" => ValidateLevel::Final,
                    "every-round" => ValidateLevel::EveryRound,
                    other => return Err(format!("unknown validate level `{other}`")),
                };
            }
            "--cache-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--cache-dir requires a path".to_owned())?;
                config.cache_dir = Some(dir.into());
            }
            "--cache-entries" => cache_entries = Some(take_count(&mut iter, "--cache-entries")?),
            "--cache-bytes" => cache_bytes = Some(take_count(&mut iter, "--cache-bytes")? as u64),
            "--trace" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--trace requires a path".to_owned())?;
                config.trace_file = Some(p.into());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let listen = listen.ok_or_else(|| "missing --listen <addr>".to_owned())?;
    // The serve default stays bounded; flags tighten or widen one axis.
    if let Some(entries) = cache_entries {
        config.cache_budget.max_entries = entries;
    }
    if let Some(bytes) = cache_bytes {
        config.cache_budget.max_bytes = bytes;
    }
    let shutdown = config.shutdown.clone();
    let server = Server::start(listen.as_str(), config).map_err(|e| format!("{listen}: {e}"))?;
    println!("gpa-serve listening on {}", server.local_addr());
    // Scripts parse that line to learn the ephemeral port; make sure it
    // is visible before the first request arrives.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    while !shutdown.is_raised() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("gpa-serve: draining");
    let summary = server.join();
    let c = |name: &str| summary.counters.get(name);
    eprintln!(
        "serve: {} accepted = {} completed + {} shed + {} deadline-exceeded + {} in-flight-at-drain",
        c("serve.accepted"),
        c("serve.completed"),
        c("serve.shed"),
        c("serve.deadline_exceeded"),
        c("serve.in_flight_at_drain")
    );
    eprintln!(
        "cache: reports {}/{} hit ({} evicted), dfgs {}/{} hit ({} evicted)",
        summary.report_cache.0,
        summary.report_cache.0 + summary.report_cache.1,
        summary.report_cache.2,
        summary.dfg_cache.0,
        summary.dfg_cache.0 + summary.dfg_cache.1,
        summary.dfg_cache.2
    );
    eprintln!(
        "latency (us): queue p50 {} p90 {} p99 {} | run p50 {} p90 {} p99 {}",
        summary.queue_hist.percentile(50) / 1_000,
        summary.queue_hist.percentile(90) / 1_000,
        summary.queue_hist.percentile(99) / 1_000,
        summary.run_hist.percentile(50) / 1_000,
        summary.run_hist.percentile(90) / 1_000,
        summary.run_hist.percentile(99) / 1_000
    );
    Ok(ExitCode::SUCCESS)
}

/// `gpa submit`: one-shot client for a running `gpa serve` daemon.
///
/// Sends the image with `--knobs` (a JSON object, default `{}`) and
/// prints the `gpa-serve/1` response document. With `--report-only` the
/// embedded `"report"` object is printed instead — byte-identical to
/// `gpa optimize --report-json` for the same image and knobs. Exits `0`
/// only for an `ok` response.
fn submit(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut knobs = "{}".to_owned();
    let mut report_only = false;
    let mut input = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--addr" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--addr requires an address".to_owned())?;
                addr = Some(value.clone());
            }
            "--knobs" => {
                knobs = iter
                    .next()
                    .ok_or_else(|| "--knobs requires a JSON object".to_owned())?
                    .clone();
            }
            "--report-only" => report_only = true,
            other if !other.starts_with("--") => input = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let addr = addr.ok_or_else(|| "missing --addr <addr>".to_owned())?;
    let input = input.ok_or_else(|| "missing image path".to_owned())?;
    let image = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;
    let mut stream =
        std::net::TcpStream::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
    let doc = gpa_serve::submit(&mut stream, &knobs, &image)
        .map_err(|e| format!("{addr}: {}", e.code()))?;
    let status = Json::parse(&doc)
        .ok()
        .and_then(|d| d.get("status").and_then(Json::as_str).map(str::to_owned))
        .ok_or_else(|| format!("{addr}: malformed response"))?;
    if report_only {
        // Exact-byte extraction: the deterministic section is
        // `{"schema":…,"status":"ok","report":<REPORT>`; re-serializing
        // through a JSON parser could not promise byte identity.
        let section = doc.split(",\"metrics\":").next().unwrap_or(&doc);
        let prefix = "{\"schema\":\"gpa-serve/1\",\"status\":\"ok\",\"report\":";
        match section.strip_prefix(prefix) {
            Some(report) if status == "ok" => println!("{report}"),
            _ => {
                eprintln!("gpa: submit: status {status}, no report");
                return Ok(ExitCode::FAILURE);
            }
        }
    } else {
        println!("{doc}");
    }
    if status == "ok" {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("gpa: submit: status {status}");
        Ok(ExitCode::FAILURE)
    }
}

/// `gpa perf`: the benchmark harness over the bundled kernel corpus.
///
/// Writes the `gpa-bench/1` document to `-o` (default `BENCH_gpa.json`)
/// and the markdown tables to stdout. `--baseline <file>` turns the run
/// into a gate: exit `2` on a hard compression regression, `3` when only
/// latency drifted beyond `--tolerance-pct` (default 25). `--compare
/// <file>` skips the run and gates an existing document instead.
fn perf(args: &[String]) -> Result<ExitCode, String> {
    let mut config = gpa_metrics::PerfConfig::default();
    let mut output = "BENCH_gpa.json".to_owned();
    let mut baseline_path = None;
    let mut compare_path = None;
    let mut tolerance_pct: u64 = 25;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "-o" => {
                output = iter
                    .next()
                    .ok_or_else(|| "-o requires a path".to_owned())?
                    .clone();
            }
            "--methods" => {
                let list = iter
                    .next()
                    .ok_or_else(|| "--methods requires a list".to_owned())?;
                config.methods = list
                    .split(',')
                    .map(|m| Method::parse(m).ok_or_else(|| format!("unknown method `{m}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--kernels" => {
                let list = iter
                    .next()
                    .ok_or_else(|| "--kernels requires a list".to_owned())?;
                config.kernels = list.split(',').map(str::to_owned).collect();
            }
            "--jobs" => config.jobs = take_jobs(&mut iter)?,
            "--no-sched" => config.schedule = false,
            "--validate" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--validate requires a value".to_owned())?;
                config.validate = match v.as_str() {
                    "off" => ValidateLevel::Off,
                    "final" => ValidateLevel::Final,
                    "every-round" => ValidateLevel::EveryRound,
                    other => return Err(format!("unknown validate level `{other}`")),
                };
            }
            "--alias" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--alias requires a value".to_owned())?;
                config.alias =
                    AliasLevel::parse(v).ok_or_else(|| format!("unknown alias level `{v}`"))?;
            }
            "--profile" => config.profile = true,
            "--baseline" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--baseline requires a path".to_owned())?;
                baseline_path = Some(p.clone());
            }
            "--tolerance-pct" => {
                tolerance_pct = iter
                    .next()
                    .ok_or_else(|| "--tolerance-pct requires a number".to_owned())?
                    .parse()
                    .map_err(|_| "--tolerance-pct requires a number".to_owned())?;
            }
            "--compare" => {
                let p = iter
                    .next()
                    .ok_or_else(|| "--compare requires a path".to_owned())?;
                compare_path = Some(p.clone());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let load_doc = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = match &compare_path {
        // Gate an existing document; no benchmark run.
        Some(path) => load_doc(path)?,
        None => {
            let report = gpa_metrics::run_perf(&config)?;
            let doc = report.to_json(true);
            std::fs::write(&output, doc.to_string()).map_err(|e| format!("{output}: {e}"))?;
            print!("{}", report.markdown());
            if let Some(profile) = &report.profile {
                println!("\n## Span profile\n");
                print!("{}", profile.render());
            }
            eprintln!("wrote {output}");
            doc
        }
    };
    let Some(baseline_path) = baseline_path else {
        if compare_path.is_some() {
            return Err("--compare requires --baseline".to_owned());
        }
        return Ok(ExitCode::SUCCESS);
    };
    let baseline = load_doc(&baseline_path)?;
    let cmp = gpa_metrics::compare(&current, &baseline, tolerance_pct)?;
    eprint!("{}", cmp.render());
    if cmp.is_regression() {
        eprintln!("perf: compression regression vs {baseline_path}");
        Ok(ExitCode::from(2))
    } else if cmp.has_soft() {
        eprintln!("perf: latency drift beyond {tolerance_pct}% vs {baseline_path}");
        Ok(ExitCode::from(3))
    } else {
        eprintln!("perf: no regression vs {baseline_path}");
        Ok(ExitCode::SUCCESS)
    }
}

/// `gpa trace-profile`: aggregate the span events of one or more
/// `gpa-trace/1` streams into a single flamegraph-style text tree.
fn trace_profile(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("missing trace file(s)".to_owned());
    }
    let paths: Vec<std::path::PathBuf> = args.iter().map(Into::into).collect();
    let tree = gpa_metrics::profile::spans_from_files(&paths)?;
    if tree.is_empty() {
        eprintln!("trace-profile: no span events in {} file(s)", paths.len());
        return Ok(ExitCode::SUCCESS);
    }
    print!("{}", tree.render());
    Ok(ExitCode::SUCCESS)
}

/// One failure class of `gpa trace-check`, each with its own exit code
/// so scripts can tell an unreadable file from a malformed one from a
/// broken invariant.
enum TraceIssue {
    /// The file could not be read (exit 2).
    Io(String),
    /// The stream violates the `gpa-trace/1` schema (exit 3).
    Schema(String),
    /// The trailing counters disagree with the event lines (exit 4).
    Invariant(String),
    /// The serve request-accounting identity is broken (exit 5).
    ServeInvariant(String),
}

impl TraceIssue {
    fn exit_code(&self) -> u8 {
        match self {
            TraceIssue::Io(_) => 2,
            TraceIssue::Schema(_) => 3,
            TraceIssue::Invariant(_) => 4,
            TraceIssue::ServeInvariant(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            TraceIssue::Io(m)
            | TraceIssue::Schema(m)
            | TraceIssue::Invariant(m)
            | TraceIssue::ServeInvariant(m) => m,
        }
    }
}

/// `gpa trace-check`: structural validation of `gpa-trace/1` streams.
///
/// For each file: every line must parse as JSON, the first line must be
/// the schema header, the last the counter summary; every event name's
/// line count must equal its recorded counter; and the counter
/// identities (`visited == expanded + subtree_skipped + stopped_max_nodes`,
/// `canon_checks == canon_cache_hit + canon_cache_miss`, and
/// `absint.mem_pairs_examined == mem_pairs_disjoint + mem_pairs_kept`)
/// must hold. Traces written by `gpa serve` must additionally balance
/// the request-accounting identity `serve.accepted == serve.completed +
/// serve.shed + serve.deadline_exceeded + serve.in_flight_at_drain`
/// (exit `5`). Diagnostics name the first offending line; the exit code
/// is the most severe class seen across all files (see the module docs).
fn trace_check(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("missing trace file(s)".to_owned());
    }
    let mut worst = 0u8;
    for path in args {
        if let Err(issue) = check_one_trace(path) {
            eprintln!("gpa: {}", issue.message());
            worst = worst.max(issue.exit_code());
        }
    }
    Ok(ExitCode::from(worst))
}

fn check_one_trace(path: &str) -> Result<(), TraceIssue> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceIssue::Io(format!("{path}: {e}")))?;
    let mut lines = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let doc = Json::parse(line)
            .map_err(|e| TraceIssue::Schema(format!("{path}:{}: {e}", number + 1)))?;
        lines.push((number + 1, doc));
    }
    let Some(((_, header), rest)) = lines.split_first() else {
        return Err(TraceIssue::Schema(format!("{path}: empty trace")));
    };
    if header.get("schema").and_then(Json::as_str) != Some(TRACE_SCHEMA) {
        return Err(TraceIssue::Schema(format!(
            "{path}:1: missing or unknown schema header"
        )));
    }
    let Some(((summary_line, summary), events)) = rest.split_last() else {
        return Err(TraceIssue::Schema(format!(
            "{path}: missing counter-summary line"
        )));
    };
    if summary.get("ev").and_then(Json::as_str) != Some("counters") {
        return Err(TraceIssue::Schema(format!(
            "{path}:{summary_line}: last line is not the counter summary"
        )));
    }
    let counters = summary.get("counters").ok_or_else(|| {
        TraceIssue::Schema(format!(
            "{path}:{summary_line}: summary has no counters object"
        ))
    })?;
    let mut observed: std::collections::BTreeMap<&str, i64> = std::collections::BTreeMap::new();
    for (number, doc) in events {
        let name = doc.get("ev").and_then(Json::as_str).ok_or_else(|| {
            TraceIssue::Schema(format!("{path}:{number}: event line without \"ev\""))
        })?;
        if doc.get("at_ns").and_then(Json::as_int).is_none() {
            return Err(TraceIssue::Schema(format!(
                "{path}:{number}: event `{name}` without \"at_ns\""
            )));
        }
        *observed.entry(name).or_insert(0) += 1;
    }
    let counter = |name: &str| counters.get(name).and_then(Json::as_int).unwrap_or(0);
    for (name, lines_seen) in &observed {
        let recorded = counter(name);
        if recorded != *lines_seen {
            return Err(TraceIssue::Invariant(format!(
                "{path}:{summary_line}: counter `{name}` records {recorded}, \
                 but {lines_seen} event line(s) are present"
            )));
        }
    }
    let visited = counter("mine.patterns_visited");
    let accounted = counter("mine.expanded")
        + counter("mine.subtree_skipped")
        + counter("mine.stopped_max_nodes");
    if visited != accounted {
        return Err(TraceIssue::Invariant(format!(
            "{path}:{summary_line}: mine.patterns_visited is {visited}, \
             but expanded + subtree_skipped + stopped_max_nodes is {accounted}"
        )));
    }
    let canon_checks = counter("mine.canon_checks");
    let canon_accounted = counter("mine.canon_cache_hit") + counter("mine.canon_cache_miss");
    if canon_checks != canon_accounted {
        return Err(TraceIssue::Invariant(format!(
            "{path}:{summary_line}: mine.canon_checks is {canon_checks}, \
             but canon_cache_hit + canon_cache_miss is {canon_accounted}"
        )));
    }
    let mem_examined = counter("absint.mem_pairs_examined");
    let mem_accounted = counter("absint.mem_pairs_disjoint") + counter("absint.mem_pairs_kept");
    if mem_examined != mem_accounted {
        return Err(TraceIssue::Invariant(format!(
            "{path}:{summary_line}: absint.mem_pairs_examined is {mem_examined}, \
             but mem_pairs_disjoint + mem_pairs_kept is {mem_accounted}"
        )));
    }
    // The serve request-accounting identity. Non-serve traces have no
    // `serve.*` counters at all, so both sides are zero there.
    let serve_accepted = counter("serve.accepted");
    let serve_accounted = counter("serve.completed")
        + counter("serve.shed")
        + counter("serve.deadline_exceeded")
        + counter("serve.in_flight_at_drain");
    if serve_accepted != serve_accounted {
        return Err(TraceIssue::ServeInvariant(format!(
            "{path}:{summary_line}: serve.accepted is {serve_accepted}, \
             but completed + shed + deadline_exceeded + in_flight_at_drain \
             is {serve_accounted}"
        )));
    }
    let counter_total = match counters {
        Json::Obj(pairs) => pairs.len(),
        _ => {
            return Err(TraceIssue::Schema(format!(
                "{path}:{summary_line}: counters is not an object"
            )))
        }
    };
    println!(
        "{path}: ok ({} event line(s), {counter_total} counter(s))",
        events.len()
    );
    Ok(())
}
