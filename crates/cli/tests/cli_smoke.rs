//! End-to-end smoke tests for the `gpa` command-line driver.

use std::process::Command;

fn gpa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpa"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gpa_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn compile_run_optimize_roundtrip() {
    let src = tmp("prog.mc");
    let img = tmp("prog.img");
    let opt = tmp("prog_opt.img");
    std::fs::write(
        &src,
        "int f(int x) { return x * 3 + 1; }\n\
         int main() { putint(f(5) + f(9)); _putc(10); return 0; }",
    )
    .unwrap();

    let out = gpa()
        .args(["compile", src.to_str().unwrap(), "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let run1 = gpa().args(["run", img.to_str().unwrap()]).output().unwrap();
    assert!(run1.status.success());
    assert_eq!(String::from_utf8_lossy(&run1.stdout), "44\n");

    let out = gpa()
        .args([
            "optimize",
            img.to_str().unwrap(),
            "-o",
            opt.to_str().unwrap(),
            "--method",
            "edgar",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let run2 = gpa().args(["run", opt.to_str().unwrap()]).output().unwrap();
    assert_eq!(
        String::from_utf8_lossy(&run1.stdout),
        String::from_utf8_lossy(&run2.stdout)
    );

    for p in [src, img, opt] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn dis_and_stats() {
    let img = tmp("bench.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let dis = gpa().args(["dis", img.to_str().unwrap()]).output().unwrap();
    assert!(dis.status.success());
    let text = String::from_utf8_lossy(&dis.stdout);
    assert!(text.contains("_start:"));
    assert!(text.contains("crc_update:"));
    assert!(text.contains("bl main"));

    let stats = gpa().args(["stats", img.to_str().unwrap()]).output().unwrap();
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("instructions:"));

    let _ = std::fs::remove_file(img);
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = gpa().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_method_rejected() {
    let out = gpa()
        .args(["optimize", "x.img", "-o", "y.img", "--method", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
