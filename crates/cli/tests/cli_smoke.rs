//! End-to-end smoke tests for the `gpa` command-line driver.

use std::process::Command;

fn gpa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpa"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gpa_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn compile_run_optimize_roundtrip() {
    let src = tmp("prog.mc");
    let img = tmp("prog.img");
    let opt = tmp("prog_opt.img");
    std::fs::write(
        &src,
        "int f(int x) { return x * 3 + 1; }\n\
         int main() { putint(f(5) + f(9)); _putc(10); return 0; }",
    )
    .unwrap();

    let out = gpa()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            img.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run1 = gpa().args(["run", img.to_str().unwrap()]).output().unwrap();
    assert!(run1.status.success());
    assert_eq!(String::from_utf8_lossy(&run1.stdout), "44\n");

    let out = gpa()
        .args([
            "optimize",
            img.to_str().unwrap(),
            "-o",
            opt.to_str().unwrap(),
            "--method",
            "edgar",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run2 = gpa().args(["run", opt.to_str().unwrap()]).output().unwrap();
    assert_eq!(
        String::from_utf8_lossy(&run1.stdout),
        String::from_utf8_lossy(&run2.stdout)
    );

    for p in [src, img, opt] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn dis_and_stats() {
    let img = tmp("bench.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let dis = gpa().args(["dis", img.to_str().unwrap()]).output().unwrap();
    assert!(dis.status.success());
    let text = String::from_utf8_lossy(&dis.stdout);
    assert!(text.contains("_start:"));
    assert!(text.contains("crc_update:"));
    assert!(text.contains("bl main"));

    let stats = gpa()
        .args(["stats", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("instructions:"));

    let _ = std::fs::remove_file(img);
}

#[test]
fn stats_json_is_machine_readable() {
    let img = tmp("stats_json.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stats = gpa()
        .args(["stats", img.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let doc = gpa::json::Json::parse(&String::from_utf8_lossy(&stats.stdout))
        .expect("stats --json must emit valid JSON");
    let int = |key: &str| doc.get(key).and_then(gpa::json::Json::as_int);
    assert!(int("instructions").unwrap() > 0);
    assert!(int("functions").unwrap() > 0);
    let hist = doc
        .get("in_degree_hist")
        .and_then(gpa::json::Json::as_arr)
        .expect("histogram array");
    assert_eq!(hist.len(), 5);

    let _ = std::fs::remove_file(img);
}

#[test]
fn batch_cold_then_warm_hits_the_cache() {
    let dir = tmp("batch_corpus");
    let cache = tmp("batch_cache");
    let report_path = tmp("batch_report.json");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, source) in [
        ("a.mc", "int f(int x) { return x * 3 + 1; } int main() { putint(f(2) + f(4)); return 0; }"),
        ("b.mc", "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) s = s + i; putint(s); return 0; }"),
    ] {
        let src = dir.join(name);
        std::fs::write(&src, source).unwrap();
        let img = dir.join(name.replace(".mc", ".img"));
        let out = gpa()
            .args(["compile", src.to_str().unwrap(), "-o", img.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        std::fs::remove_file(src).unwrap();
    }

    let run_batch = || {
        let out = gpa()
            .args([
                "batch",
                dir.to_str().unwrap(),
                "--jobs",
                "2",
                "--cache-dir",
                cache.to_str().unwrap(),
                "--report",
                report_path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        gpa::json::Json::parse(&std::fs::read_to_string(&report_path).unwrap())
            .expect("batch report must be valid JSON")
    };
    let hits = |doc: &gpa::json::Json| {
        doc.get("metrics")
            .and_then(|m| m.get("report_cache"))
            .and_then(|c| c.get("hits"))
            .and_then(gpa::json::Json::as_int)
            .unwrap()
    };
    // Drops the non-deterministic metrics section.
    let deterministic = |doc: &gpa::json::Json| {
        let gpa::json::Json::Obj(pairs) = doc else {
            panic!("object")
        };
        gpa::json::Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "metrics")
                .cloned()
                .collect(),
        )
        .to_string()
    };

    let cold = run_batch();
    assert_eq!(hits(&cold), 0, "cold run must not hit");
    assert_eq!(
        cold.get("errors").and_then(gpa::json::Json::as_int),
        Some(0)
    );
    let warm = run_batch();
    assert!(hits(&warm) >= 1, "warm run must hit the report cache");
    assert_eq!(deterministic(&cold), deterministic(&warm));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&report_path);
}

#[test]
fn optimize_trace_writes_a_checkable_stream_and_changes_nothing() {
    let img = tmp("trace.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let opt_plain = tmp("trace_plain.img");
    let opt_traced = tmp("trace_traced.img");
    let trace = tmp("trace.jsonl");
    let optimize = |out_img: &std::path::Path, trace: Option<&std::path::Path>| {
        let mut cmd = gpa();
        cmd.args([
            "optimize",
            img.to_str().unwrap(),
            "-o",
            out_img.to_str().unwrap(),
            "--validate",
            "off",
        ]);
        if let Some(t) = trace {
            cmd.args(["--trace", t.to_str().unwrap()]);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let plain = optimize(&opt_plain, None);
    let traced = optimize(&opt_traced, Some(&trace));
    // Tracing must not change the report line or the produced image.
    assert_eq!(plain.lines().next(), traced.lines().next());
    assert_eq!(
        std::fs::read(&opt_plain).unwrap(),
        std::fs::read(&opt_traced).unwrap()
    );

    // The stream passes the structural validator.
    let check = gpa()
        .args(["trace-check", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(String::from_utf8_lossy(&check.stdout).contains("ok"));

    // A tampered counter summary must be rejected.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("\"mine.patterns_visited\":"));
    let tampered_path = tmp("trace_tampered.jsonl");
    let tampered = text.replacen(
        "\"mine.patterns_visited\":",
        "\"mine.patterns_visited\":9",
        1,
    );
    std::fs::write(&tampered_path, tampered).unwrap();
    let check = gpa()
        .args(["trace-check", tampered_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        !check.status.success(),
        "tampered trace must fail the check"
    );

    for p in [img, opt_plain, opt_traced, trace, tampered_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_trace_dir_writes_per_image_streams() {
    let img = tmp("batch_trace.img");
    let out = gpa()
        .args(["bench", "qsort", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_dir = tmp("batch_traces");
    let _ = std::fs::remove_dir_all(&trace_dir);
    let report_path = tmp("batch_trace_report.json");
    let out = gpa()
        .args([
            "batch",
            img.to_str().unwrap(),
            "--trace-dir",
            trace_dir.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let traces: Vec<_> = std::fs::read_dir(&trace_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert_eq!(traces.len(), 1, "one trace per input");
    let check = gpa()
        .args(["trace-check", traces[0].to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    // Aggregated counters surface in the corpus metrics.
    let doc = gpa::json::Json::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    let visited = doc
        .get("metrics")
        .and_then(|m| m.get("trace"))
        .and_then(|t| t.get("mine.patterns_visited"))
        .and_then(gpa::json::Json::as_int)
        .unwrap();
    assert!(visited > 0);

    let _ = std::fs::remove_file(&img);
    let _ = std::fs::remove_file(&report_path);
    let _ = std::fs::remove_dir_all(&trace_dir);
}

#[test]
fn lint_accepts_clean_image_and_rejects_corruption() {
    let img = tmp("lint.img");
    let bad = tmp("lint_bad.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let lint = gpa()
        .args(["lint", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        lint.status.success(),
        "clean image should lint clean: {}",
        String::from_utf8_lossy(&lint.stderr)
    );
    assert!(String::from_utf8_lossy(&lint.stdout).contains("clean"));

    // The container header is 28 bytes (magic + six u32 fields), so byte 28
    // is the first code word. Overwrite it with a branch far outside the
    // code section.
    let mut bytes = std::fs::read(&img).unwrap();
    bytes[28..32].copy_from_slice(&0xEA80_0000u32.to_le_bytes());
    std::fs::write(&bad, bytes).unwrap();

    let lint = gpa()
        .args(["lint", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!lint.status.success(), "corrupted image must fail the lint");
    let stderr = String::from_utf8_lossy(&lint.stderr);
    assert!(
        stderr.contains("V0") || stderr.contains("V1"),
        "no diagnostic in: {stderr}"
    );

    for p in [img, bad] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn lint_json_round_trips() {
    let img = tmp("lint_json.img");
    let out = gpa()
        .args(["bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let lint = gpa()
        .args(["lint", img.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(
        lint.status.success(),
        "clean image must exit zero: {}",
        String::from_utf8_lossy(&lint.stderr)
    );
    let doc = gpa::json::Json::parse(&String::from_utf8_lossy(&lint.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(gpa::json::Json::as_str),
        Some("gpa-lint/1")
    );
    assert_eq!(
        doc.get("errors").and_then(gpa::json::Json::as_int),
        Some(0),
        "clean image must report zero errors"
    );
    let warnings = doc
        .get("warnings")
        .and_then(gpa::json::Json::as_int)
        .unwrap();
    let findings = match doc.get("findings") {
        Some(gpa::json::Json::Arr(a)) => a,
        other => panic!("findings must be an array, got {other:?}"),
    };
    assert_eq!(
        findings.len() as i64,
        warnings,
        "errors + warnings == findings"
    );
    for f in findings {
        let code = f.get("code").and_then(gpa::json::Json::as_str).unwrap();
        assert!(code.starts_with('V'), "diagnostic code {code:?}");
        assert!(f
            .get("severity")
            .and_then(gpa::json::Json::as_str)
            .is_some());
        assert!(f.get("message").and_then(gpa::json::Json::as_str).is_some());
    }

    let _ = std::fs::remove_file(&img);
}

#[test]
fn lint_rejects_unreadable_container() {
    let bad = tmp("not_an_image.img");
    std::fs::write(&bad, b"not a GPA image at all").unwrap();
    let out = gpa()
        .args(["lint", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(bad);
}

#[test]
fn build_bench_alias_matches_bench() {
    let via_alias = tmp("alias_a.img");
    let via_legacy = tmp("alias_b.img");
    for (cmd, img) in [("build-bench", &via_alias), ("bench", &via_legacy)] {
        let out = gpa()
            .args([cmd, "crc", "-o", img.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{cmd}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&via_alias).unwrap(),
        std::fs::read(&via_legacy).unwrap(),
        "both spellings must build the same image"
    );
    for p in [via_alias, via_legacy] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn stats_json_round_trips_with_stable_key_order() {
    let img = tmp("stats_rt.img");
    let out = gpa()
        .args(["build-bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = gpa()
        .args(["stats", img.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    let doc = gpa::json::Json::parse(&text).expect("valid JSON");
    // parse ∘ to_string is the identity, so the document survives any
    // number of round trips byte-for-byte.
    let reserialized = doc.to_string();
    assert_eq!(
        gpa::json::Json::parse(&reserialized).unwrap().to_string(),
        reserialized
    );
    // Insertion-ordered objects: the key order is part of the contract.
    let keys_in_order = [
        "functions",
        "instructions",
        "regions",
        "literal_pool_words",
        "high_degree_nodes",
        "in_degree_hist",
        "out_degree_hist",
    ];
    let mut last = 0;
    for key in keys_in_order {
        let pos = reserialized
            .find(&format!("\"{key}\":"))
            .unwrap_or_else(|| panic!("missing key `{key}`"));
        assert!(pos > last || last == 0, "key `{key}` out of order");
        last = pos;
    }
    // Both histograms carry the five degree buckets (0, 1, 2, 3, ≥4) in
    // degree order.
    for key in ["in_degree_hist", "out_degree_hist"] {
        let hist = doc.get(key).and_then(gpa::json::Json::as_arr).unwrap();
        assert_eq!(hist.len(), 5, "{key} must have 5 buckets");
    }
    let _ = std::fs::remove_file(img);
}

/// Strips everything from the `"measured"` section on: the deterministic
/// prefix of a `gpa-bench/1` document.
fn deterministic_prefix(text: &str) -> &str {
    text.split(",\"measured\":").next().unwrap()
}

#[test]
fn perf_writes_bench_document_deterministically() {
    let out_a = tmp("perf_a.json");
    let out_b = tmp("perf_b.json");
    let run = |jobs: &str, path: &std::path::Path| {
        let out = gpa()
            .args([
                "perf",
                "--kernels",
                "crc",
                "--methods",
                "sfx",
                "--jobs",
                jobs,
                "--validate",
                "off",
                "-o",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let markdown = run("1", &out_a);
    run("4", &out_b);
    assert!(markdown.contains("| crc |"), "{markdown}");
    assert!(markdown.contains("## Latency (measured)"), "{markdown}");
    let a = std::fs::read_to_string(&out_a).unwrap();
    let b = std::fs::read_to_string(&out_b).unwrap();
    let doc = gpa::json::Json::parse(&a).expect("valid bench JSON");
    assert_eq!(
        doc.get("schema").and_then(gpa::json::Json::as_str),
        Some("gpa-bench/1")
    );
    assert!(doc.get("measured").is_some());
    // The deterministic section must not depend on --jobs.
    assert_eq!(deterministic_prefix(&a), deterministic_prefix(&b));
    for p in [out_a, out_b] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn perf_baseline_gate_flags_injected_regression() {
    let current = tmp("perf_cur.json");
    let out = gpa()
        .args([
            "perf",
            "--kernels",
            "crc",
            "--methods",
            "sfx",
            "--validate",
            "off",
            "-o",
            current.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Against itself: clean gate, exit 0.
    let out = gpa()
        .args([
            "perf",
            "--compare",
            current.to_str().unwrap(),
            "--baseline",
            current.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // Inflate every saved_words in a copy: the baseline now claims more
    // savings than the current run — a hard compression regression.
    let text = std::fs::read_to_string(&current).unwrap();
    let mut doc = gpa::json::Json::parse(&text).unwrap();
    fn inflate(doc: &mut gpa::json::Json) {
        match doc {
            gpa::json::Json::Obj(pairs) => {
                for (key, value) in pairs.iter_mut() {
                    if key == "saved_words" {
                        if let gpa::json::Json::Int(v) = value {
                            *v += 5;
                        }
                    } else {
                        inflate(value);
                    }
                }
            }
            gpa::json::Json::Arr(items) => items.iter_mut().for_each(inflate),
            _ => {}
        }
    }
    inflate(&mut doc);
    let baseline = tmp("perf_base.json");
    std::fs::write(&baseline, doc.to_string()).unwrap();
    let out = gpa()
        .args([
            "perf",
            "--compare",
            current.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "hard regression must exit 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("saved_words regressed"));
    for p in [current, baseline] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn trace_check_distinguishes_failure_classes() {
    // I/O error: exit 2.
    let out = gpa()
        .args(["trace-check", "/definitely/not/here.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Schema violation: exit 3, diagnostic names the line.
    let bad = tmp("bad_schema.jsonl");
    std::fs::write(
        &bad,
        "{\"schema\":\"gpa-trace/1\",\"ev\":\"trace_begin\"}\nnot json\n",
    )
    .unwrap();
    let out = gpa()
        .args(["trace-check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains(":2:"),
        "diagnostic must name line 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Counter-invariant mismatch: exit 4. A real stream with one counter
    // total tampered still parses and keeps its header/summary shape.
    let img = tmp("tc_codes.img");
    let opt = tmp("tc_codes_opt.img");
    let trace = tmp("tc_codes.jsonl");
    let out = gpa()
        .args(["build-bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = gpa()
        .args([
            "optimize",
            img.to_str().unwrap(),
            "-o",
            opt.to_str().unwrap(),
            "--validate",
            "off",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&trace).unwrap();
    let tampered_path = tmp("tc_codes_tampered.jsonl");
    std::fs::write(
        &tampered_path,
        text.replacen(
            "\"mine.patterns_visited\":",
            "\"mine.patterns_visited\":9",
            1,
        ),
    )
    .unwrap();
    let out = gpa()
        .args(["trace-check", tampered_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The canonicality-cache identity (canon_checks == hit + miss) is
    // enforced the same way.
    assert!(
        text.contains("\"mine.canon_checks\":"),
        "optimize traces must carry the canonicality-cache counters"
    );
    let canon_tampered_path = tmp("tc_codes_canon_tampered.jsonl");
    std::fs::write(
        &canon_tampered_path,
        text.replacen("\"mine.canon_checks\":", "\"mine.canon_checks\":9", 1),
    )
    .unwrap();
    let out = gpa()
        .args(["trace-check", canon_tampered_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("canon_cache_hit"),
        "diagnostic must name the canonicality identity: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for p in [bad, img, opt, trace, tampered_path, canon_tampered_path] {
        let _ = std::fs::remove_file(p);
    }
}

/// The serve request-accounting identity gets its own exit code (5) so
/// deploy scripts can tell "the daemon lost requests" from an ordinary
/// counter mismatch.
#[test]
fn trace_check_flags_broken_serve_identity_with_exit_5() {
    let header = "{\"schema\":\"gpa-trace/1\",\"ev\":\"trace_begin\"}\n";
    // Balanced: 5 accepted = 3 completed + 1 shed + 1 deadline-exceeded.
    let balanced = tmp("serve_balanced.jsonl");
    std::fs::write(
        &balanced,
        format!(
            "{header}{{\"ev\":\"counters\",\"counters\":{{\
             \"serve.accepted\":5,\"serve.completed\":3,\"serve.shed\":1,\
             \"serve.deadline_exceeded\":1,\"serve.in_flight_at_drain\":0}}}}\n"
        ),
    )
    .unwrap();
    let out = gpa()
        .args(["trace-check", balanced.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // One request unaccounted for: exit 5, diagnostic names the summary
    // line and the identity.
    let broken = tmp("serve_broken.jsonl");
    std::fs::write(
        &broken,
        format!(
            "{header}{{\"ev\":\"counters\",\"counters\":{{\
             \"serve.accepted\":5,\"serve.completed\":3,\"serve.shed\":1,\
             \"serve.deadline_exceeded\":0,\"serve.in_flight_at_drain\":0}}}}\n"
        ),
    )
    .unwrap();
    let out = gpa()
        .args(["trace-check", broken.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(":2:") && stderr.contains("serve.accepted is 5"),
        "diagnostic must name the summary line and the identity: {stderr}"
    );
    for p in [balanced, broken] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn trace_profile_renders_span_hierarchy() {
    let img = tmp("tp.img");
    let opt = tmp("tp_opt.img");
    let trace = tmp("tp.jsonl");
    let out = gpa()
        .args(["build-bench", "crc", "-o", img.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = gpa()
        .args([
            "optimize",
            img.to_str().unwrap(),
            "-o",
            opt.to_str().unwrap(),
            "--validate",
            "off",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = gpa()
        .args(["trace-profile", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimize"), "{text}");
    assert!(text.contains("round"), "{text}");
    assert!(text.contains("detect"), "{text}");
    // The tree indents children under their parent: "round" sits two
    // spaces deeper than "optimize" in the span column.
    let span_col = |name: &str| {
        text.lines()
            .find(|l| l.trim_end().ends_with(name))
            .unwrap_or_else(|| panic!("no `{name}` row"))
            .find(name)
            .unwrap()
    };
    assert_eq!(span_col("optimize") + 2, span_col("round"), "{text}");
    for p in [img, opt, trace] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = gpa().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_method_rejected() {
    let out = gpa()
        .args(["optimize", "x.img", "-o", "y.img", "--method", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
