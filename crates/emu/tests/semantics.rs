//! Extended architectural-semantics tests: carry/overflow chains,
//! every condition code, all ldm/stm addressing modes, and shifter
//! carry-out behaviour.

use gpa_arm::parse::parse_listing;
use gpa_emu::{Machine, Outcome};
use gpa_image::Image;

fn run(asm: &str) -> Outcome {
    let mut image = Image::new(0x8000, 0x2_0000);
    for insn in parse_listing(asm).expect("listing parses") {
        image.push_code_word(insn.encode().expect("listing encodes"));
    }
    Machine::new(&image).run(1_000_000).expect("program runs")
}

#[test]
fn sixty_four_bit_addition_via_adc() {
    // 0xffffffff + 1 carries into the high word: (0x1, 0x0) pair.
    let out = run("mvn r0, #0\n\
         mov r1, #0\n\
         mov r2, #1\n\
         mov r3, #0\n\
         adds r0, r0, r2\n\
         adc r1, r1, r3\n\
         mov r0, r1\n\
         swi #0");
    assert_eq!(out.exit_code, 1);
}

#[test]
fn sixty_four_bit_subtraction_via_sbc() {
    // (1:0) - (0:1) = (0:0xffffffff); return high word.
    let out = run("mov r0, #0\n\
         mov r1, #1\n\
         mov r2, #1\n\
         mov r3, #0\n\
         subs r0, r0, r2\n\
         sbc r1, r1, r3\n\
         mov r0, r1\n\
         swi #0");
    assert_eq!(out.exit_code, 0);
}

#[test]
fn overflow_flag_and_signed_conditions() {
    // 0x7fffffff + 1 overflows: V set, result negative.
    let out = run("mov r1, #0x7f000000\n\
         orr r1, r1, #0x00ff0000\n\
         orr r1, r1, #0x0000ff00\n\
         orr r1, r1, #0x000000ff\n\
         adds r1, r1, #1\n\
         mov r0, #0\n\
         addvs r0, r0, #1\n\
         addmi r0, r0, #2\n\
         addlt r0, r0, #4\n\
         swi #0");
    // V=1 (+1), N=1 (+2), N!=V is false since both set -> lt not taken.
    assert_eq!(out.exit_code, 3);
}

#[test]
fn every_unsigned_condition() {
    // 5 vs 3: cs (hs) true, hi true, cc false, ls false.
    let out = run("mov r1, #5\n\
         cmp r1, #3\n\
         mov r0, #0\n\
         addcs r0, r0, #1\n\
         addhi r0, r0, #2\n\
         addcc r0, r0, #4\n\
         addls r0, r0, #8\n\
         addne r0, r0, #16\n\
         addeq r0, r0, #32\n\
         addge r0, r0, #64\n\
         addgt r0, r0, #128\n\
         swi #0");
    assert_eq!(out.exit_code, 1 + 2 + 16 + 64 + 128);
}

#[test]
fn block_transfer_modes_round_trip() {
    // Store three registers with each stm mode, reload with the matching
    // ldm mode, and verify values survive.
    for (stm, ldm) in [
        ("stmia", "ldmia"),
        ("stmib", "ldmib"),
        ("stmda", "ldmda"),
        ("stmdb", "ldmdb"),
    ] {
        let asm = format!(
            "mov r1, #4096\n\
             mov r4, #7\n\
             mov r5, #11\n\
             mov r6, #13\n\
             {stm} r1, {{r4, r5, r6}}\n\
             mov r4, #0\n\
             mov r5, #0\n\
             mov r6, #0\n\
             {ldm} r1, {{r4, r5, r6}}\n\
             add r0, r4, r5\n\
             add r0, r0, r6\n\
             swi #0"
        );
        let out = run(&asm);
        assert_eq!(out.exit_code, 31, "{stm}/{ldm}");
    }
}

#[test]
fn writeback_block_transfer_is_stack_discipline() {
    let out = run("mov r4, #21\n\
         mov r5, #21\n\
         push {r4, r5}\n\
         mov r4, #0\n\
         mov r5, #0\n\
         pop {r4, r5}\n\
         add r0, r4, r5\n\
         swi #0");
    assert_eq!(out.exit_code, 42);
}

#[test]
fn logical_shift_carry_out_feeds_flags() {
    // movs r1, r2, lsr #1 with r2 odd sets carry; addcs observes it.
    let out = run("mov r2, #5\n\
         movs r1, r2, lsr #1\n\
         mov r0, #0\n\
         addcs r0, r0, #1\n\
         mov r2, #4\n\
         movs r1, r2, lsr #1\n\
         addcs r0, r0, #2\n\
         swi #0");
    assert_eq!(out.exit_code, 1);
}

#[test]
fn asr_32_smears_sign() {
    let out = run("mvn r2, #0\n\
         mov r1, r2, asr #32\n\
         cmp r1, r2\n\
         moveq r0, #1\n\
         movne r0, #0\n\
         swi #0");
    assert_eq!(out.exit_code, 1);
}

#[test]
fn rsb_and_mla() {
    // rsb: 10 - 3 = 7; mla: 7 * 6 + 8 = 50.
    let out = run("mov r1, #3\n\
         rsb r2, r1, #10\n\
         mov r3, #6\n\
         mov r4, #8\n\
         mla r0, r2, r3, r4\n\
         swi #0");
    assert_eq!(out.exit_code, 50);
}

#[test]
fn conditional_branches_both_ways() {
    // Count down from 3 with bne; then bgt falls through at zero.
    let out = run("mov r1, #3\n\
         mov r0, #0\n\
         add r0, r0, #1\n\
         subs r1, r1, #1\n\
         bne -8\n\
         swi #0");
    assert_eq!(out.exit_code, 3);
}

#[test]
fn byte_stores_do_not_clobber_neighbours() {
    let out = run("mov r1, #4096\n\
         mvn r2, #0\n\
         str r2, [r1]\n\
         mov r3, #0\n\
         strb r3, [r1, #1]\n\
         ldr r0, [r1]\n\
         and r0, r0, #0x0000ff00\n\
         swi #0");
    assert_eq!(out.exit_code, 0);
}
