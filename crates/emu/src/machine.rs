//! The interpreter core.

use std::fmt;

use gpa_arm::insn::{
    AddressMode, BlockMode, DpOp, Instruction, MemOffset, MemOp, Operand2, ShiftKind,
};
use gpa_arm::{decode, Cond, Reg};
use gpa_image::Image;

use crate::memory::Memory;

/// Initial stack pointer (grows downward).
const STACK_TOP: u32 = 0x8000_0000;

/// Error conditions that abort emulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the code section or hit data.
    BadPc(u32),
    /// A fetched word did not decode (e.g. execution ran into a literal
    /// pool).
    Undecodable {
        /// Address of the offending word.
        addr: u32,
        /// The word itself.
        word: u32,
    },
    /// The step budget ran out before the program exited.
    StepLimit(u64),
    /// An unknown `swi` service number.
    BadSyscall(u32),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc(pc) => write!(f, "program counter {pc:#010x} outside code section"),
            EmuError::Undecodable { addr, word } => {
                write!(f, "undecodable word {word:#010x} executed at {addr:#010x}")
            }
            EmuError::StepLimit(n) => write!(f, "step limit of {n} instructions exhausted"),
            EmuError::BadSyscall(n) => write!(f, "unknown system call {n}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// The result of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The status passed to the exit system call.
    pub exit_code: u32,
    /// Everything the program wrote via the `putc` service.
    pub output: Vec<u8>,
    /// Number of instructions executed.
    pub steps: u64,
}

impl Outcome {
    /// The output interpreted as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// Condition flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Flags {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

/// An ARM-subset virtual machine loaded with one program image.
pub struct Machine {
    regs: [u32; 16],
    flags: Flags,
    mem: Memory,
    code_base: u32,
    code_end: u32,
    brk: u32,
    input: Vec<u8>,
    input_pos: usize,
    output: Vec<u8>,
    halted: Option<u32>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.regs[15])
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine with `image` loaded, `pc` at the entry point and
    /// the stack pointer at the top of the stack region.
    pub fn new(image: &Image) -> Machine {
        let mut mem = Memory::new();
        for (i, &word) in image.code_words().iter().enumerate() {
            mem.write_word(image.code_base() + 4 * i as u32, word);
        }
        mem.write_bytes(image.data_base(), image.data_bytes());
        let mut regs = [0u32; 16];
        regs[13] = STACK_TOP;
        regs[14] = 0; // Returning to 0 with no caller faults cleanly.
        regs[15] = image.entry();
        Machine {
            regs,
            flags: Flags::default(),
            mem,
            code_base: image.code_base(),
            code_end: image.code_end(),
            brk: (image.data_end() + 7) & !7,
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            halted: None,
        }
    }

    /// Provides bytes for the `getc` system call.
    pub fn set_input(&mut self, input: impl Into<Vec<u8>>) {
        self.input = input.into();
        self.input_pos = 0;
    }

    /// Reads a general-purpose register.
    ///
    /// During execution of an instruction, reading `pc` yields the
    /// architectural value: the executing instruction's address + 8.
    /// (Internally `regs[15]` has already been advanced past the
    /// instruction when operands are read, hence the +4.)
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_pc() {
            self.regs[15].wrapping_add(4)
        } else {
            self.regs[r.number() as usize]
        }
    }

    /// Sets a general-purpose register (writing `pc` branches).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.number() as usize] = value;
    }

    /// The machine's memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the machine's memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Runs until exit or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] when the program misbehaves (bad pc,
    /// undecodable instruction, unknown syscall) or exceeds the step budget.
    pub fn run(&mut self, max_steps: u64) -> Result<Outcome, EmuError> {
        let mut steps = 0u64;
        while self.halted.is_none() {
            if steps >= max_steps {
                return Err(EmuError::StepLimit(max_steps));
            }
            self.step()?;
            steps += 1;
        }
        Ok(Outcome {
            exit_code: self.halted.expect("loop exits only when halted"),
            output: std::mem::take(&mut self.output),
            steps,
        })
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn step(&mut self) -> Result<(), EmuError> {
        let pc = self.regs[15];
        if !pc.is_multiple_of(4) || pc < self.code_base || pc >= self.code_end {
            return Err(EmuError::BadPc(pc));
        }
        let word = self.mem.read_word(pc);
        let insn = decode(word).map_err(|_| EmuError::Undecodable { addr: pc, word })?;
        let next = pc.wrapping_add(4);
        self.regs[15] = next;
        if self.cond_passes(insn.cond()) {
            self.execute(insn)?;
        }
        Ok(())
    }

    fn cond_passes(&self, cond: Cond) -> bool {
        let Flags { n, z, c, v } = self.flags;
        match cond {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
        }
    }

    /// Evaluates a shifter operand, returning (value, carry-out).
    fn shifter(&self, op2: Operand2) -> (u32, bool) {
        match op2 {
            Operand2::Imm(v) => (v, self.flags.c),
            Operand2::Reg(r) => (self.reg(r), self.flags.c),
            Operand2::RegShift(r, kind, amount) => {
                let v = self.reg(r);
                let n = amount as u32;
                match kind {
                    ShiftKind::Lsl => (v << n, v >> (32 - n) & 1 == 1),
                    ShiftKind::Lsr if n == 32 => (0, v >> 31 == 1),
                    ShiftKind::Lsr => (v >> n, v >> (n - 1) & 1 == 1),
                    ShiftKind::Asr if n == 32 => {
                        let sign = (v as i32) >> 31;
                        (sign as u32, sign != 0)
                    }
                    ShiftKind::Asr => (((v as i32) >> n) as u32, (v as i32) >> (n - 1) & 1 == 1),
                    ShiftKind::Ror => (v.rotate_right(n), v >> (n - 1) & 1 == 1),
                }
            }
        }
    }

    fn set_nz(&mut self, value: u32) {
        self.flags.n = value >> 31 == 1;
        self.flags.z = value == 0;
    }

    fn add_with_carry(&mut self, a: u32, b: u32, carry_in: bool, set_flags: bool) -> u32 {
        let wide = a as u64 + b as u64 + carry_in as u64;
        let result = wide as u32;
        if set_flags {
            self.set_nz(result);
            self.flags.c = wide > u32::MAX as u64;
            self.flags.v = ((a ^ result) & (b ^ result)) >> 31 == 1;
        }
        result
    }

    fn execute(&mut self, insn: Instruction) -> Result<(), EmuError> {
        match insn {
            Instruction::DataProc {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                let (shifted, shift_carry) = self.shifter(op2);
                let a = self.reg(rn);
                let s = set_flags || op.is_compare();
                let logical = |m: &mut Machine, value: u32| {
                    if s {
                        m.set_nz(value);
                        m.flags.c = shift_carry;
                    }
                    value
                };
                let result = match op {
                    DpOp::And | DpOp::Tst => logical(self, a & shifted),
                    DpOp::Eor | DpOp::Teq => logical(self, a ^ shifted),
                    DpOp::Orr => logical(self, a | shifted),
                    DpOp::Bic => logical(self, a & !shifted),
                    DpOp::Mov => logical(self, shifted),
                    DpOp::Mvn => logical(self, !shifted),
                    DpOp::Add => self.add_with_carry(a, shifted, false, s),
                    DpOp::Adc => {
                        let c = self.flags.c;
                        self.add_with_carry(a, shifted, c, s)
                    }
                    DpOp::Sub | DpOp::Cmp => self.add_with_carry(a, !shifted, true, s),
                    DpOp::Sbc => {
                        let c = self.flags.c;
                        self.add_with_carry(a, !shifted, c, s)
                    }
                    DpOp::Rsb => self.add_with_carry(shifted, !a, true, s),
                    DpOp::Rsc => {
                        let c = self.flags.c;
                        self.add_with_carry(shifted, !a, c, s)
                    }
                    DpOp::Cmn => self.add_with_carry(a, shifted, false, s),
                };
                if !op.is_compare() {
                    self.set_reg(rd, result);
                }
            }
            Instruction::Mul {
                set_flags,
                rd,
                rm,
                rs,
                ..
            } => {
                let result = self.reg(rm).wrapping_mul(self.reg(rs));
                self.set_reg(rd, result);
                if set_flags {
                    self.set_nz(result);
                }
            }
            Instruction::Mla {
                set_flags,
                rd,
                rm,
                rs,
                rn,
                ..
            } => {
                let result = self
                    .reg(rm)
                    .wrapping_mul(self.reg(rs))
                    .wrapping_add(self.reg(rn));
                self.set_reg(rd, result);
                if set_flags {
                    self.set_nz(result);
                }
            }
            Instruction::Mem {
                op,
                byte,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                let base = self.reg(rn);
                let off = match offset {
                    MemOffset::Imm(v) => v as u32,
                    MemOffset::Reg(rm, false) => self.reg(rm),
                    MemOffset::Reg(rm, true) => self.reg(rm).wrapping_neg(),
                };
                let indexed = base.wrapping_add(off);
                let addr = match mode {
                    AddressMode::Offset | AddressMode::PreIndexed => indexed,
                    AddressMode::PostIndexed => base,
                };
                match op {
                    MemOp::Ldr => {
                        let value = if byte {
                            self.mem.read_byte(addr) as u32
                        } else {
                            self.mem.read_word(addr)
                        };
                        self.set_reg(rd, value);
                    }
                    MemOp::Str => {
                        let value = self.reg(rd);
                        if byte {
                            self.mem.write_byte(addr, value as u8);
                        } else {
                            self.mem.write_word(addr, value);
                        }
                    }
                }
                if mode.writes_back()
                    && !(mode == AddressMode::PreIndexed && rd == rn && op == MemOp::Ldr)
                {
                    self.set_reg(rn, indexed);
                }
                // A load into the base register wins over writeback.
                if mode.writes_back() && rd == rn && op == MemOp::Ldr {
                    // Value already written by the load for pre-index; for
                    // post-index the load used the original base, and the
                    // loaded value also wins.
                    if mode == AddressMode::PostIndexed {
                        let value = if byte {
                            self.mem.read_byte(addr) as u32
                        } else {
                            self.mem.read_word(addr)
                        };
                        self.set_reg(rd, value);
                    }
                }
            }
            Instruction::Block {
                op,
                rn,
                writeback,
                mode,
                regs,
                ..
            } => {
                let count = regs.len();
                let base = self.reg(rn);
                let (start, new_base) = match mode {
                    BlockMode::Ia => (base, base.wrapping_add(4 * count)),
                    BlockMode::Ib => (base.wrapping_add(4), base.wrapping_add(4 * count)),
                    BlockMode::Da => (
                        base.wrapping_sub(4 * count).wrapping_add(4),
                        base.wrapping_sub(4 * count),
                    ),
                    BlockMode::Db => (base.wrapping_sub(4 * count), base.wrapping_sub(4 * count)),
                };
                let mut addr = start;
                let mut loaded_base = None;
                for r in regs.iter() {
                    match op {
                        MemOp::Ldr => {
                            let value = self.mem.read_word(addr);
                            if r == rn {
                                loaded_base = Some(value);
                            }
                            if r.is_pc() {
                                self.regs[15] = value;
                            } else {
                                self.set_reg(r, value);
                            }
                        }
                        MemOp::Str => {
                            let value = self.reg(r);
                            self.mem.write_word(addr, value);
                        }
                    }
                    addr = addr.wrapping_add(4);
                }
                if writeback {
                    self.set_reg(rn, new_base);
                }
                // A loaded value for the base register overrides writeback.
                if let Some(v) = loaded_base {
                    self.set_reg(rn, v);
                }
            }
            Instruction::Branch { link, offset, .. } => {
                // self.regs[15] currently holds pc + 4; architectural pc is
                // insn address + 8 = regs[15] + 4.
                let target = self.regs[15]
                    .wrapping_add(4)
                    .wrapping_add((offset as u32).wrapping_mul(4));
                if link {
                    self.regs[14] = self.regs[15];
                }
                self.regs[15] = target;
            }
            Instruction::Bx { rm, .. } => {
                self.regs[15] = self.reg(rm) & !1;
            }
            Instruction::Swi { imm, .. } => self.syscall(imm)?,
        }
        Ok(())
    }

    fn syscall(&mut self, number: u32) -> Result<(), EmuError> {
        match number {
            0 => self.halted = Some(self.regs[0]),
            1 => self.output.push(self.regs[0] as u8),
            2 => {
                self.regs[0] = match self.input.get(self.input_pos) {
                    Some(&b) => {
                        self.input_pos += 1;
                        b as u32
                    }
                    None => u32::MAX,
                };
            }
            4 => {
                let old = self.brk;
                self.brk = self.brk.wrapping_add(self.regs[0]);
                self.regs[0] = old;
            }
            n => return Err(EmuError::BadSyscall(n)),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;
    use gpa_image::Image;

    /// Assembles a listing into an image at 0x8000 and runs it.
    fn run(asm: &str) -> Outcome {
        run_with_input(asm, b"")
    }

    fn run_with_input(asm: &str, input: &[u8]) -> Outcome {
        let mut image = Image::new(0x8000, 0x2_0000);
        for insn in parse_listing(asm).expect("listing parses") {
            image.push_code_word(insn.encode().expect("listing encodes"));
        }
        let mut m = Machine::new(&image);
        m.set_input(input.to_vec());
        m.run(1_000_000).expect("program runs")
    }

    #[test]
    fn exit_code() {
        let out = run("mov r0, #42\nswi #0");
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn arithmetic_and_flags() {
        // 7 * 6 == 42, tested via mul and conditional moves.
        let out = run("mov r1, #7\n\
             mov r2, #6\n\
             mul r3, r1, r2\n\
             cmp r3, #42\n\
             moveq r0, #1\n\
             movne r0, #2\n\
             swi #0");
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn signed_comparisons() {
        // -1 < 1 signed, but not unsigned.
        let out = run("mvn r1, #0\n\
             cmp r1, #1\n\
             movlt r0, #10\n\
             addcs r0, r0, #1\n\
             swi #0");
        assert_eq!(out.exit_code, 11);
    }

    #[test]
    fn loop_sum() {
        // sum 1..=10 == 55
        let out = run("mov r0, #0\n\
             mov r1, #10\n\
             add r0, r0, r1\n\
             subs r1, r1, #1\n\
             bne -8\n\
             swi #0");
        assert_eq!(out.exit_code, 55);
    }

    #[test]
    fn memory_and_writeback() {
        let out = run("mov r1, #4096\n\
             mov r2, #17\n\
             str r2, [r1], #4\n\
             mov r3, #25\n\
             str r3, [r1]\n\
             sub r1, r1, #4\n\
             ldr r4, [r1], #4\n\
             ldr r5, [r1]\n\
             add r0, r4, r5\n\
             swi #0");
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn byte_memory() {
        let out = run("mov r1, #4096\n\
             mov r2, #0xff\n\
             add r2, r2, #1\n\
             strb r2, [r1]\n\
             ldrb r0, [r1]\n\
             swi #0");
        // 0x100 truncates to 0 as a byte.
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn push_pop_and_calls() {
        // main: bl f; exit(r0). f: returns 7.
        let out = run("bl +12\n\
             swi #0\n\
             mov r0, #99\n\
             push {r4, lr}\n\
             mov r0, #7\n\
             pop {r4, pc}");
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn output_and_input() {
        let out = run_with_input(
            "swi #2\n\
             swi #1\n\
             swi #2\n\
             swi #1\n\
             mov r0, #0\n\
             swi #0",
            b"hi",
        );
        assert_eq!(out.output, b"hi");
    }

    #[test]
    fn sbrk_allocates_monotonically() {
        let out = run("mov r0, #16\n\
             swi #4\n\
             mov r4, r0\n\
             mov r0, #16\n\
             swi #4\n\
             sub r0, r0, r4\n\
             swi #0");
        assert_eq!(out.exit_code, 16);
    }

    #[test]
    fn pc_relative_load_reads_literal_pool() {
        // ldr r0, [pc, #-4] reads the word at this insn + 8 - 4 + ... we
        // instead place a literal after the exit and load it.
        let mut image = Image::new(0x8000, 0x2_0000);
        let insns = parse_listing("ldr r0, [pc, #0]\nswi #0").unwrap();
        for i in insns {
            image.push_code_word(i.encode().unwrap());
        }
        image.push_code_word(1234); // literal at 0x8008 = pc(0x8000)+8+0
        let out = Machine::new(&image).run(100).unwrap();
        assert_eq!(out.exit_code, 1234);
    }

    #[test]
    fn step_limit_and_bad_pc() {
        let mut image = Image::new(0x8000, 0x2_0000);
        // b . — infinite loop
        image.push_code_word(0xeaff_fffe);
        assert_eq!(Machine::new(&image).run(10), Err(EmuError::StepLimit(10)));
        // Run off the end of code.
        let mut image2 = Image::new(0x8000, 0x2_0000);
        image2.push_code_word(0xe3a0_0000); // mov r0, #0
        let err = Machine::new(&image2).run(10).unwrap_err();
        assert_eq!(err, EmuError::BadPc(0x8004));
    }

    #[test]
    fn shifted_operands() {
        let out = run("mov r1, #1\n\
             mov r2, r1, lsl #4\n\
             add r2, r2, r1, lsl #1\n\
             mov r3, r2, lsr #1\n\
             add r0, r2, r3\n\
             swi #0");
        // r2 = 16 + 2 = 18, r3 = 9 → 27
        assert_eq!(out.exit_code, 27);
    }
}
