//! An interpreter for the ARM subset, executing [`gpa_image::Image`]s.
//!
//! The emulator exists to *prove semantic preservation*: every benchmark in
//! the evaluation is executed before and after procedural abstraction and
//! must produce identical output, exit code and final register state. It is
//! also the substrate for property tests that feed randomly generated
//! programs through the optimizer.
//!
//! # System calls
//!
//! `swi #n` with the service number in the instruction's comment field:
//!
//! | n | service | arguments | result |
//! |---|---------|-----------|--------|
//! | 0 | exit    | `r0` = status | — (halts) |
//! | 1 | putc    | `r0` = byte   | — |
//! | 2 | getc    | —             | `r0` = byte or -1 |
//! | 4 | sbrk    | `r0` = bytes  | `r0` = old break |
//!
//! # Examples
//!
//! ```
//! use gpa_emu::Machine;
//! use gpa_image::Image;
//!
//! // mov r0, #42; swi #0  — exit with status 42.
//! let mut image = Image::new(0x8000, 0x2_0000);
//! image.push_code_word("mov r0, #42".parse::<gpa_arm::Instruction>()?.encode()?);
//! image.push_code_word("swi #0".parse::<gpa_arm::Instruction>()?.encode()?);
//!
//! let outcome = Machine::new(&image).run(1_000)?;
//! assert_eq!(outcome.exit_code, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod machine;
mod memory;

pub use machine::{EmuError, Machine, Outcome};
pub use memory::Memory;
