//! Sparse page-based memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 32-bit byte-addressable memory backed by 4 KiB pages.
///
/// Unmapped reads return zero; writes allocate pages on demand, so programs
/// can use the stack and heap without explicit mapping.
///
/// # Examples
///
/// ```
/// use gpa_emu::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_word(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_word(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_byte(0x1000), 0xef); // little-endian
/// assert_eq!(mem.read_word(0x9999_0000), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte; unmapped addresses read as zero.
    pub fn read_byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    pub fn read_word(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_byte(addr),
            self.read_byte(addr.wrapping_add(1)),
            self.read_byte(addr.wrapping_add(2)),
            self.read_byte(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Number of mapped pages (for tests and diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut mem = Memory::new();
        assert_eq!(mem.read_word(0), 0);
        mem.write_word(0xfffc, 0x0102_0304);
        assert_eq!(mem.read_word(0xfffc), 0x0102_0304);
        assert_eq!(mem.read_byte(0xfffc), 0x04);
        assert_eq!(mem.read_byte(0xffff), 0x01);
    }

    #[test]
    fn word_crossing_page_boundary() {
        let mut mem = Memory::new();
        mem.write_word(0x0fff, 0xaabb_ccdd);
        assert_eq!(mem.read_word(0x0fff), 0xaabb_ccdd);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn bulk_writes() {
        let mut mem = Memory::new();
        mem.write_bytes(0x2000, b"hello");
        assert_eq!(mem.read_byte(0x2004), b'o');
    }
}
