//! Log-bucketed (HDR-style) latency histograms.
//!
//! The perf harness wants latency *distributions*, not just totals: a
//! p99 mining time says more about tail behaviour than a corpus-wide
//! sum. [`LogHistogram`] records nanosecond samples into buckets whose
//! width grows geometrically — every power of two is split into
//! [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantization error at `1 / SUB_BUCKETS` (6.25%) while covering the
//! full `u64` range in a few hundred buckets.
//!
//! Everything is integer arithmetic on explicit bucket indices, so two
//! histograms fed the same samples are identical field-for-field on any
//! platform, and percentile readouts are deterministic functions of the
//! recorded multiset.

use std::collections::BTreeMap;

/// Linear sub-buckets per power-of-two octave (16 → ≤ 6.25% relative
/// quantization error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

const SUB_BUCKET_BITS: u32 = 4;

/// A log-bucketed histogram of `u64` nanosecond samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Bucket index of a sample: identity below [`SUB_BUCKETS`], then
/// (octave, sub-bucket) with the top `SUB_BUCKET_BITS + 1` significant
/// bits — contiguous, monotone in the sample value.
fn index_of(value: u64) -> u32 {
    if value < SUB_BUCKETS {
        value as u32
    } else {
        let msb = 63 - value.leading_zeros();
        let sub = (value >> (msb - SUB_BUCKET_BITS)) as u32;
        (msb - SUB_BUCKET_BITS) * SUB_BUCKETS as u32 + sub
    }
}

/// Lowest sample value that maps to bucket `index` (inverse of
/// [`index_of`] on bucket boundaries; saturating above `u64::MAX` for
/// the one-past-the-top bucket).
fn bucket_low(index: u32) -> u64 {
    let sub = SUB_BUCKETS as u32;
    if index < sub {
        u64::from(index)
    } else {
        let octave = index / sub - 1;
        u64::try_from(u128::from(index % sub + sub) << octave).unwrap_or(u64::MAX)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value_ns: u64) {
        self.record_n(value_ns, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value_ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(index_of(value_ns)).or_insert(0) += n;
        if self.count == 0 || value_ns < self.min_ns {
            self.min_ns = value_ns;
        }
        self.max_ns = self.max_ns.max(value_ns);
        self.count += n;
        self.sum_ns = self.sum_ns.saturating_add(value_ns.saturating_mul(n));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The value at or below which `pct` percent of samples fall,
    /// reported as the lower bound of the containing bucket (so the
    /// readout never over-states a latency). 0 for an empty histogram;
    /// `pct` is clamped to 100.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = u64::from(pct.min(100));
        // ceil(count * pct / 100), at least the first sample.
        let rank = (self.count.saturating_mul(pct)).div_ceil(100);
        let rank = rank.clamp(1, self.count);
        let mut seen = 0;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_low(index);
            }
        }
        // Defensive fallthrough (the scan covers every rank when bucket
        // counts sum to `count`): stay on the documented contract and
        // report the top occupied bucket's lower bound, never a raw
        // sample value.
        self.buckets
            .keys()
            .next_back()
            .map_or(0, |&index| bucket_low(index))
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        if self.count == 0 || other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Occupied buckets as `(lower_bound_ns, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (bucket_low(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_bucket_low_is_consistent() {
        let mut prev = 0;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let i = index_of(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
            assert!(bucket_low(i) <= v, "low({i}) > {v}");
            // The next bucket starts strictly above v (the topmost
            // bucket's successor saturates to u64::MAX).
            if v < u64::MAX - 1 {
                assert!(bucket_low(i + 1) > v, "low({}) <= {v}", i + 1);
            }
        }
        // Exact below SUB_BUCKETS.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_low(index_of(v)), v);
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        for v in [100u64, 1_000, 65_537, 1_000_000_000, 123_456_789_012] {
            let low = bucket_low(index_of(v));
            assert!(low <= v);
            // Relative error bounded by 1/SUB_BUCKETS.
            assert!((v - low).saturating_mul(SUB_BUCKETS) <= v, "{v} -> {low}");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_deterministic() {
        let mut h = LogHistogram::new();
        for v in [5u64, 80, 80, 300, 1_000, 40_000, 40_000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min_ns(), 5);
        assert_eq!(h.max_ns(), 2_000_000);
        let (p50, p90, p99) = (h.percentile(50), h.percentile(90), h.percentile(99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max_ns());
        assert!((80..=300).contains(&p50), "p50 = {p50}");
        // Identical inputs → identical histogram.
        let mut h2 = LogHistogram::new();
        for v in [5u64, 80, 80, 300, 1_000, 40_000, 40_000, 2_000_000] {
            h2.record(v);
        }
        assert_eq!(h, h2);
    }

    #[test]
    fn top_percentiles_stay_on_bucket_lower_bounds() {
        // Single sample: p99 and p100 are the containing bucket's lower
        // bound, not the raw recorded value.
        let mut single = LogHistogram::new();
        single.record(5_000);
        let low = bucket_low(index_of(5_000));
        assert!(low < 5_000, "5000 is not a bucket boundary");
        assert_eq!(single.percentile(99), low);
        assert_eq!(single.percentile(100), low);
        assert!(single.percentile(100) <= single.max_ns());

        // Saturated histogram: the topmost bucket's lower bound, and the
        // same value whether the scan or the fallthrough answers.
        let mut sat = LogHistogram::new();
        sat.record(1);
        sat.record(u64::MAX);
        let top_low = bucket_low(index_of(u64::MAX));
        assert_eq!(sat.percentile(99), top_low);
        assert_eq!(sat.percentile(100), top_low);
        assert!(sat.percentile(100) <= sat.max_ns());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let (xs, ys) = ([1u64, 7, 900, 70_000], [0u64, 7, 1 << 40]);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for &v in &xs {
            a.record(v);
            whole.record(v);
        }
        for &v in &ys {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min_ns(), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        a.record_n(333, 5);
        let mut b = LogHistogram::new();
        for _ in 0..5 {
            b.record(333);
        }
        assert_eq!(a, b);
        a.record_n(1, 0); // no-op
        assert_eq!(a, b);
    }
}
