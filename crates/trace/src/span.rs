//! Hierarchical spans over the flat event stream.
//!
//! A span is a named region of wall time. Rather than extending the
//! `gpa-trace/1` schema, spans ride on ordinary events: entering a span
//! emits `span.enter {name}`, leaving it emits `span.exit {name,
//! dur_ns}`. Because both are plain events, every existing invariant
//! (counter(name) == line count, byte-identical reports trace-on/off)
//! holds unchanged, and old streams without spans still validate.
//!
//! Consumers rebuild the hierarchy from nesting order with
//! [`SpanBuilder`] — enter pushes, exit pops back to the matching name —
//! and aggregate identical paths into a [`SpanTree`]: a flamegraph-style
//! profile where every node carries invocation count, total time, and
//! (derived) self time. `gpa trace-profile` renders that tree for
//! existing trace files; `gpa perf --profile` does the same for a fresh
//! benchmark run.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::{Tracer, Value};

/// Event name emitted when a span opens.
pub const SPAN_ENTER: &str = "span.enter";
/// Event name emitted when a span closes.
pub const SPAN_EXIT: &str = "span.exit";

/// An RAII guard tracing one span; emits the exit event on drop.
pub struct SpanGuard<'a> {
    tracer: &'a dyn Tracer,
    name: &'static str,
    start: Instant,
    armed: bool,
}

/// Opens a span on `tracer`; the returned guard closes it when dropped.
///
/// Disabled tracers pay one `enabled()` call and nothing else.
pub fn span<'a>(tracer: &'a dyn Tracer, name: &'static str) -> SpanGuard<'a> {
    let armed = tracer.enabled();
    if armed {
        tracer.event(SPAN_ENTER, &[("name", Value::from(name))]);
    }
    SpanGuard {
        tracer,
        name,
        start: Instant::now(),
        armed,
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let dur_ns = crate::saturating_ns(self.start.elapsed());
            self.tracer.event(
                SPAN_EXIT,
                &[
                    ("name", Value::from(self.name)),
                    ("dur_ns", Value::from(dur_ns)),
                ],
            );
        }
    }
}

/// One aggregated node of a span profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// How many spans merged into this node.
    pub count: u64,
    /// Total wall time across those spans.
    pub total_ns: u64,
    /// Child spans, by name.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    /// Total time spent in direct children.
    pub fn child_ns(&self) -> u64 {
        self.children.values().map(|c| c.total_ns).sum()
    }

    /// Time spent in this span outside any child (clamped at zero:
    /// per-span clock reads can make children sum slightly past the
    /// parent).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns())
    }

    fn merge(&mut self, other: &SpanNode) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().merge(child);
        }
    }
}

/// An aggregated span profile: a forest of named [`SpanNode`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level spans, by name.
    pub roots: BTreeMap<String, SpanNode>,
}

impl SpanTree {
    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Adds one completed span at `path` (root-first) with duration
    /// `dur_ns`. Intermediate nodes are created on demand; only the leaf
    /// gets the count/time (enclosing spans record their own exits).
    pub fn record(&mut self, path: &[String], dur_ns: u64) {
        let Some((first, rest)) = path.split_first() else {
            return;
        };
        let mut node = self.roots.entry(first.clone()).or_default();
        for name in rest {
            node = node.children.entry(name.clone()).or_default();
        }
        node.count += 1;
        node.total_ns += dur_ns;
    }

    /// Merges another profile into this one, path by path.
    pub fn merge(&mut self, other: &SpanTree) {
        for (name, node) in &other.roots {
            self.roots.entry(name.clone()).or_default().merge(node);
        }
    }

    /// Renders the profile as an indented text tree, children sorted by
    /// total time (descending, then by name for determinism).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "     total       self    count  span\n\
             ----------  ---------  -------  ----\n",
        );
        fn visit(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
            out.push_str(&format!(
                "{:>10}  {:>9}  {:>7}  {:indent$}{name}\n",
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns()),
                node.count,
                "",
                indent = depth * 2,
            ));
            let mut children: Vec<(&String, &SpanNode)> = node.children.iter().collect();
            children.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (child_name, child) in children {
                visit(out, child_name, child, depth + 1);
            }
        }
        let mut roots: Vec<(&String, &SpanNode)> = self.roots.iter().collect();
        roots.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (name, node) in roots {
            visit(&mut out, name, node, 0);
        }
        out
    }
}

/// Human-scale duration (ns → µs → ms → s) for the rendered tree.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Rebuilds span nesting from a stream of enter/exit events.
///
/// Tolerant of malformed streams: an exit without a matching enter is
/// dropped, enters missing their exit are discarded when [`finish`]
/// (`SpanBuilder::finish`) runs, and popping to the *innermost* matching
/// name keeps one lost exit from corrupting the rest of the stream.
#[derive(Debug, Default)]
pub struct SpanBuilder {
    stack: Vec<String>,
    tree: SpanTree,
}

impl SpanBuilder {
    /// A builder with an empty stack and profile.
    pub fn new() -> SpanBuilder {
        SpanBuilder::default()
    }

    /// Handles a `span.enter` event.
    pub fn enter(&mut self, name: &str) {
        self.stack.push(name.to_owned());
    }

    /// Handles a `span.exit` event carrying the span's duration.
    pub fn exit(&mut self, name: &str, dur_ns: u64) {
        if let Some(pos) = self.stack.iter().rposition(|n| n == name) {
            self.tree.record(&self.stack[..=pos], dur_ns);
            self.stack.truncate(pos);
        }
    }

    /// The aggregated profile (unclosed spans are dropped).
    pub fn finish(self) -> SpanTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterTracer;

    #[test]
    fn guard_emits_paired_events() {
        let t = CounterTracer::new();
        {
            let _outer = span(&t, "outer");
            let _inner = span(&t, "inner");
        }
        let c = t.counters();
        assert_eq!(c.get(SPAN_ENTER), 2);
        assert_eq!(c.get(SPAN_EXIT), 2);
    }

    #[test]
    fn disabled_tracer_pays_nothing() {
        let t = crate::NoopTracer;
        let g = span(&t, "quiet");
        assert!(!g.armed);
    }

    #[test]
    fn builder_aggregates_nested_spans() {
        let mut b = SpanBuilder::new();
        for _ in 0..3 {
            b.enter("round");
            b.enter("detect");
            b.exit("detect", 100);
            b.enter("apply");
            b.exit("apply", 10);
            b.exit("round", 130);
        }
        let tree = b.finish();
        let round = tree.roots.get("round").expect("round root");
        assert_eq!(round.count, 3);
        assert_eq!(round.total_ns, 390);
        assert_eq!(round.children["detect"].total_ns, 300);
        assert_eq!(round.children["apply"].count, 3);
        assert_eq!(round.self_ns(), 390 - 330);
        let text = tree.render();
        assert!(text.contains("round"), "{text}");
        assert!(text.contains("detect"), "{text}");
        // detect (300ns) sorts before apply (30ns).
        assert!(text.find("detect").unwrap() < text.find("apply").unwrap());
    }

    #[test]
    fn builder_tolerates_unbalanced_streams() {
        let mut b = SpanBuilder::new();
        b.exit("phantom", 5); // exit without enter: dropped
        b.enter("leaked"); // enter without exit: dropped at finish
        b.enter("real");
        b.exit("real", 7);
        let tree = b.finish();
        assert_eq!(tree.roots.len(), 1);
        // "real" nests under the never-closed "leaked" frame.
        assert_eq!(tree.roots["leaked"].children["real"].total_ns, 7);
        assert_eq!(tree.roots["leaked"].count, 0);
    }

    #[test]
    fn merge_adds_counts_and_times() {
        let mut a = SpanTree::default();
        a.record(&["x".into()], 10);
        a.record(&["x".into(), "y".into()], 4);
        let mut b = SpanTree::default();
        b.record(&["x".into()], 1);
        b.record(&["z".into()], 2);
        a.merge(&b);
        assert_eq!(a.roots["x"].count, 2);
        assert_eq!(a.roots["x"].total_ns, 11);
        assert_eq!(a.roots["x"].children["y"].total_ns, 4);
        assert_eq!(a.roots["z"].total_ns, 2);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
