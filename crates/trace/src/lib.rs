//! `gpa-trace` — structured tracing and telemetry for the
//! procedural-abstraction pipeline.
//!
//! The miner, the MIS solver and the batch cache all contain *bounded*
//! algorithms with silent fallbacks: pattern budgets, embedding-list
//! caps, a branch-and-bound step budget, a greedy path for oversized
//! collision-graph components, corrupt cache entries degraded to misses.
//! Each of those trades result quality for bounded work — invisibly,
//! unless something records that the trade happened. This crate is that
//! record: a zero-dependency [`Tracer`] trait threaded through the whole
//! pipeline, with three implementations:
//!
//! * [`NoopTracer`] — the default; every call is a no-op so the hot
//!   mining loops pay one virtual call and nothing else;
//! * [`CounterTracer`] — aggregates named counters in memory (tests,
//!   embedders that only want totals);
//! * [`JsonlTracer`] — appends one JSON object per event to a writer
//!   (the `gpa optimize --trace` / `gpa batch --trace-dir` backends)
//!   and aggregates counters on the side.
//!
//! # Event stream schema (`gpa-trace/1`)
//!
//! A trace file is JSON Lines: every line is a self-contained JSON
//! object with an `"ev"` name field. The first line is a header
//! (`{"schema":"gpa-trace/1","ev":"trace_begin"}`), the last — written
//! by [`Tracer::finish`] — is the counter summary
//! (`{"ev":"counters","counters":{…}}`). In between, every
//! [`Tracer::event`] call appends a line
//! `{"ev":"<name>","at_ns":<ns since trace start>, …fields}` and bumps
//! the counter of the same name, so a well-formed trace satisfies
//! *counter(name) == number of `name` event lines* for every name that
//! appears as an event (`gpa trace-check` enforces this). Hot-path
//! figures (patterns visited, branch-and-bound steps) are counted via
//! [`Tracer::count`] without emitting per-increment events; they appear
//! only in the final summary.
//!
//! Event ordering between threads follows lock acquisition, so two runs
//! may interleave events differently; counter totals for a fixed
//! configuration are deterministic. Tracing never influences any
//! optimization decision: reports are byte-identical with tracing on or
//! off.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

pub mod histogram;
pub mod span;

pub use histogram::LogHistogram;
pub use span::{span, SpanBuilder, SpanGuard, SpanNode, SpanTree, SPAN_ENTER, SPAN_EXIT};

/// Version tag of the trace event-stream schema.
pub const TRACE_SCHEMA: &str = "gpa-trace/1";

/// A [`std::time::Duration`] as whole nanoseconds, saturating at
/// `u64::MAX` instead of silently truncating the `u128` (`as_nanos()
/// as u64` wraps after ~584 years of wall time — absurd for a real
/// measurement, but a stuck clock or a deserialized timestamp should
/// degrade to "very large", not to a small bogus stage timing).
///
/// Every stage-timing site in the workspace funnels through this one
/// conversion.
pub fn saturating_ns(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// A field value of a trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// An integer (counts, sizes, nanoseconds; saturating from `u64`).
    Int(i64),
    /// A string (names, reasons, hex keys).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    /// Saturates at `i64::MAX`.
    fn from(v: u64) -> Value {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Value {
    /// Saturates at `i64::MAX`.
    fn from(v: usize) -> Value {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// An ordered name → total map of aggregated counters.
///
/// Produced by [`Tracer::counters`]; merged across images by the batch
/// pipeline and folded into the corpus report's `"metrics"` object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters(pub BTreeMap<String, u64>);

impl Counters {
    /// The total recorded under `name` (zero when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.0.get(name).copied().unwrap_or(0)
    }

    /// Adds every counter of `other` into this map.
    pub fn merge(&mut self, other: &Counters) {
        for (name, total) in &other.0 {
            *self.0.entry(name.clone()).or_insert(0) += total;
        }
    }

    /// Whether no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The tracing sink threaded through mining, detection, extraction and
/// the batch cache.
///
/// Implementations must be cheap when disabled and safe to share across
/// worker threads ([`Send`] + [`Sync`]); the pipeline hands the same
/// tracer to every mining worker of a detection round.
pub trait Tracer: Send + Sync + fmt::Debug {
    /// Bumps the named counter by `delta`. Hot-path safe: no event line
    /// is emitted.
    fn count(&self, counter: &'static str, delta: u64);

    /// Emits a structured event and bumps the counter of the same name
    /// by one.
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]);

    /// Whether this tracer records anything (lets callers skip building
    /// expensive field sets).
    fn enabled(&self) -> bool;

    /// A snapshot of every counter recorded so far.
    fn counters(&self) -> Counters {
        Counters::default()
    }

    /// Flushes the trace, writing the trailing counter-summary line for
    /// stream-backed tracers. Idempotent; a no-op for others.
    fn finish(&self) {}
}

/// The default tracer: records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn count(&self, _counter: &'static str, _delta: u64) {}
    fn event(&self, _name: &'static str, _fields: &[(&'static str, Value)]) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// A tracer that aggregates counters in memory and drops events' fields.
#[derive(Debug, Default)]
pub struct CounterTracer {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl CounterTracer {
    /// An empty counter set.
    pub fn new() -> CounterTracer {
        CounterTracer::default()
    }
}

impl Tracer for CounterTracer {
    fn count(&self, counter: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("counter tracer poisoned")
            .entry(counter)
            .or_insert(0) += delta;
    }

    fn event(&self, name: &'static str, _fields: &[(&'static str, Value)]) {
        self.count(name, 1);
    }

    fn enabled(&self) -> bool {
        true
    }

    fn counters(&self) -> Counters {
        Counters(
            self.counters
                .lock()
                .expect("counter tracer poisoned")
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
        )
    }
}

struct JsonlInner {
    out: Box<dyn Write + Send>,
    counters: BTreeMap<&'static str, u64>,
    /// `at_ns` of the last event line written; event timestamps are
    /// sampled *under the stream lock*, so this never decreases.
    last_at_ns: u64,
    finished: bool,
}

/// A tracer that appends one JSON object per event to a writer
/// (`gpa-trace/1` JSON Lines) and aggregates counters on the side.
///
/// Writing is best-effort: an I/O error on an event line is swallowed
/// (tracing must never fail the traced run), but creation errors are
/// surfaced so a mistyped `--trace` path is not silently ignored.
pub struct JsonlTracer {
    start: Instant,
    inner: Mutex<JsonlInner>,
}

impl fmt::Debug for JsonlTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlTracer").finish_non_exhaustive()
    }
}

impl JsonlTracer {
    /// Traces into a freshly created (truncated) file.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn to_file(path: &Path) -> io::Result<JsonlTracer> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlTracer::to_writer(Box::new(io::BufWriter::new(file))))
    }

    /// Traces into an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlTracer {
        let tracer = JsonlTracer {
            start: Instant::now(),
            inner: Mutex::new(JsonlInner {
                out,
                counters: BTreeMap::new(),
                last_at_ns: 0,
                finished: false,
            }),
        };
        {
            let mut inner = tracer.inner.lock().expect("jsonl tracer poisoned");
            let mut line = String::new();
            line.push_str("{\"schema\":");
            write_json_str(&mut line, TRACE_SCHEMA);
            line.push_str(",\"ev\":\"trace_begin\"}\n");
            let _ = inner.out.write_all(line.as_bytes());
        }
        tracer
    }
}

impl Tracer for JsonlTracer {
    fn count(&self, counter: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("jsonl tracer poisoned");
        *inner.counters.entry(counter).or_insert(0) += delta;
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let mut inner = self.inner.lock().expect("jsonl tracer poisoned");
        // Sample the clock while holding the stream lock: timestamps are
        // then assigned in write order, so `at_ns` is monotone across
        // the whole stream even when several threads trace at once.
        let at_ns = crate::saturating_ns(self.start.elapsed()).min(i64::MAX as u64);
        debug_assert!(
            at_ns >= inner.last_at_ns,
            "at_ns regressed: {at_ns} < {}",
            inner.last_at_ns
        );
        let at_ns = at_ns.max(inner.last_at_ns);
        inner.last_at_ns = at_ns;
        let mut line = String::new();
        line.push_str("{\"ev\":");
        write_json_str(&mut line, name);
        line.push_str(",\"at_ns\":");
        line.push_str(&at_ns.to_string());
        for (key, value) in fields {
            line.push(',');
            write_json_str(&mut line, key);
            line.push(':');
            match value {
                Value::Int(v) => line.push_str(&v.to_string()),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => write_json_str(&mut line, s),
            }
        }
        line.push_str("}\n");
        *inner.counters.entry(name).or_insert(0) += 1;
        let _ = inner.out.write_all(line.as_bytes());
    }

    fn enabled(&self) -> bool {
        true
    }

    fn counters(&self) -> Counters {
        Counters(
            self.inner
                .lock()
                .expect("jsonl tracer poisoned")
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
        )
    }

    fn finish(&self) {
        let mut inner = self.inner.lock().expect("jsonl tracer poisoned");
        if inner.finished {
            return;
        }
        inner.finished = true;
        let mut line = String::from("{\"ev\":\"counters\",\"counters\":{");
        for (i, (name, total)) in inner.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_str(&mut line, name);
            line.push(':');
            line.push_str(&total.to_string());
        }
        line.push_str("}}\n");
        let _ = inner.out.write_all(line.as_bytes());
        let _ = inner.out.flush();
    }
}

impl Drop for JsonlTracer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A Vec<u8> sink shareable between the tracer and the assertion.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn noop_records_nothing() {
        let t = NoopTracer;
        t.count("x", 5);
        t.event("y", &[("a", Value::Int(1))]);
        assert!(!t.enabled());
        assert!(t.counters().is_empty());
    }

    #[test]
    fn counter_tracer_aggregates() {
        let t = CounterTracer::new();
        t.count("mine.patterns_visited", 3);
        t.count("mine.patterns_visited", 4);
        t.event("mis.budget_exhausted", &[]);
        let c = t.counters();
        assert_eq!(c.get("mine.patterns_visited"), 7);
        assert_eq!(c.get("mis.budget_exhausted"), 1);
        assert_eq!(c.get("absent"), 0);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::default();
        a.0.insert("x".into(), 2);
        let mut b = Counters::default();
        b.0.insert("x".into(), 3);
        b.0.insert("y".into(), 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn jsonl_stream_shape() {
        let buf = SharedBuf::default();
        let t = JsonlTracer::to_writer(Box::new(buf.clone()));
        t.count("hot", 9);
        t.event(
            "cache.corrupt_entry",
            &[
                ("key", Value::from("00ff")),
                ("reason", Value::from("bad \"json\"\n")),
                ("recovered", Value::from(true)),
                ("bytes", Value::from(42u64)),
            ],
        );
        t.finish();
        t.finish(); // idempotent
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"schema\":\"gpa-trace/1\""));
        assert!(lines[0].contains("\"ev\":\"trace_begin\""));
        assert!(lines[1].contains("\"ev\":\"cache.corrupt_entry\""));
        assert!(lines[1].contains("\"reason\":\"bad \\\"json\\\"\\n\""));
        assert!(lines[1].contains("\"recovered\":true"));
        assert!(lines[1].contains("\"at_ns\":"));
        assert!(lines[2].contains("\"ev\":\"counters\""));
        assert!(lines[2].contains("\"cache.corrupt_entry\":1"));
        assert!(lines[2].contains("\"hot\":9"));
        let c = t.counters();
        assert_eq!(c.get("hot"), 9);
        assert_eq!(c.get("cache.corrupt_entry"), 1);
    }

    /// Pulls every `"at_ns":<n>` value out of a rendered stream, in line
    /// order.
    fn at_ns_values(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let (_, rest) = line.split_once("\"at_ns\":")?;
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            })
            .collect()
    }

    #[test]
    fn at_ns_is_monotone_within_one_stream() {
        let buf = SharedBuf::default();
        let t = JsonlTracer::to_writer(Box::new(buf.clone()));
        for _ in 0..200 {
            t.event("tick", &[]);
        }
        t.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let stamps = at_ns_values(&text);
        assert_eq!(stamps.len(), 200);
        for pair in stamps.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "at_ns regressed: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn interleaved_multi_thread_events_stay_monotone_and_counted() {
        let buf = SharedBuf::default();
        let t = Arc::new(JsonlTracer::to_writer(Box::new(buf.clone())));
        // Four "sections" interleaving events of distinct names plus a
        // shared one, racing on the same stream.
        std::thread::scope(|scope| {
            for section in 0..4usize {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    let name = ["sec.a", "sec.b", "sec.c", "sec.d"][section];
                    for _ in 0..50 {
                        t.event(name, &[]);
                        t.event("shared", &[]);
                    }
                });
            }
        });
        t.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let stamps = at_ns_values(&text);
        assert_eq!(stamps.len(), 400);
        for pair in stamps.windows(2) {
            assert!(pair[0] <= pair[1], "at_ns regressed across threads");
        }
        // The trailing counters line agrees with the event-line counts.
        let lines: Vec<&str> = text.lines().collect();
        let summary = lines.last().unwrap();
        assert!(summary.contains("\"ev\":\"counters\""));
        for name in ["sec.a", "sec.b", "sec.c", "sec.d"] {
            let event_lines = lines
                .iter()
                .filter(|l| l.contains(&format!("\"ev\":\"{name}\"")))
                .count();
            assert_eq!(event_lines, 50);
            assert!(summary.contains(&format!("\"{name}\":50")), "{summary}");
        }
        assert!(summary.contains("\"shared\":200"), "{summary}");
    }

    #[test]
    fn jsonl_is_shareable_across_threads() {
        let buf = SharedBuf::default();
        let t = Arc::new(JsonlTracer::to_writer(Box::new(buf.clone())));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.count("n", 1);
                    }
                    t.event("worker_done", &[]);
                });
            }
        });
        t.finish();
        let c = t.counters();
        assert_eq!(c.get("n"), 400);
        assert_eq!(c.get("worker_done"), 4);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // Every line is a complete object (no interleaved writes).
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
