//! Canonical ("fuzzy") instruction labels — the paper's Fig. 13 extension.
//!
//! In canonical representation two instructions are equal if they share
//! the mnemonic and the number and *types* of operands: every register
//! becomes `R` and every immediate becomes `I`. Mining with canonical
//! labels finds more fragments; the extractor then has to reconcile the
//! concrete registers (parameterized abstraction), which the cost model
//! accounts for.

use gpa_arm::insn::{AddressMode, Instruction, MemOffset, MemOp, Operand2};
use gpa_cfg::Item;
#[cfg(test)]
use gpa_cfg::Literal;

/// The canonical label of an item: mnemonic plus operand shape.
///
/// # Examples
///
/// ```
/// use gpa_cfg::Item;
/// use gpa_dfg::canon::canonical_label;
///
/// let a = Item::Insn("add r1, r2, r3".parse()?);
/// let b = Item::Insn("add r7, r8, r9".parse()?);
/// assert_eq!(canonical_label(&a), canonical_label(&b));
/// assert_eq!(canonical_label(&a), "add R, R, R");
///
/// let c = Item::Insn("add r1, r2, #4".parse()?);
/// assert_eq!(canonical_label(&c), "add R, R, I");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn canonical_label(item: &Item) -> String {
    match item {
        Item::Insn(insn) => canonical_insn(insn),
        Item::Call { cond, .. } => format!("bl{cond} F"),
        Item::IndirectCall { .. } => "call* R".to_owned(),
        Item::Branch { cond, .. } | Item::TailCall { cond, .. } => format!("b{cond} L"),
        Item::LitLoad { .. } => "ldr R, =I".to_owned(),
        Item::Label(_) => "label".to_owned(),
    }
}

fn op2_shape(op2: &Operand2) -> &'static str {
    match op2 {
        Operand2::Imm(_) => "I",
        Operand2::Reg(_) => "R",
        Operand2::RegShift(_, kind, _) => match kind {
            gpa_arm::ShiftKind::Lsl => "R, lsl I",
            gpa_arm::ShiftKind::Lsr => "R, lsr I",
            gpa_arm::ShiftKind::Asr => "R, asr I",
            gpa_arm::ShiftKind::Ror => "R, ror I",
        },
    }
}

fn canonical_insn(insn: &Instruction) -> String {
    match insn {
        Instruction::DataProc {
            cond,
            op,
            set_flags,
            op2,
            ..
        } => {
            let s = if *set_flags && !op.is_compare() {
                "s"
            } else {
                ""
            };
            if op.is_compare() {
                format!("{op}{cond} R, {}", op2_shape(op2))
            } else if op.is_move() {
                format!("{op}{cond}{s} R, {}", op2_shape(op2))
            } else {
                format!("{op}{cond}{s} R, R, {}", op2_shape(op2))
            }
        }
        Instruction::Mul {
            cond, set_flags, ..
        } => {
            format!("mul{cond}{} R, R, R", if *set_flags { "s" } else { "" })
        }
        Instruction::Mla {
            cond, set_flags, ..
        } => {
            format!("mla{cond}{} R, R, R, R", if *set_flags { "s" } else { "" })
        }
        Instruction::Mem {
            cond,
            op,
            byte,
            offset,
            mode,
            ..
        } => {
            let name = match op {
                MemOp::Ldr => "ldr",
                MemOp::Str => "str",
            };
            let b = if *byte { "b" } else { "" };
            let off = match offset {
                MemOffset::Imm(_) => "I",
                MemOffset::Reg(_, _) => "R",
            };
            let mode = match mode {
                AddressMode::Offset => "[R, off]",
                AddressMode::PreIndexed => "[R, off]!",
                AddressMode::PostIndexed => "[R], off",
            };
            format!("{name}{cond}{b} R, {mode} {off}")
        }
        Instruction::Block {
            cond,
            op,
            writeback,
            mode,
            regs,
            ..
        } => {
            let name = match op {
                MemOp::Ldr => "ldm",
                MemOp::Str => "stm",
            };
            // Register lists keep their *count* (the frame shape), not the
            // concrete registers.
            format!(
                "{name}{cond}{} R{}, {{{}}}",
                mode.suffix(),
                if *writeback { "!" } else { "" },
                regs.len()
            )
        }
        Instruction::Branch { cond, link, .. } => {
            format!("b{}{cond} L", if *link { "l" } else { "" })
        }
        Instruction::Bx { cond, .. } => format!("bx{cond} R"),
        Instruction::Swi { cond, imm } => format!("swi{cond} #{imm}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_label(&Item::Insn(text.parse().unwrap()))
    }

    #[test]
    fn fig13_examples() {
        // The paper's Fig. 13: ldr/sub/add canonical forms.
        assert_eq!(canon("ldr r3, [r1]!"), "ldr R, [R, off]! I");
        assert_eq!(canon("sub r2, r2, r3"), "sub R, R, R");
        assert_eq!(canon("add r4, r2, #4"), "add R, R, I");
    }

    #[test]
    fn distinguishes_shapes() {
        assert_ne!(canon("add r1, r2, r3"), canon("add r1, r2, #3"));
        assert_ne!(canon("ldr r1, [r2]"), canon("ldrb r1, [r2]"));
        assert_ne!(canon("ldr r1, [r2], #4"), canon("ldr r1, [r2, #4]"));
        assert_ne!(canon("mul r1, r2, r3"), canon("mla r1, r2, r3, r4"));
        assert_ne!(canon("cmp r1, #0"), canon("cmp r1, r2"));
    }

    #[test]
    fn merges_register_choices() {
        assert_eq!(canon("str r0, [sp, #8]"), canon("str r7, [r2, #100]"));
        assert_eq!(canon("moveq r0, #1"), canon("moveq r9, #255"));
        assert_ne!(canon("moveq r0, #1"), canon("movne r0, #1"));
    }

    #[test]
    fn swi_number_is_semantic() {
        // The service number selects behaviour, so it stays.
        assert_ne!(canon("swi #0"), canon("swi #1"));
    }

    #[test]
    fn calls_merge_by_shape() {
        let a = Item::Call {
            cond: gpa_arm::Cond::Al,
            target: "f".into(),
        };
        let b = Item::Call {
            cond: gpa_arm::Cond::Al,
            target: "g".into(),
        };
        assert_eq!(canonical_label(&a), canonical_label(&b));
    }

    #[test]
    fn litloads_merge() {
        let a = Item::LitLoad {
            rd: gpa_arm::Reg::r(1),
            lit: Literal::Word(100),
        };
        let b = Item::LitLoad {
            rd: gpa_arm::Reg::r(2),
            lit: Literal::Code("f".into()),
        };
        assert_eq!(canonical_label(&a), canonical_label(&b));
    }
}
