//! Data-flow-graph construction (phase 6 of the paper).
//!
//! For every straight-line region (basic-block body) produced by
//! [`gpa_cfg`], [`build_dfg`] constructs the directed acyclic dependence
//! graph: nodes are instructions, and an edge *a → b* says *b* must
//! execute after *a* (register RAW/WAR/WAW, condition-flag, or memory
//! dependence). Edges are transitively reduced, so the graph shows direct
//! dependencies like Fig. 2 of the paper while generating the same partial
//! order.
//!
//! Node labels come in two flavours:
//!
//! * **exact** — the full instruction text (`sub r2, r2, r3`); the paper's
//!   main configuration, where fragment instructions must be identical;
//! * **canonical** — registers and immediates abstracted (`sub R, R, R`),
//!   the paper's "fuzzy instruction matching" future-work extension
//!   (Fig. 13), available through [`LabelMode::Canonical`].
//!
//! The [`stats`] module computes the degree distributions reported in
//! Tables 2 and 3.
//!
//! # Examples
//!
//! ```
//! use gpa_arm::parse::parse_listing;
//! use gpa_cfg::Item;
//! use gpa_dfg::{build_dfg_from_items, LabelMode};
//!
//! // The running example of Fig. 1/2.
//! let items: Vec<Item> = parse_listing(
//!     "ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4\n\
//!      ldr r3, [r1]!\nsub r2, r2, r3\nldr r3, [r1]!\nadd r4, r2, #4",
//! )?
//! .into_iter()
//! .map(Item::Insn)
//! .collect();
//! let dfg = build_dfg_from_items("example", 0, &items, LabelMode::Exact);
//! assert_eq!(dfg.node_count(), 7);
//! // The first sub depends directly on the first load.
//! assert!(dfg.succs(0).any(|e| e.to == 1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod canon;
pub mod hash;
pub mod stats;

pub use hash::{block_content_hash, Fnv128};

use gpa_arm::defuse::conflicts;
use gpa_cfg::{Item, Region};

/// Which node-label scheme to use for mining equality.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LabelMode {
    /// Full instruction text; fragments must match exactly.
    #[default]
    Exact,
    /// Mnemonic + operand shapes; the paper's fuzzy-matching extension.
    Canonical,
}

/// The kind bits of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DepMask(pub u8);

impl DepMask {
    /// Read-after-write on a register.
    pub const DATA: DepMask = DepMask(1);
    /// Write-after-read on a register.
    pub const ANTI: DepMask = DepMask(2);
    /// Write-after-write on a register.
    pub const OUTPUT: DepMask = DepMask(4);
    /// Condition-flag dependence.
    pub const FLAG: DepMask = DepMask(8);
    /// Memory dependence.
    pub const MEM: DepMask = DepMask(16);

    /// Union of two masks.
    pub fn union(self, other: DepMask) -> DepMask {
        DepMask(self.0 | other.0)
    }

    /// Whether any bit of `other` is present.
    pub fn contains(self, other: DepMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the mask is empty (no dependence).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The mask with the bits of `other` removed.
    pub fn without(self, other: DepMask) -> DepMask {
        DepMask(self.0 & !other.0)
    }
}

/// The address space an [`AliasInterval`] lives in.
///
/// Intervals only compare within one base: offsets from the entry stack
/// pointer (`Sp`), absolute addresses (`Abs`), or offsets from an opaque
/// symbolic pointer (`Sym`). Two different symbols — or a symbol against
/// `Sp`/`Abs` — may refer to the same bytes, so cross-base pairs are
/// never provably disjoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasBase {
    /// Byte offsets from the function-entry stack pointer.
    Sp,
    /// Absolute addresses.
    Abs,
    /// Offsets from the opaque value named by `sym`. When the value is
    /// produced *inside* the region, `def` holds the producing node's
    /// region-relative index: a pair that straddles that node compares
    /// pointers from different instants (the def may re-execute between
    /// the two accesses) and must not be relaxed.
    Sym {
        /// External analysis' symbol id (opaque to this crate).
        sym: u32,
        /// Region-relative defining node, when the def is in-region.
        def: Option<usize>,
    },
}

/// One proved footprint interval: the half-open byte range `[lo, hi)`
/// within `base`'s address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AliasInterval {
    /// Address space the range is relative to.
    pub base: AliasBase,
    /// Inclusive lower byte offset.
    pub lo: i64,
    /// Exclusive upper byte offset.
    pub hi: i64,
}

/// Per-node memory footprints of one region, proved by an external
/// analysis (the `gpa-verify` abstract interpreter) and consumed by
/// [`build_dfg_from_items_with`] to drop provably spurious MEM edges.
///
/// The oracle is plain data so this crate stays analysis-agnostic: slot
/// `k` describes region node `k`. `Some(intervals)` asserts that *every*
/// memory access the node can perform lies inside the listed
/// [`AliasInterval`]s. `None` means the node is unresolved — it may
/// touch anything.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AliasOracle {
    /// Per region node, the proved footprint (`None` = unresolved).
    pub slots: Vec<Option<Vec<AliasInterval>>>,
}

impl AliasOracle {
    /// Whether region nodes `i` and `j` provably touch disjoint bytes.
    /// Only two *resolved* nodes can be disjoint (a resolved access and
    /// an unresolved one may still collide). Within one base the ranges
    /// must not overlap; symbolic bases must be the *same* symbol whose
    /// defining node does not lie strictly between the two nodes. Of the
    /// cross-base pairs only `Sp`/`Abs` is disjoint — the stack never
    /// descends into the static image absent stack overflow, which the
    /// rewrite assumes away — while a symbol may alias anything.
    ///
    /// The pair is order-insensitive: the def-between check normalizes
    /// `(i, j)` to program order first.
    pub fn disjoint(&self, i: usize, j: usize) -> bool {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        let (Some(Some(a)), Some(Some(b))) = (self.slots.get(i), self.slots.get(j)) else {
            return false;
        };
        a.iter().all(|x| {
            b.iter().all(|y| match (x.base, y.base) {
                (AliasBase::Sp, AliasBase::Abs) | (AliasBase::Abs, AliasBase::Sp) => true,
                (AliasBase::Sp, AliasBase::Sp) | (AliasBase::Abs, AliasBase::Abs) => {
                    x.hi <= y.lo || y.hi <= x.lo
                }
                (AliasBase::Sym { sym: sa, def }, AliasBase::Sym { sym: sb, .. }) => {
                    sa == sb
                        && def.is_none_or(|d| !(lo < d && d < hi))
                        && (x.hi <= y.lo || y.hi <= x.lo)
                }
                _ => false,
            })
        })
    }
}

/// How many MEM-carrying pairs an oracle-assisted build examined and how
/// many it proved disjoint (`relaxed`). `examined - disjoint` pairs kept
/// their MEM edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RelaxStats {
    /// Item pairs whose conservative dependence included MEM.
    pub mem_pairs_examined: u64,
    /// Of those, pairs the oracle proved disjoint (MEM bit dropped).
    pub mem_pairs_disjoint: u64,
}

/// An oracle-assisted DFG build: the graph plus the audit trail the
/// translation validator needs to re-certify every dropped MEM bit.
#[derive(Clone, PartialEq, Debug)]
pub struct RelaxedDfg {
    /// The (possibly relaxed) dependence graph.
    pub dfg: Dfg,
    /// Node pairs `(earlier, later)` whose MEM bit was dropped on the
    /// oracle's word — each is a claim to be independently re-derived.
    pub relaxed: Vec<(usize, usize)>,
    /// Examination counters for tracing.
    pub stats: RelaxStats,
}

/// Computes the dependence kinds between an earlier and a later item.
pub fn dep_between(earlier: &Item, later: &Item) -> DepMask {
    let a = earlier.effects();
    let b = later.effects();
    let mut mask = DepMask::default();
    if a.defs.intersects(b.uses) {
        mask = mask.union(DepMask::DATA);
    }
    if a.uses.intersects(b.defs) {
        mask = mask.union(DepMask::ANTI);
    }
    if a.defs.intersects(b.defs) {
        mask = mask.union(DepMask::OUTPUT);
    }
    if (a.writes_flags && (b.reads_flags || b.writes_flags)) || (a.reads_flags && b.writes_flags) {
        mask = mask.union(DepMask::FLAG);
    }
    if (a.writes_mem && (b.reads_mem || b.writes_mem)) || (a.reads_mem && b.writes_mem) {
        mask = mask.union(DepMask::MEM);
    }
    debug_assert_eq!(mask.is_empty(), !conflicts(&a, &b));
    mask
}

/// A directed dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Dependence kinds.
    pub kinds: DepMask,
}

/// The data-flow graph of one straight-line region.
///
/// Stored in an arena/SoA layout: all edges live in one flat `Vec`
/// sorted by `(from, to)`, and per-node adjacency is a pair of CSR-style
/// offset arrays over that arena instead of one heap allocation per
/// node. Because the edge arena is sorted, a node's successors *are* a
/// contiguous slice of it; predecessors go through one extra flat
/// permutation (`pred_edges`, edge indices sorted by `(to, from)`).
/// Iteration order through [`Dfg::succs`]/[`Dfg::preds`] is identical to
/// the historical per-node representation, so labels, hashes, and every
/// downstream consumer see the same graph bit-for-bit.
#[derive(Clone, PartialEq, Debug)]
pub struct Dfg {
    /// Owning function name.
    pub function: String,
    /// Item index of the region's first instruction within the function.
    pub region_start: usize,
    labels: Vec<String>,
    items: Vec<Item>,
    /// Transitively reduced edges, sorted by (from, to).
    edges: Vec<Edge>,
    /// CSR offsets into `edges`: node `i`'s outgoing edges occupy
    /// `edges[succ_start[i]..succ_start[i + 1]]`.
    succ_start: Vec<u32>,
    /// Edge indices permuted to (to, from) order.
    pred_edges: Vec<u32>,
    /// CSR offsets into `pred_edges`: node `i`'s incoming edges are
    /// `pred_edges[pred_start[i]..pred_start[i + 1]]`.
    pred_start: Vec<u32>,
}

impl Dfg {
    /// Assembles the arena from edges already sorted by `(from, to)`.
    fn from_sorted_parts(
        function: String,
        region_start: usize,
        labels: Vec<String>,
        items: Vec<Item>,
        edges: Vec<Edge>,
    ) -> Dfg {
        let n = items.len();
        debug_assert!(edges
            .windows(2)
            .all(|w| { (w[0].from, w[0].to) < (w[1].from, w[1].to) }));
        let mut succ_start = vec![0u32; n + 1];
        let mut pred_start = vec![0u32; n + 1];
        for e in &edges {
            succ_start[e.from + 1] += 1;
            pred_start[e.to + 1] += 1;
        }
        for i in 0..n {
            succ_start[i + 1] += succ_start[i];
            pred_start[i + 1] += pred_start[i];
        }
        // Edge indices ascend in (from, to) order, so bucketing them by
        // `to` in one pass leaves each bucket ascending by `from` —
        // exactly the order the per-node `preds[to].push(idx)` loop used
        // to produce.
        let mut pred_edges = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = pred_start[..n].to_vec();
        for (idx, e) in edges.iter().enumerate() {
            pred_edges[cursor[e.to] as usize] = idx as u32;
            cursor[e.to] += 1;
        }
        Dfg {
            function,
            region_start,
            labels,
            items,
            edges,
            succ_start,
            pred_edges,
            pred_start,
        }
    }

    /// Number of nodes (instructions).
    pub fn node_count(&self) -> usize {
        self.items.len()
    }

    /// Number of (reduced) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The mining label of node `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// The underlying item of node `i`.
    pub fn item(&self, i: usize) -> &Item {
        &self.items[i]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node `i`'s outgoing edges as a contiguous slice of the arena.
    fn succ_slice(&self, i: usize) -> &[Edge] {
        &self.edges[self.succ_start[i] as usize..self.succ_start[i + 1] as usize]
    }

    /// Outgoing edges of node `i`.
    pub fn succs(&self, i: usize) -> impl Iterator<Item = Edge> + '_ {
        self.succ_slice(i).iter().copied()
    }

    /// Incoming edges of node `i`.
    pub fn preds(&self, i: usize) -> impl Iterator<Item = Edge> + '_ {
        self.pred_edges[self.pred_start[i] as usize..self.pred_start[i + 1] as usize]
            .iter()
            .map(move |&e| self.edges[e as usize])
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        (self.pred_start[i + 1] - self.pred_start[i]) as usize
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        (self.succ_start[i + 1] - self.succ_start[i]) as usize
    }

    /// Whether `later` is reachable from `earlier` through edges (i.e. the
    /// partial order forces `earlier` before `later`).
    pub fn reaches(&self, earlier: usize, later: usize) -> bool {
        if earlier == later {
            return true;
        }
        // DFS over successors; node indices are in program order so all
        // edges go forward, bounding the search.
        let mut stack = vec![earlier];
        let mut seen = vec![false; self.node_count()];
        while let Some(n) = stack.pop() {
            if n == later {
                return true;
            }
            if n > later || seen[n] {
                continue;
            }
            seen[n] = true;
            for e in self.succ_slice(n) {
                stack.push(e.to);
            }
        }
        false
    }

    /// Renders the graph in Graphviz dot format (used by examples to show
    /// the paper's Fig. 2).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph dfg {\n  rankdir=TB;\n");
        for (i, l) in self.labels.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{}\"];", dot_escape(l));
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -> n{};", e.from, e.to);
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a node label for a double-quoted dot string: `\` and `"` are
/// the only characters dot treats specially there.
fn dot_escape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c == '\\' || c == '"' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Builds the DFG of a region (see [`build_dfg_from_items`]).
pub fn build_dfg(region: &Region<'_>, mode: LabelMode) -> Dfg {
    build_dfg_from_items(region.function, region.start, region.items, mode)
}

/// Builds the transitively reduced dependence DAG of a straight-line item
/// sequence.
///
/// # Panics
///
/// Panics if `items` contains a label (labels never occur inside regions).
pub fn build_dfg_from_items(
    function: &str,
    region_start: usize,
    items: &[Item],
    mode: LabelMode,
) -> Dfg {
    build_dfg_from_items_with(function, region_start, items, mode, None).dfg
}

/// Builds the dependence DAG with an optional [`AliasOracle`].
///
/// When a pair of items conservatively carries a MEM dependence and the
/// oracle proves their footprints disjoint, the MEM bit is dropped (and
/// the whole pair, if nothing else connects it); every drop is recorded
/// in [`RelaxedDfg::relaxed`]. With `None` the result is bit-for-bit the
/// conservative graph of [`build_dfg_from_items`].
///
/// # Panics
///
/// Panics if `items` contains a label (labels never occur inside regions).
pub fn build_dfg_from_items_with(
    function: &str,
    region_start: usize,
    items: &[Item],
    mode: LabelMode,
    oracle: Option<&AliasOracle>,
) -> RelaxedDfg {
    assert!(
        items.iter().all(|i| !matches!(i, Item::Label(_))),
        "regions never contain labels"
    );
    let n = items.len();
    let labels = items
        .iter()
        .map(|i| match mode {
            LabelMode::Exact => i.mining_label(),
            LabelMode::Canonical => canon::canonical_label(i),
        })
        .collect();
    // Direct conflicts, MEM bits relaxed where the oracle proves the
    // footprints disjoint.
    let mut relaxed: Vec<(usize, usize)> = Vec::new();
    let mut stats = RelaxStats::default();
    let mut direct: Vec<(usize, usize, DepMask)> = Vec::new();
    for j in 1..n {
        for i in 0..j {
            let mut mask = dep_between(&items[i], &items[j]);
            if mask.contains(DepMask::MEM) {
                if let Some(oracle) = oracle {
                    stats.mem_pairs_examined += 1;
                    if oracle.disjoint(i, j) {
                        stats.mem_pairs_disjoint += 1;
                        relaxed.push((i, j));
                        mask = mask.without(DepMask::MEM);
                    }
                }
            }
            if !mask.is_empty() {
                direct.push((i, j, mask));
            }
        }
    }
    // Reachability closure over direct edges (bitset per node).
    let words = n.div_ceil(64);
    let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(i, j, _) in &direct {
        adj[i].push(j);
    }
    for i in (0..n).rev() {
        // Successors are all > i, whose reach sets are final.
        let mut row = vec![0u64; words];
        for &j in &adj[i] {
            row[j / 64] |= 1 << (j % 64);
            for w in 0..words {
                row[w] |= reach[j][w];
            }
        }
        reach[i] = row;
    }
    // Keep edge (i, j) unless some intermediate k (i < k < j) has i→k and
    // k→j in the closure.
    let mut edges: Vec<Edge> = Vec::with_capacity(direct.len());
    for &(i, j, kinds) in &direct {
        let redundant = adj[i]
            .iter()
            .any(|&k| k != j && reach[k][j / 64] & (1 << (j % 64)) != 0);
        if !redundant {
            edges.push(Edge {
                from: i,
                to: j,
                kinds,
            });
        }
    }
    edges.sort_by_key(|e| (e.from, e.to));
    RelaxedDfg {
        dfg: Dfg::from_sorted_parts(
            function.to_owned(),
            region_start,
            labels,
            items.to_vec(),
            edges,
        ),
        relaxed,
        stats,
    }
}

/// Builds DFGs for every region of a program.
pub fn build_all(program: &gpa_cfg::Program, mode: LabelMode) -> Vec<Dfg> {
    program
        .regions()
        .iter()
        .map(|r| build_dfg(r, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;

    fn dfg_of(asm: &str) -> Dfg {
        let items: Vec<Item> = parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        build_dfg_from_items("t", 0, &items, LabelMode::Exact)
    }

    #[test]
    fn running_example_structure() {
        // Fig. 1/2 of the paper.
        let dfg = dfg_of(
            "ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             ldr r3, [r1]!\n\
             add r4, r2, #4",
        );
        assert_eq!(dfg.node_count(), 7);
        // ldr0 → sub1 (RAW on r3).
        let e01 = dfg
            .edges()
            .iter()
            .find(|e| e.from == 0 && e.to == 1)
            .unwrap();
        assert!(e01.kinds.contains(DepMask::DATA));
        // sub1 → add2 (RAW on r2).
        assert!(dfg.edges().iter().any(|e| e.from == 1 && e.to == 2));
        // The writeback chains the loads: 0 before 3 before 5 in the
        // partial order (the direct 0 → 3 edge is reduced away because
        // the path through sub1's anti-dependence already orders them).
        assert!(dfg.reaches(0, 3));
        assert!(dfg.reaches(3, 5));
        // Transitive reduction: no direct 0 → 5 edge.
        assert!(!dfg.edges().iter().any(|e| e.from == 0 && e.to == 5));
        // But 5 is still reachable from 0.
        assert!(dfg.reaches(0, 5));
        assert!(!dfg.reaches(2, 1));
    }

    #[test]
    fn independent_instructions_have_no_edges() {
        let dfg = dfg_of("mov r0, #1\nmov r1, #2\nmov r2, #3");
        assert_eq!(dfg.edge_count(), 0);
    }

    #[test]
    fn dep_kinds() {
        let items: Vec<Item> = parse_listing("ldr r3, [r1]\nstr r3, [r2]\nldr r3, [r4]")
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        // load → store: DATA (r3); store → load: MEM.
        let m01 = dep_between(&items[0], &items[1]);
        assert!(m01.contains(DepMask::DATA));
        let m12 = dep_between(&items[1], &items[2]);
        assert!(m12.contains(DepMask::MEM));
        // load → load on the same rd: OUTPUT.
        let m02 = dep_between(&items[0], &items[2]);
        assert!(m02.contains(DepMask::OUTPUT));
    }

    #[test]
    fn flag_dependence() {
        let dfg = dfg_of("cmp r1, #0\nmoveq r0, #1\ncmp r2, #0");
        assert!(dfg
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kinds.contains(DepMask::FLAG)));
        assert!(dfg
            .edges()
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kinds.contains(DepMask::FLAG)));
    }

    #[test]
    fn canonical_mode_merges_register_variants() {
        let items: Vec<Item> = parse_listing("add r1, r2, r3\nadd r4, r5, r6")
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        let exact = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        assert_ne!(exact.label(0), exact.label(1));
        let canonical = build_dfg_from_items("t", 0, &items, LabelMode::Canonical);
        assert_eq!(canonical.label(0), canonical.label(1));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = dfg_of("ldr r3, [r1]\nadd r2, r2, r3").to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn dot_escapes_quotes_and_backslashes_in_labels() {
        let mut dfg = dfg_of("mov r0, #1");
        dfg.labels[0] = r#"say "hi" \ bye"#.into();
        let dot = dfg.to_dot();
        assert!(dot.contains(r#"[label="say \"hi\" \\ bye"]"#), "{dot}");
    }

    fn items_of(asm: &str) -> Vec<Item> {
        parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect()
    }

    fn sp(lo: i64, hi: i64) -> AliasInterval {
        AliasInterval {
            base: AliasBase::Sp,
            lo,
            hi,
        }
    }

    #[test]
    fn oracle_relaxes_disjoint_stack_accesses() {
        // str [sp] / ldr [sp, #4]: conservatively MEM-ordered, provably
        // disjoint slots.
        let items = items_of("str r0, [sp]\nldr r1, [sp, #4]");
        let oracle = AliasOracle {
            slots: vec![Some(vec![sp(0, 4)]), Some(vec![sp(4, 8)])],
        };
        let r = build_dfg_from_items_with("t", 0, &items, LabelMode::Exact, Some(&oracle));
        assert_eq!(r.dfg.edge_count(), 0);
        assert_eq!(r.relaxed, vec![(0, 1)]);
        assert_eq!(r.stats.mem_pairs_examined, 1);
        assert_eq!(r.stats.mem_pairs_disjoint, 1);
    }

    #[test]
    fn oracle_keeps_overlapping_and_unresolved_pairs() {
        let items = items_of("str r0, [sp]\nldr r1, [sp]\nstr r2, [r6]");
        // Node 1 overlaps node 0; node 2 is unresolved.
        let oracle = AliasOracle {
            slots: vec![Some(vec![sp(0, 4)]), Some(vec![sp(0, 4)]), None],
        };
        let r = build_dfg_from_items_with("t", 0, &items, LabelMode::Exact, Some(&oracle));
        assert!(r.relaxed.is_empty());
        // Pairs (0,1), (0,2), (1,2) all carry MEM conservatively.
        assert_eq!(r.stats.mem_pairs_examined, 3);
        assert_eq!(r.stats.mem_pairs_disjoint, 0);
        assert!(r
            .dfg
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kinds.contains(DepMask::MEM)));
    }

    #[test]
    fn relaxing_mem_keeps_other_dependence_kinds() {
        // The register RAW on r0 must survive even when the MEM bit goes.
        let items = items_of("str r0, [sp]\nldr r0, [sp, #4]");
        let oracle = AliasOracle {
            slots: vec![Some(vec![sp(0, 4)]), Some(vec![sp(4, 8)])],
        };
        let r = build_dfg_from_items_with("t", 0, &items, LabelMode::Exact, Some(&oracle));
        assert_eq!(r.relaxed, vec![(0, 1)]);
        let e = r
            .dfg
            .edges()
            .iter()
            .find(|e| e.from == 0 && e.to == 1)
            .unwrap();
        assert!(e.kinds.contains(DepMask::ANTI));
        assert!(!e.kinds.contains(DepMask::MEM));
    }

    #[test]
    fn disjoint_is_order_insensitive_across_a_symbol_def() {
        // Node 1 defines the symbolic pointer; nodes 0 and 2 straddle it.
        // The def-between rule must reject the pair however the caller
        // orders the arguments — the historical `!(i < d && d < j)` test
        // silently passed everything when called as (j, i).
        let sym = |def: Option<usize>| AliasInterval {
            base: AliasBase::Sym { sym: 7, def },
            lo: 0,
            hi: 4,
        };
        let straddling = AliasOracle {
            slots: vec![
                Some(vec![sym(Some(1))]),
                None,
                Some(vec![AliasInterval {
                    base: AliasBase::Sym {
                        sym: 7,
                        def: Some(1),
                    },
                    lo: 8,
                    hi: 12,
                }]),
            ],
        };
        assert!(!straddling.disjoint(0, 2));
        assert!(
            !straddling.disjoint(2, 0),
            "swapped pair must also be rejected"
        );
        // With the def outside the pair, both orders prove disjointness.
        let outside = AliasOracle {
            slots: vec![
                Some(vec![sym(None)]),
                None,
                Some(vec![AliasInterval {
                    base: AliasBase::Sym { sym: 7, def: None },
                    lo: 8,
                    hi: 12,
                }]),
            ],
        };
        assert!(outside.disjoint(0, 2));
        assert!(outside.disjoint(2, 0));
    }

    #[test]
    fn no_oracle_matches_the_conservative_builder_exactly() {
        let asm = "str r0, [sp]\nldr r1, [sp, #4]\nadd r1, r1, r0\nstr r1, [sp]";
        let items = items_of(asm);
        let plain = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        let with = build_dfg_from_items_with("t", 0, &items, LabelMode::Exact, None);
        assert_eq!(plain, with.dfg);
        assert!(with.relaxed.is_empty());
        assert_eq!(with.stats, RelaxStats::default());
    }

    #[test]
    fn compiled_program_dfgs() {
        let image = gpa_minicc::compile(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i * i; return s; }",
            &gpa_minicc::Options::default(),
        )
        .unwrap();
        let program = gpa_cfg::decode_image(&image).unwrap();
        let dfgs = build_all(&program, LabelMode::Exact);
        assert!(!dfgs.is_empty());
        let nodes: usize = dfgs.iter().map(Dfg::node_count).sum();
        assert_eq!(nodes, program.instruction_count());
    }
}
