//! Data-flow-graph construction (phase 6 of the paper).
//!
//! For every straight-line region (basic-block body) produced by
//! [`gpa_cfg`], [`build_dfg`] constructs the directed acyclic dependence
//! graph: nodes are instructions, and an edge *a → b* says *b* must
//! execute after *a* (register RAW/WAR/WAW, condition-flag, or memory
//! dependence). Edges are transitively reduced, so the graph shows direct
//! dependencies like Fig. 2 of the paper while generating the same partial
//! order.
//!
//! Node labels come in two flavours:
//!
//! * **exact** — the full instruction text (`sub r2, r2, r3`); the paper's
//!   main configuration, where fragment instructions must be identical;
//! * **canonical** — registers and immediates abstracted (`sub R, R, R`),
//!   the paper's "fuzzy instruction matching" future-work extension
//!   (Fig. 13), available through [`LabelMode::Canonical`].
//!
//! The [`stats`] module computes the degree distributions reported in
//! Tables 2 and 3.
//!
//! # Examples
//!
//! ```
//! use gpa_arm::parse::parse_listing;
//! use gpa_cfg::Item;
//! use gpa_dfg::{build_dfg_from_items, LabelMode};
//!
//! // The running example of Fig. 1/2.
//! let items: Vec<Item> = parse_listing(
//!     "ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4\n\
//!      ldr r3, [r1]!\nsub r2, r2, r3\nldr r3, [r1]!\nadd r4, r2, #4",
//! )?
//! .into_iter()
//! .map(Item::Insn)
//! .collect();
//! let dfg = build_dfg_from_items("example", 0, &items, LabelMode::Exact);
//! assert_eq!(dfg.node_count(), 7);
//! // The first sub depends directly on the first load.
//! assert!(dfg.succs(0).any(|e| e.to == 1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod canon;
pub mod hash;
pub mod stats;

pub use hash::{block_content_hash, Fnv128};

use gpa_arm::defuse::conflicts;
use gpa_cfg::{Item, Region};

/// Which node-label scheme to use for mining equality.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LabelMode {
    /// Full instruction text; fragments must match exactly.
    #[default]
    Exact,
    /// Mnemonic + operand shapes; the paper's fuzzy-matching extension.
    Canonical,
}

/// The kind bits of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DepMask(pub u8);

impl DepMask {
    /// Read-after-write on a register.
    pub const DATA: DepMask = DepMask(1);
    /// Write-after-read on a register.
    pub const ANTI: DepMask = DepMask(2);
    /// Write-after-write on a register.
    pub const OUTPUT: DepMask = DepMask(4);
    /// Condition-flag dependence.
    pub const FLAG: DepMask = DepMask(8);
    /// Memory dependence.
    pub const MEM: DepMask = DepMask(16);

    /// Union of two masks.
    pub fn union(self, other: DepMask) -> DepMask {
        DepMask(self.0 | other.0)
    }

    /// Whether any bit of `other` is present.
    pub fn contains(self, other: DepMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the mask is empty (no dependence).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Computes the dependence kinds between an earlier and a later item.
pub fn dep_between(earlier: &Item, later: &Item) -> DepMask {
    let a = earlier.effects();
    let b = later.effects();
    let mut mask = DepMask::default();
    if a.defs.intersects(b.uses) {
        mask = mask.union(DepMask::DATA);
    }
    if a.uses.intersects(b.defs) {
        mask = mask.union(DepMask::ANTI);
    }
    if a.defs.intersects(b.defs) {
        mask = mask.union(DepMask::OUTPUT);
    }
    if (a.writes_flags && (b.reads_flags || b.writes_flags)) || (a.reads_flags && b.writes_flags) {
        mask = mask.union(DepMask::FLAG);
    }
    if (a.writes_mem && (b.reads_mem || b.writes_mem)) || (a.reads_mem && b.writes_mem) {
        mask = mask.union(DepMask::MEM);
    }
    debug_assert_eq!(mask.is_empty(), !conflicts(&a, &b));
    mask
}

/// A directed dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Dependence kinds.
    pub kinds: DepMask,
}

/// The data-flow graph of one straight-line region.
#[derive(Clone, PartialEq, Debug)]
pub struct Dfg {
    /// Owning function name.
    pub function: String,
    /// Item index of the region's first instruction within the function.
    pub region_start: usize,
    labels: Vec<String>,
    items: Vec<Item>,
    /// Transitively reduced edges, sorted by (from, to).
    edges: Vec<Edge>,
    preds: Vec<Vec<usize>>, // indices into `edges`
    succs: Vec<Vec<usize>>,
}

impl Dfg {
    /// Number of nodes (instructions).
    pub fn node_count(&self) -> usize {
        self.items.len()
    }

    /// Number of (reduced) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The mining label of node `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// The underlying item of node `i`.
    pub fn item(&self, i: usize) -> &Item {
        &self.items[i]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of node `i`.
    pub fn succs(&self, i: usize) -> impl Iterator<Item = Edge> + '_ {
        self.succs[i].iter().map(move |&e| self.edges[e])
    }

    /// Incoming edges of node `i`.
    pub fn preds(&self, i: usize) -> impl Iterator<Item = Edge> + '_ {
        self.preds[i].iter().map(move |&e| self.edges[e])
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.preds[i].len()
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        self.succs[i].len()
    }

    /// Whether `later` is reachable from `earlier` through edges (i.e. the
    /// partial order forces `earlier` before `later`).
    pub fn reaches(&self, earlier: usize, later: usize) -> bool {
        if earlier == later {
            return true;
        }
        // DFS over successors; node indices are in program order so all
        // edges go forward, bounding the search.
        let mut stack = vec![earlier];
        let mut seen = vec![false; self.node_count()];
        while let Some(n) = stack.pop() {
            if n == later {
                return true;
            }
            if n > later || seen[n] {
                continue;
            }
            seen[n] = true;
            for e in &self.succs[n] {
                stack.push(self.edges[*e].to);
            }
        }
        false
    }

    /// Renders the graph in Graphviz dot format (used by examples to show
    /// the paper's Fig. 2).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph dfg {\n  rankdir=TB;\n");
        for (i, l) in self.labels.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{l}\"];");
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -> n{};", e.from, e.to);
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the DFG of a region (see [`build_dfg_from_items`]).
pub fn build_dfg(region: &Region<'_>, mode: LabelMode) -> Dfg {
    build_dfg_from_items(region.function, region.start, region.items, mode)
}

/// Builds the transitively reduced dependence DAG of a straight-line item
/// sequence.
///
/// # Panics
///
/// Panics if `items` contains a label (labels never occur inside regions).
pub fn build_dfg_from_items(
    function: &str,
    region_start: usize,
    items: &[Item],
    mode: LabelMode,
) -> Dfg {
    assert!(
        items.iter().all(|i| !matches!(i, Item::Label(_))),
        "regions never contain labels"
    );
    let n = items.len();
    let labels = items
        .iter()
        .map(|i| match mode {
            LabelMode::Exact => i.mining_label(),
            LabelMode::Canonical => canon::canonical_label(i),
        })
        .collect();
    // Direct conflicts.
    let mut direct: Vec<(usize, usize, DepMask)> = Vec::new();
    for j in 1..n {
        for i in 0..j {
            let mask = dep_between(&items[i], &items[j]);
            if !mask.is_empty() {
                direct.push((i, j, mask));
            }
        }
    }
    // Reachability closure over direct edges (bitset per node).
    let words = n.div_ceil(64);
    let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(i, j, _) in &direct {
        adj[i].push(j);
    }
    for i in (0..n).rev() {
        // Successors are all > i, whose reach sets are final.
        let mut row = vec![0u64; words];
        for &j in &adj[i] {
            row[j / 64] |= 1 << (j % 64);
            for w in 0..words {
                row[w] |= reach[j][w];
            }
        }
        reach[i] = row;
    }
    // Keep edge (i, j) unless some intermediate k (i < k < j) has i→k and
    // k→j in the closure.
    let mut edges: Vec<Edge> = Vec::with_capacity(direct.len());
    for &(i, j, kinds) in &direct {
        let redundant = adj[i]
            .iter()
            .any(|&k| k != j && reach[k][j / 64] & (1 << (j % 64)) != 0);
        if !redundant {
            edges.push(Edge {
                from: i,
                to: j,
                kinds,
            });
        }
    }
    edges.sort_by_key(|e| (e.from, e.to));
    let mut preds = vec![Vec::new(); n];
    let mut succs = vec![Vec::new(); n];
    for (idx, e) in edges.iter().enumerate() {
        succs[e.from].push(idx);
        preds[e.to].push(idx);
    }
    Dfg {
        function: function.to_owned(),
        region_start,
        labels,
        items: items.to_vec(),
        edges,
        preds,
        succs,
    }
}

/// Builds DFGs for every region of a program.
pub fn build_all(program: &gpa_cfg::Program, mode: LabelMode) -> Vec<Dfg> {
    program
        .regions()
        .iter()
        .map(|r| build_dfg(r, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;

    fn dfg_of(asm: &str) -> Dfg {
        let items: Vec<Item> = parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        build_dfg_from_items("t", 0, &items, LabelMode::Exact)
    }

    #[test]
    fn running_example_structure() {
        // Fig. 1/2 of the paper.
        let dfg = dfg_of(
            "ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             ldr r3, [r1]!\n\
             add r4, r2, #4",
        );
        assert_eq!(dfg.node_count(), 7);
        // ldr0 → sub1 (RAW on r3).
        let e01 = dfg
            .edges()
            .iter()
            .find(|e| e.from == 0 && e.to == 1)
            .unwrap();
        assert!(e01.kinds.contains(DepMask::DATA));
        // sub1 → add2 (RAW on r2).
        assert!(dfg.edges().iter().any(|e| e.from == 1 && e.to == 2));
        // The writeback chains the loads: 0 before 3 before 5 in the
        // partial order (the direct 0 → 3 edge is reduced away because
        // the path through sub1's anti-dependence already orders them).
        assert!(dfg.reaches(0, 3));
        assert!(dfg.reaches(3, 5));
        // Transitive reduction: no direct 0 → 5 edge.
        assert!(!dfg.edges().iter().any(|e| e.from == 0 && e.to == 5));
        // But 5 is still reachable from 0.
        assert!(dfg.reaches(0, 5));
        assert!(!dfg.reaches(2, 1));
    }

    #[test]
    fn independent_instructions_have_no_edges() {
        let dfg = dfg_of("mov r0, #1\nmov r1, #2\nmov r2, #3");
        assert_eq!(dfg.edge_count(), 0);
    }

    #[test]
    fn dep_kinds() {
        let items: Vec<Item> = parse_listing("ldr r3, [r1]\nstr r3, [r2]\nldr r3, [r4]")
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        // load → store: DATA (r3); store → load: MEM.
        let m01 = dep_between(&items[0], &items[1]);
        assert!(m01.contains(DepMask::DATA));
        let m12 = dep_between(&items[1], &items[2]);
        assert!(m12.contains(DepMask::MEM));
        // load → load on the same rd: OUTPUT.
        let m02 = dep_between(&items[0], &items[2]);
        assert!(m02.contains(DepMask::OUTPUT));
    }

    #[test]
    fn flag_dependence() {
        let dfg = dfg_of("cmp r1, #0\nmoveq r0, #1\ncmp r2, #0");
        assert!(dfg
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kinds.contains(DepMask::FLAG)));
        assert!(dfg
            .edges()
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kinds.contains(DepMask::FLAG)));
    }

    #[test]
    fn canonical_mode_merges_register_variants() {
        let items: Vec<Item> = parse_listing("add r1, r2, r3\nadd r4, r5, r6")
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        let exact = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        assert_ne!(exact.label(0), exact.label(1));
        let canonical = build_dfg_from_items("t", 0, &items, LabelMode::Canonical);
        assert_eq!(canonical.label(0), canonical.label(1));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = dfg_of("ldr r3, [r1]\nadd r2, r2, r3").to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn compiled_program_dfgs() {
        let image = gpa_minicc::compile(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i * i; return s; }",
            &gpa_minicc::Options::default(),
        )
        .unwrap();
        let program = gpa_cfg::decode_image(&image).unwrap();
        let dfgs = build_all(&program, LabelMode::Exact);
        assert!(!dfgs.is_empty());
        let nodes: usize = dfgs.iter().map(Dfg::node_count).sum();
        assert_eq!(nodes, program.instruction_count());
    }
}
