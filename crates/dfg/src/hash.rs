//! Stable content hashing for straight-line blocks.
//!
//! The batch pipeline caches per-block artifacts (the DFG and everything
//! derived from it) under a content address: two regions with the same
//! canonical item sequence build byte-identical graphs, so the artifact
//! can be computed once per corpus and reused across images, rounds and
//! runs. [`block_content_hash`] is that address.
//!
//! The hash must be **stable** — independent of process, platform, and
//! `HashMap` seeding — so it is a fixed FNV-1a/128 over a canonical
//! serialization: each item contributes its variant discriminant plus its
//! [`Item::mining_label`] (the same text the DFG uses for node labels,
//! which is injective per variant), and the [`LabelMode`] is mixed in
//! because it changes the labels the cached graph carries.

use gpa_cfg::Item;

use crate::LabelMode;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// An incremental FNV-1a/128 hasher over byte streams.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

fn item_discriminant(item: &Item) -> u8 {
    match item {
        Item::Label(_) => 0,
        Item::Insn(_) => 1,
        Item::Call { .. } => 2,
        Item::IndirectCall { .. } => 3,
        Item::Branch { .. } => 4,
        Item::TailCall { .. } => 5,
        Item::LitLoad { .. } => 6,
    }
}

/// The stable content address of a straight-line item sequence under a
/// label mode.
///
/// Two calls agree exactly when the item sequences are equal item by item
/// (same variants, same instruction text, same targets) and the label
/// modes match — precisely the condition under which
/// [`crate::build_dfg_from_items`] produces the same labels and edges.
///
/// # Examples
///
/// ```
/// use gpa_cfg::Item;
/// use gpa_dfg::{block_content_hash, LabelMode};
///
/// let a: Vec<Item> = ["ldr r3, [r1]!", "sub r2, r2, r3"]
///     .iter().map(|s| Item::Insn(s.parse().unwrap())).collect();
/// let b = a.clone();
/// assert_eq!(
///     block_content_hash(&a, LabelMode::Exact),
///     block_content_hash(&b, LabelMode::Exact),
/// );
/// assert_ne!(
///     block_content_hash(&a, LabelMode::Exact),
///     block_content_hash(&a[..1], LabelMode::Exact),
/// );
/// ```
pub fn block_content_hash(items: &[Item], mode: LabelMode) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"gpa-block/1");
    h.write(&[match mode {
        LabelMode::Exact => 0u8,
        LabelMode::Canonical => 1u8,
    }]);
    h.write_u64(items.len() as u64);
    for item in items {
        h.write(&[item_discriminant(item)]);
        let label = item.mining_label();
        h.write_u64(label.len() as u64);
        h.write(label.as_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;

    fn items(asm: &str) -> Vec<Item> {
        parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect()
    }

    #[test]
    fn equal_blocks_hash_equal() {
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3");
        let b = items("ldr r3, [r1]!\nsub r2, r2, r3");
        assert_eq!(
            block_content_hash(&a, LabelMode::Exact),
            block_content_hash(&b, LabelMode::Exact)
        );
    }

    #[test]
    fn different_blocks_hash_differently() {
        let a = items("ldr r3, [r1]!\nsub r2, r2, r3");
        let b = items("ldr r3, [r1]!\nsub r2, r2, r4");
        assert_ne!(
            block_content_hash(&a, LabelMode::Exact),
            block_content_hash(&b, LabelMode::Exact)
        );
        // Concatenation vs. split must not collide (length prefixes).
        let c = items("ldr r3, [r1]!");
        let d = items("sub r2, r2, r3");
        let mut joined = c.clone();
        joined.extend(d.clone());
        assert_ne!(
            block_content_hash(&joined, LabelMode::Exact),
            block_content_hash(&c, LabelMode::Exact)
        );
    }

    #[test]
    fn label_mode_is_part_of_the_address() {
        let a = items("add r1, r2, r3");
        assert_ne!(
            block_content_hash(&a, LabelMode::Exact),
            block_content_hash(&a, LabelMode::Canonical)
        );
    }

    #[test]
    fn order_matters() {
        let a = items("mov r0, #1\nmov r1, #2");
        let b = items("mov r1, #2\nmov r0, #1");
        assert_ne!(
            block_content_hash(&a, LabelMode::Exact),
            block_content_hash(&b, LabelMode::Exact)
        );
    }
}
