//! Degree statistics over DFG sets — the data behind Tables 2 and 3.

use crate::Dfg;

/// Degree statistics of a set of DFGs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeStats {
    /// Instructions with (in ∨ out) degree > 1 (Table 2, left column).
    pub high_degree: usize,
    /// Instructions with both degrees ≤ 1 (Table 2, right column).
    pub low_degree: usize,
    /// In-degree histogram: counts for degree 0, 1, 2, 3 and ≥ 4
    /// (Table 3).
    pub in_hist: [usize; 5],
    /// Out-degree histogram, same buckets.
    pub out_hist: [usize; 5],
}

impl DegreeStats {
    /// Total number of instructions counted.
    pub fn total(&self) -> usize {
        self.high_degree + self.low_degree
    }
}

/// Computes the paper's degree statistics over a set of DFGs.
///
/// # Examples
///
/// ```
/// use gpa_arm::parse::parse_listing;
/// use gpa_cfg::Item;
/// use gpa_dfg::{build_dfg_from_items, stats::degree_stats, LabelMode};
///
/// let items: Vec<Item> = parse_listing("ldr r3, [r1]\nadd r2, r2, r3\nadd r4, r4, r3")?
///     .into_iter().map(Item::Insn).collect();
/// let dfg = build_dfg_from_items("f", 0, &items, LabelMode::Exact);
/// let stats = degree_stats(&[dfg]);
/// assert_eq!(stats.total(), 3);
/// assert_eq!(stats.high_degree, 1); // the load fans out to both adds
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn degree_stats(dfgs: &[Dfg]) -> DegreeStats {
    let mut stats = DegreeStats::default();
    for dfg in dfgs {
        for i in 0..dfg.node_count() {
            let din = dfg.in_degree(i);
            let dout = dfg.out_degree(i);
            if din > 1 || dout > 1 {
                stats.high_degree += 1;
            } else {
                stats.low_degree += 1;
            }
            stats.in_hist[din.min(4)] += 1;
            stats.out_hist[dout.min(4)] += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dfg_from_items, LabelMode};
    use gpa_arm::parse::parse_listing;
    use gpa_cfg::Item;

    fn dfg_of(asm: &str) -> Dfg {
        let items: Vec<Item> = parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        build_dfg_from_items("t", 0, &items, LabelMode::Exact)
    }

    #[test]
    fn chain_has_no_high_degree_nodes() {
        // A plain chain: every node has in/out degree ≤ 1; per the paper
        // this is exactly the case where SFX and graph PA coincide.
        let s = degree_stats(&[dfg_of("mov r1, #1\nadd r1, r1, #2\nadd r1, r1, #3")]);
        assert_eq!(s.high_degree, 0);
        assert_eq!(s.low_degree, 3);
        assert_eq!(s.in_hist, [1, 2, 0, 0, 0]);
        assert_eq!(s.out_hist, [1, 2, 0, 0, 0]);
    }

    #[test]
    fn fan_out_counts_as_high_degree() {
        let s = degree_stats(&[dfg_of(
            "mov r1, #1\nadd r2, r1, #1\nadd r3, r1, #2\nadd r4, r1, #3",
        )]);
        assert_eq!(s.high_degree, 1);
        assert_eq!(s.out_hist[3], 1);
    }

    #[test]
    fn isolated_nodes_have_degree_zero() {
        let s = degree_stats(&[dfg_of("mov r1, #1\nmov r2, #2")]);
        assert_eq!(s.in_hist[0], 2);
        assert_eq!(s.out_hist[0], 2);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn hist_bucket_ordering_is_stable() {
        // Buckets are indexed by degree 0, 1, 2, 3, ≥4 — the array order
        // IS the degree order, which the `gpa stats --json` arrays
        // inherit. A fan-out of five lands in the saturating last bucket.
        let s = degree_stats(&[dfg_of(
            "mov r1, #1\n\
             add r2, r1, #1\n\
             add r3, r1, #2\n\
             add r4, r1, #3\n\
             add r5, r1, #4\n\
             add r6, r1, #5",
        )]);
        assert_eq!(s.out_hist, [5, 0, 0, 0, 1]);
        assert_eq!(s.in_hist, [1, 5, 0, 0, 0]);
        // The buckets partition the node set: each histogram sums to the
        // total regardless of the degree distribution.
        assert_eq!(s.in_hist.iter().sum::<usize>(), s.total());
        assert_eq!(s.out_hist.iter().sum::<usize>(), s.total());
    }

    #[test]
    fn accumulates_over_multiple_graphs() {
        let a = dfg_of("mov r1, #1");
        let b = dfg_of("mov r2, #2\nadd r2, r2, #1");
        let s = degree_stats(&[a, b]);
        assert_eq!(s.total(), 3);
    }
}
