//! Property tests for DFG construction: the reduced edge set generates
//! exactly the intrinsic dependence partial order, and every valid
//! topological order of the DFG is trace-equivalent to program order.

use proptest::prelude::*;

use gpa_arm::insn::{DpOp, Instruction};
use gpa_arm::{Cond, Reg};
use gpa_cfg::Item;
use gpa_dfg::{build_dfg_from_items, dep_between, LabelMode};

/// A pool of straight-line instructions with varied dependence structure.
fn arb_item() -> impl Strategy<Value = Item> {
    let reg = (0u8..8).prop_map(Reg::r);
    prop_oneof![
        // mov rd, #imm
        (reg.clone(), 0u32..256)
            .prop_map(|(rd, imm)| { Item::Insn(Instruction::mov_imm(rd, imm)) }),
        // add rd, rn, rm
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(rd, rn, rm)| { Item::Insn(Instruction::dp_reg(DpOp::Add, rd, rn, rm)) }),
        // ldr rd, [rn]
        (reg.clone(), reg.clone())
            .prop_map(|(rd, rn)| { Item::Insn(Instruction::ldr_imm(rd, rn, 0)) }),
        // str rd, [rn]
        (reg.clone(), reg.clone())
            .prop_map(|(rd, rn)| { Item::Insn(Instruction::str_imm(rd, rn, 0)) }),
        // cmp rn, #imm
        (reg.clone(), 0u32..16).prop_map(|(rn, imm)| {
            Item::Insn(Instruction::DataProc {
                cond: Cond::Al,
                op: DpOp::Cmp,
                set_flags: true,
                rd: Reg::r(0),
                rn,
                op2: gpa_arm::Operand2::Imm(imm),
            })
        }),
        // moveq rd, #1 (reads flags)
        reg.prop_map(|rd| {
            Item::Insn(Instruction::DataProc {
                cond: Cond::Eq,
                op: DpOp::Mov,
                set_flags: false,
                rd,
                rn: Reg::r(0),
                op2: gpa_arm::Operand2::Imm(1),
            })
        }),
    ]
}

fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(arb_item(), 1..14)
}

proptest! {
    #[test]
    fn reduced_edges_generate_the_dependence_order(items in arb_items()) {
        let dfg = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        // Every intrinsically dependent pair (i < j) must be ordered by
        // reachability in the reduced graph — and vice versa, an edge
        // implies a dependence chain exists.
        for j in 0..items.len() {
            for i in 0..j {
                let dep = !dep_between(&items[i], &items[j]).is_empty();
                if dep {
                    prop_assert!(
                        dfg.reaches(i, j),
                        "dependent pair ({i}, {j}) not ordered after reduction"
                    );
                }
            }
        }
        // Edges only connect dependent-or-chained pairs.
        for e in dfg.edges() {
            prop_assert!(e.from < e.to, "edges respect program order");
            prop_assert!(
                !dep_between(&items[e.from], &items[e.to]).is_empty(),
                "edge ({}, {}) without direct dependence",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn memory_ops_are_chained(n in 2usize..8) {
        // Alternating store/load to unknown addresses must form a chain.
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let insn = if i % 2 == 0 {
                    Instruction::str_imm(Reg::r(0), Reg::r(1), 0)
                } else {
                    Instruction::ldr_imm(Reg::r(2), Reg::r(3), 0)
                };
                Item::Insn(insn)
            })
            .collect();
        let dfg = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        for i in 0..n.saturating_sub(1) {
            prop_assert!(dfg.reaches(i, i + 1), "memory chain broken at {i}");
        }
    }

    #[test]
    fn node_count_matches_and_stats_are_consistent(items in arb_items()) {
        let dfg = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        prop_assert_eq!(dfg.node_count(), items.len());
        let stats = gpa_dfg::stats::degree_stats(std::slice::from_ref(&dfg));
        prop_assert_eq!(stats.total(), items.len());
        let in_sum: usize = stats.in_hist.iter().sum();
        prop_assert_eq!(in_sum, items.len());
        // Sum of in-degrees equals sum of out-degrees equals edge count.
        let din: usize = (0..dfg.node_count()).map(|i| dfg.in_degree(i)).sum();
        let dout: usize = (0..dfg.node_count()).map(|i| dfg.out_degree(i)).sum();
        prop_assert_eq!(din, dfg.edge_count());
        prop_assert_eq!(dout, dfg.edge_count());
    }

    #[test]
    fn arena_adjacency_matches_the_per_node_representation(items in arb_items()) {
        // The CSR arena must iterate succs/preds in exactly the order the
        // historical per-node `Vec<Vec<usize>>` layout produced: walk the
        // (from, to)-sorted edge list and push each edge onto its
        // endpoint lists, then compare against the public iterators.
        let dfg = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        let n = dfg.node_count();
        let mut succs: Vec<Vec<gpa_dfg::Edge>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<gpa_dfg::Edge>> = vec![Vec::new(); n];
        for e in dfg.edges() {
            succs[e.from].push(*e);
            preds[e.to].push(*e);
        }
        for i in 0..n {
            let arena_succs: Vec<_> = dfg.succs(i).collect();
            let arena_preds: Vec<_> = dfg.preds(i).collect();
            prop_assert_eq!(&arena_succs, &succs[i], "succ order diverged at node {}", i);
            prop_assert_eq!(&arena_preds, &preds[i], "pred order diverged at node {}", i);
            prop_assert_eq!(dfg.out_degree(i), succs[i].len());
            prop_assert_eq!(dfg.in_degree(i), preds[i].len());
        }
    }

    #[test]
    fn canonical_labels_are_coarser(items in arb_items()) {
        use std::collections::HashSet;
        let exact = build_dfg_from_items("t", 0, &items, LabelMode::Exact);
        let canon = build_dfg_from_items("t", 0, &items, LabelMode::Canonical);
        let exact_labels: HashSet<_> = (0..exact.node_count()).map(|i| exact.label(i).to_owned()).collect();
        let canon_labels: HashSet<_> = (0..canon.node_count()).map(|i| canon.label(i).to_owned()).collect();
        prop_assert!(canon_labels.len() <= exact_labels.len());
        // Same dependence structure regardless of labelling.
        prop_assert_eq!(exact.edges(), canon.edges());
    }
}
