//! Resident optimization service (`gpa serve`).
//!
//! `gpa batch` answers "optimize this corpus once"; a toolchain that
//! re-optimizes the same images as they evolve wants a *resident*
//! process whose caches stay warm between requests. This crate is that
//! process:
//!
//! * **Wire protocol** ([`proto`]) — `gpa-serve/1`, a hand-rolled
//!   length-prefixed frame format (magic, version, kind, u32 length).
//!   Requests carry per-request knobs JSON plus raw image bytes;
//!   responses carry a JSON document whose deterministic section
//!   matches a single-shot `gpa optimize` of the same image
//!   byte-for-byte. Every decode failure has a distinct error code.
//! * **Bounded queue with explicit backpressure** — at most
//!   [`ServeConfig::queue_depth`] requests wait; beyond that the server
//!   answers `overloaded` immediately (`serve.shed`) instead of letting
//!   latency grow without bound.
//! * **Worker pool over warm caches** — workers reuse the batch
//!   pipeline's [`gpa_pipeline::ReportCache`] (bounded by a
//!   [`gpa_pipeline::CacheBudget`], LRU-evicted) and a shared
//!   [`gpa::DfgCache`], so repeat images answer from memory.
//! * **Deadlines** — a per-request `deadline_ms` maps onto the
//!   optimizer's cooperative deadline and per-round pattern budget;
//!   overrunning requests return a well-formed partial document with
//!   status `deadline_exceeded`, and never hang or poison the cache.
//! * **Graceful drain** — SIGINT/SIGTERM or a Shutdown frame stops
//!   intake, finishes queued work, then exits; the trace-check identity
//!   `serve.accepted == serve.completed + serve.shed +
//!   serve.deadline_exceeded + serve.in_flight_at_drain` audits that no
//!   request was dropped on the floor.
//!
//! # Examples
//!
//! ```
//! use gpa_serve::{submit, ServeConfig, Server};
//!
//! let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())?;
//! let server = Server::start("127.0.0.1:0", ServeConfig::default())?;
//! let mut conn = std::net::TcpStream::connect(server.local_addr())?;
//! let reply = submit(&mut conn, "{\"validate\":\"off\"}", &image.to_bytes())?;
//! assert!(reply.contains("\"status\":\"ok\""));
//! server.drain();
//! let summary = server.join();
//! assert_eq!(summary.counters.get("serve.accepted"), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod proto;
mod server;

pub use proto::{
    decode_request, encode_request, read_frame, write_frame, FrameError, FrameKind, Request,
    HEADER_LEN, MAGIC, MAX_FRAME_LEN, SERVE_SCHEMA, VERSION,
};
pub use server::{send_shutdown, submit, ServeConfig, ServeSummary, Server};
