//! The `gpa-serve/1` wire protocol: hand-rolled length-prefixed frames.
//!
//! Every message on a serve connection is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"gpaS"
//! 4       1     protocol version (1)
//! 5       1     frame kind (1 = Request, 2 = Response, 3 = Shutdown)
//! 6       4     payload length, u32 big-endian (≤ 64 MiB)
//! 10      len   payload
//! ```
//!
//! A *Request* payload is itself framed: a u32 big-endian knobs length,
//! the UTF-8 JSON knobs object, then the raw image bytes. A *Response*
//! payload is the UTF-8 `gpa-serve/1` JSON document. A *Shutdown*
//! payload is empty; it asks the server to drain and exit.
//!
//! Decoding is strict and every failure mode has a distinct
//! [`FrameError`] code, so clients can tell a version skew from line
//! noise from a truncated stream. The property tests round-trip
//! arbitrary payloads (including the maximum length) and assert the
//! rejection codes for garbage prefixes and cut-off frames.

use std::io::{self, Read, Write};

/// First bytes of every frame.
pub const MAGIC: [u8; 4] = *b"gpaS";
/// Wire-protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame-header size (magic + version + kind + length).
pub const HEADER_LEN: usize = 10;
/// Upper bound on a frame payload; larger lengths are rejected before
/// any allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Version tag of the serve-response JSON schema.
pub const SERVE_SCHEMA: &str = "gpa-serve/1";

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: optimize this image with these knobs.
    Request,
    /// Server → client: the `gpa-serve/1` JSON document.
    Response,
    /// Client → server: drain the queue and exit.
    Shutdown,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Shutdown => 3,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Shutdown),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded. Each variant maps to a stable
/// diagnostic code ([`FrameError::code`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`MAGIC`] — not a gpa-serve peer.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    BadVersion(u8),
    /// The kind byte is none of Request/Response/Shutdown.
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLong(usize),
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// The stream ended cleanly at a frame boundary.
    Eof,
    /// A transport-level read/write failure.
    Io(io::ErrorKind),
}

impl FrameError {
    /// Stable machine-readable code for diagnostics and tests.
    pub fn code(&self) -> &'static str {
        match self {
            FrameError::BadMagic(_) => "bad_magic",
            FrameError::BadVersion(_) => "bad_version",
            FrameError::BadKind(_) => "bad_kind",
            FrameError::TooLong(_) => "too_long",
            FrameError::Truncated => "truncated",
            FrameError::Eof => "eof",
            FrameError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLong(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Eof => write!(f, "stream closed at a frame boundary"),
            FrameError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame. Fails with `InvalidInput` if the payload exceeds
/// [`MAX_FRAME_LEN`] (a frame that no peer would accept).
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind.to_byte();
    header[6..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes. A clean close before the first byte
/// is [`FrameError::Eof`] when `at_boundary`; any later shortfall is
/// [`FrameError::Truncated`].
fn read_exact_frame(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => {
                return Err(if pos == 0 && at_boundary {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Reads and validates one frame.
///
/// # Errors
///
/// A [`FrameError`] naming the first violation: magic, version, kind,
/// length bound, truncation, or transport failure. A clean close
/// between frames is the distinguished [`FrameError::Eof`].
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_frame(r, &mut header, true)?;
    if header[..4] != MAGIC {
        let mut seen = [0u8; 4];
        seen.copy_from_slice(&header[..4]);
        return Err(FrameError::BadMagic(seen));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let Some(kind) = FrameKind::from_byte(header[5]) else {
        return Err(FrameError::BadKind(header[5]));
    };
    let len = u32::from_be_bytes(header[6..].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLong(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_frame(r, &mut payload, false)?;
    Ok((kind, payload))
}

/// A decoded request: the per-request knobs JSON and the image bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// UTF-8 JSON object of per-request knobs (may be `{}`).
    pub knobs: String,
    /// The raw image to optimize.
    pub image: Vec<u8>,
}

/// Encodes a request payload (the body of a [`FrameKind::Request`]
/// frame): u32 big-endian knobs length, knobs JSON, image bytes.
pub fn encode_request(knobs: &str, image: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + knobs.len() + image.len());
    payload.extend_from_slice(&(knobs.len() as u32).to_be_bytes());
    payload.extend_from_slice(knobs.as_bytes());
    payload.extend_from_slice(image);
    payload
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`FrameError::Truncated`] when the payload is shorter than its own
/// knobs-length prefix claims (non-UTF-8 knobs are also rejected as
/// truncation of a valid request — the knobs field is JSON by contract).
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    if payload.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let knobs_len = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let rest = &payload[4..];
    if rest.len() < knobs_len {
        return Err(FrameError::Truncated);
    }
    let Ok(knobs) = std::str::from_utf8(&rest[..knobs_len]) else {
        return Err(FrameError::Truncated);
    };
    Ok(Request {
        knobs: knobs.to_owned(),
        image: rest[knobs_len..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"payload").unwrap();
        write_frame(&mut wire, FrameKind::Shutdown, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            (FrameKind::Request, b"payload".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), (FrameKind::Shutdown, vec![]));
        assert_eq!(read_frame(&mut r).unwrap_err(), FrameError::Eof);
    }

    #[test]
    fn request_payload_roundtrip() {
        let payload = encode_request("{\"deadline_ms\":5}", &[1, 2, 3]);
        let req = decode_request(&payload).unwrap();
        assert_eq!(req.knobs, "{\"deadline_ms\":5}");
        assert_eq!(req.image, vec![1, 2, 3]);
    }

    #[test]
    fn rejection_codes_are_distinct() {
        let mut garbage: &[u8] = b"HTTP/1.1 200 OK\r\n";
        assert_eq!(read_frame(&mut garbage).unwrap_err().code(), "bad_magic");

        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"xy").unwrap();
        wire[4] = 9;
        assert_eq!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::BadVersion(9)
        );
        wire[4] = VERSION;
        wire[5] = 77;
        assert_eq!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::BadKind(77)
        );
        wire[5] = 1;
        wire[6..10].copy_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            FrameError::TooLong(_)
        ));
    }

    #[test]
    fn truncation_is_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Response, b"0123456789").unwrap();
        // Cut inside the header and inside the payload.
        for cut in [3, HEADER_LEN + 4] {
            assert_eq!(
                read_frame(&mut &wire[..cut]).unwrap_err(),
                FrameError::Truncated
            );
        }
    }
}
