//! The resident optimization server: accept loop, bounded queue,
//! worker pool, graceful drain.
//!
//! Life of a request: a connection thread reads one frame, decodes the
//! knobs, and counts it `serve.accepted`. It then tries to enqueue a
//! job on the *bounded* queue — if the queue is full (or the server is
//! draining) the request is shed immediately with an `overloaded`
//! (`draining`) response and counted `serve.shed`; the client never
//! waits behind work the server cannot absorb. Otherwise a worker pops
//! the job, answers from the shared warm [`ReportCache`] or runs the
//! optimizer with the shared [`DfgCache`], and replies through a
//! channel; the connection thread writes the response frame. Requests
//! whose deadline expired in the queue, or whose run was cut short by
//! the in-run deadline check, are counted `serve.deadline_exceeded`
//! and answered with a well-formed (possibly partial) document —
//! deadline-cut reports are never admitted to the cache.
//!
//! Drain (SIGTERM, Ctrl-C, or a Shutdown frame) stops the accept loop
//! and the queue's intake; workers finish everything already queued, so
//! `serve.in_flight_at_drain` — jobs abandoned un-answered — is zero in
//! a graceful drain and the trace-check identity
//! `serve.accepted == serve.completed + serve.shed +
//! serve.deadline_exceeded + serve.in_flight_at_drain` holds over the
//! server's `gpa-trace/1` trace.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpa::json::Json;
use gpa::{
    image_cache_key, DfgCache, Method, Optimizer, Report, RunConfig, StageTimings, ValidateLevel,
};
use gpa_image::Image;
use gpa_pipeline::{CacheBudget, ReportCache, ShutdownFlag};
use gpa_trace::histogram::LogHistogram;
use gpa_trace::{CounterTracer, Counters, JsonlTracer, Tracer};

use crate::proto::{decode_request, read_frame, write_frame, FrameError, FrameKind, SERVE_SCHEMA};

/// Tuning for one server instance.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Bounded queue capacity; a request arriving when `queue_depth`
    /// jobs are already waiting is shed with an `overloaded` response.
    pub queue_depth: usize,
    /// Default detection method (overridable per request).
    pub method: Method,
    /// Base optimizer tuning; per-request knobs override copies of it.
    pub run: RunConfig,
    /// Directory for the persistent report-cache layer; `None` keeps
    /// the warm cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Bound on the in-memory report-cache layer. Unlike batch, the
    /// default here is bounded — a resident process must not grow
    /// without limit.
    pub cache_budget: CacheBudget,
    /// Bound on the shared per-block [`DfgCache`] (entries).
    pub dfg_entries: usize,
    /// `gpa-trace/1` JSONL trace of the server's lifetime; `None`
    /// disables tracing.
    pub trace_file: Option<PathBuf>,
    /// Drain trigger shared with the host (signals, Shutdown frames).
    pub shutdown: ShutdownFlag,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 32,
            method: Method::Edgar,
            run: RunConfig::default(),
            cache_dir: None,
            cache_budget: CacheBudget::bounded(4096, 256 << 20),
            dfg_entries: 1 << 16,
            trace_file: None,
            shutdown: ShutdownFlag::new(),
        }
    }
}

/// Per-request knob overrides, decoded from the request's JSON object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct RequestKnobs {
    method: Option<Method>,
    validate: Option<ValidateLevel>,
    deadline_ms: Option<u64>,
    max_rounds: Option<usize>,
    max_patterns: Option<usize>,
}

impl RequestKnobs {
    /// Strict parse: unknown keys and ill-typed values are errors, so a
    /// client typo degrades loudly instead of silently running with
    /// defaults.
    fn parse(text: &str) -> Result<RequestKnobs, String> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(RequestKnobs::default());
        }
        let doc = Json::parse(text).map_err(|e| format!("knobs: {e}"))?;
        let Json::Obj(pairs) = &doc else {
            return Err("knobs: expected a JSON object".into());
        };
        let mut knobs = RequestKnobs::default();
        for (key, value) in pairs {
            match key.as_str() {
                "method" => {
                    knobs.method = Some(match value.as_str() {
                        Some("sfx") => Method::Sfx,
                        Some("dgspan") => Method::DgSpan,
                        Some("edgar") => Method::Edgar,
                        _ => return Err(format!("knobs: bad method {value}")),
                    });
                }
                "validate" => {
                    knobs.validate = Some(match value.as_str() {
                        Some("off") => ValidateLevel::Off,
                        Some("final") => ValidateLevel::Final,
                        Some("every-round") => ValidateLevel::EveryRound,
                        _ => return Err(format!("knobs: bad validate {value}")),
                    });
                }
                "deadline_ms" => {
                    let Some(ms) = value.as_int().filter(|&v| v >= 0) else {
                        return Err(format!("knobs: bad deadline_ms {value}"));
                    };
                    knobs.deadline_ms = Some(ms as u64);
                }
                "max_rounds" => {
                    let Some(n) = value.as_int().filter(|&v| v > 0) else {
                        return Err(format!("knobs: bad max_rounds {value}"));
                    };
                    knobs.max_rounds = Some(n as usize);
                }
                "max_patterns" => {
                    let Some(n) = value.as_int().filter(|&v| v > 0) else {
                        return Err(format!("knobs: bad max_patterns {value}"));
                    };
                    knobs.max_patterns = Some(n as usize);
                }
                other => return Err(format!("knobs: unknown knob {other:?}")),
            }
        }
        Ok(knobs)
    }
}

/// Per-request measurements appended as the response's trailing
/// `"metrics"` object (everything before it is deterministic).
struct ResponseMetrics {
    cached: bool,
    degraded: bool,
    queue_ns: u64,
    run_ns: u64,
}

/// Builds the `gpa-serve/1` response document. Layout contract: the
/// `"metrics"` member is last, so stripping `,"metrics":.*` leaves the
/// deterministic section — the same convention the corpus report uses.
fn response_json(
    status: &str,
    report: Option<&Report>,
    error: Option<&str>,
    metrics: &ResponseMetrics,
) -> String {
    let mut doc = format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"status\":\"{status}\"");
    if let Some(report) = report {
        doc.push_str(",\"report\":");
        doc.push_str(&report.to_json().to_string());
    }
    if let Some(error) = error {
        doc.push_str(",\"error\":");
        doc.push_str(&Json::from(error).to_string());
    }
    doc.push_str(&format!(
        ",\"metrics\":{{\"cached\":{},\"degraded\":{},\"queue_ns\":{},\"run_ns\":{}}}}}",
        metrics.cached, metrics.degraded, metrics.queue_ns, metrics.run_ns
    ));
    doc
}

/// One queued request.
struct Job {
    knobs: RequestKnobs,
    image: Vec<u8>,
    enqueued_at: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

/// Queue intake outcomes.
enum Push {
    Ok,
    Full,
    Draining,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    tracer: Arc<dyn Tracer>,
    report_cache: ReportCache,
    dfg_cache: DfgCache,
    queue_hist: Mutex<LogHistogram>,
    run_hist: Mutex<LogHistogram>,
    /// Optimizer trace counters summed over every non-cached run (kept
    /// out of the server trace: its event-count identities only hold
    /// for counters whose events are in the same stream).
    job_counters: Mutex<Counters>,
}

impl Shared {
    fn try_push(&self, job: Job) -> Push {
        if self.config.shutdown.is_raised() {
            return Push::Draining;
        }
        let mut queue = self.queue.lock().expect("serve queue poisoned");
        if queue.len() >= self.config.queue_depth {
            return Push::Full;
        }
        queue.push_back(job);
        drop(queue);
        self.available.notify_one();
        Push::Ok
    }

    /// Pops the next job, blocking until one arrives or the server is
    /// draining *and* the queue is empty (graceful drain finishes all
    /// queued work).
    fn pop(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("serve queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.config.shutdown.is_raised() {
                return None;
            }
            // Bounded wait: drain can be raised by a signal handler,
            // which cannot notify the condvar.
            let (guard, _) = self
                .available
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("serve queue poisoned");
            queue = guard;
        }
    }
}

/// End-of-life accounting returned by [`Server::join`].
pub struct ServeSummary {
    /// Final trace counters (the `serve.*` family).
    pub counters: Counters,
    /// Optimizer counters summed over every non-cached run.
    pub job_counters: Counters,
    /// Queue-wait latency distribution.
    pub queue_hist: LogHistogram,
    /// Optimize/cache-lookup latency distribution.
    pub run_hist: LogHistogram,
    /// Warm report-cache statistics: (hits, misses, evicted).
    pub report_cache: (u64, u64, u64),
    /// Shared DFG-cache statistics: (hits, misses, evicted).
    pub dfg_cache: (u64, u64, u64),
}

/// A running server; dropping it without [`Server::join`] detaches the
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `listen` (e.g. `127.0.0.1:0`) and starts the accept loop
    /// and worker pool.
    ///
    /// # Errors
    ///
    /// Bind/configuration failures, and cache/trace file creation
    /// failures.
    pub fn start(listen: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let tracer: Arc<dyn Tracer> = match &config.trace_file {
            Some(path) => Arc::new(JsonlTracer::to_file(path)?),
            None => Arc::new(CounterTracer::new()),
        };
        let report_cache = match &config.cache_dir {
            Some(dir) => ReportCache::with_dir_budget(dir, config.cache_budget)?,
            None => ReportCache::with_budget(config.cache_budget),
        };
        let dfg_cache = DfgCache::bounded(config.dfg_entries);
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            tracer,
            report_cache,
            dfg_cache,
            queue_hist: Mutex::new(LogHistogram::default()),
            run_hist: Mutex::new(LogHistogram::default()),
            job_counters: Mutex::new(Counters::default()),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            local_addr,
            accept,
            workers,
        })
    }

    /// The bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful drain: stop accepting, finish queued work.
    pub fn drain(&self) {
        self.shared.config.shutdown.raise();
        self.shared.available.notify_all();
    }

    /// Whether a drain has been requested (signal, Shutdown frame, or
    /// [`Server::drain`]).
    pub fn draining(&self) -> bool {
        self.shared.config.shutdown.is_raised()
    }

    /// Waits for the accept loop, connections and workers to finish,
    /// then closes the trace and returns the final accounting. Call
    /// [`Server::drain`] first (or deliver a signal / Shutdown frame);
    /// `join` alone never initiates a stop.
    pub fn join(self) -> ServeSummary {
        let _ = self.accept.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let shared = &self.shared;
        // Workers drained everything they could; whatever is still
        // queued was abandoned un-answered. Counted even when zero so
        // the trace-check identity always has all four terms.
        let abandoned = shared.queue.lock().expect("serve queue poisoned").len() as u64;
        shared.tracer.count("serve.in_flight_at_drain", abandoned);
        shared.tracer.count("serve.completed", 0);
        shared.tracer.count("serve.shed", 0);
        shared.tracer.count("serve.deadline_exceeded", 0);
        shared.tracer.count("serve.accepted", 0);
        shared.tracer.finish();
        ServeSummary {
            counters: shared.tracer.counters(),
            job_counters: shared
                .job_counters
                .lock()
                .expect("job counters poisoned")
                .clone(),
            queue_hist: shared
                .queue_hist
                .lock()
                .expect("histogram poisoned")
                .clone(),
            run_hist: shared.run_hist.lock().expect("histogram poisoned").clone(),
            report_cache: (
                shared.report_cache.hits(),
                shared.report_cache.misses(),
                shared.report_cache.evicted(),
            ),
            dfg_cache: (
                shared.dfg_cache.hits(),
                shared.dfg_cache.misses(),
                shared.dfg_cache.evicted(),
            ),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.config.shutdown.is_raised() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || {
                    connection_loop(stream, &shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate handles.
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Serves one connection in request/response lockstep.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Short poll timeout so the thread notices a drain promptly even
    // while idle; raised for the actual frame read below.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut stream = stream;
    loop {
        if shared.config.shutdown.is_raised() {
            // Lockstep: at the top of the loop no response is owed.
            return;
        }
        // Wait for data without consuming it, so a poll timeout can
        // never strand a half-read frame.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let frame = read_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        match frame {
            Ok((FrameKind::Request, payload)) => {
                if !handle_request(&mut stream, shared, &payload) {
                    return;
                }
            }
            Ok((FrameKind::Shutdown, _)) => {
                shared.tracer.count("serve.shutdown_frames", 1);
                // Raise before acking: a client that saw the ack must be
                // able to observe the server as draining.
                shared.config.shutdown.raise();
                shared.available.notify_all();
                let metrics = ResponseMetrics {
                    cached: false,
                    degraded: false,
                    queue_ns: 0,
                    run_ns: 0,
                };
                let doc = response_json("draining", None, None, &metrics);
                let _ = write_frame(&mut stream, FrameKind::Response, doc.as_bytes());
                return;
            }
            Ok((FrameKind::Response, _)) => {
                // A client must never send Response frames.
                shared.tracer.count("serve.protocol_errors", 1);
                return;
            }
            Err(FrameError::Eof) => return,
            Err(_) => {
                shared.tracer.count("serve.protocol_errors", 1);
                return;
            }
        }
    }
}

/// Handles one decoded Request frame; returns whether the connection
/// should stay open.
fn handle_request(stream: &mut TcpStream, shared: &Arc<Shared>, payload: &[u8]) -> bool {
    let no_work = ResponseMetrics {
        cached: false,
        degraded: false,
        queue_ns: 0,
        run_ns: 0,
    };
    let request = match decode_request(payload) {
        Ok(request) => request,
        Err(_) => {
            shared.tracer.count("serve.protocol_errors", 1);
            return false;
        }
    };
    shared.tracer.count("serve.accepted", 1);
    let knobs = match RequestKnobs::parse(&request.knobs) {
        Ok(knobs) => knobs,
        Err(message) => {
            // A malformed knob is a completed (rejected) request, not a
            // protocol error: the frame itself was well-formed.
            shared.tracer.count("serve.completed", 1);
            let doc = response_json("error", None, Some(&message), &no_work);
            return write_frame(stream, FrameKind::Response, doc.as_bytes()).is_ok();
        }
    };
    let deadline = knobs
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (reply, inbox) = mpsc::channel();
    let job = Job {
        knobs,
        image: request.image,
        enqueued_at: Instant::now(),
        deadline,
        reply,
    };
    let doc = match shared.try_push(job) {
        Push::Ok => match inbox.recv() {
            Ok(doc) => doc,
            // The worker dropped the job without replying (never in a
            // graceful drain; this is the crash-path fallback).
            Err(_) => response_json("error", None, Some("request abandoned"), &no_work),
        },
        Push::Full => {
            shared.tracer.count("serve.shed", 1);
            response_json("overloaded", None, None, &no_work)
        }
        Push::Draining => {
            shared.tracer.count("serve.shed", 1);
            response_json("draining", None, None, &no_work)
        }
    };
    write_frame(stream, FrameKind::Response, doc.as_bytes()).is_ok()
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.pop() {
        let queue_ns = gpa_trace::saturating_ns(job.enqueued_at.elapsed());
        shared
            .queue_hist
            .lock()
            .expect("histogram poisoned")
            .record(queue_ns);
        let run_started = Instant::now();
        let (status, report, error, cached, degraded) = execute(shared, &job);
        let run_ns = gpa_trace::saturating_ns(run_started.elapsed());
        shared
            .run_hist
            .lock()
            .expect("histogram poisoned")
            .record(run_ns);
        shared.tracer.count(
            if status == "deadline_exceeded" {
                "serve.deadline_exceeded"
            } else {
                "serve.completed"
            },
            1,
        );
        let metrics = ResponseMetrics {
            cached,
            degraded,
            queue_ns,
            run_ns,
        };
        let doc = response_json(status, report.as_ref(), error.as_deref(), &metrics);
        // A vanished client cannot invalidate the accounting above.
        let _ = job.reply.send(doc);
    }
}

/// Runs one job to a (status, report, error, cached, degraded) tuple.
fn execute(
    shared: &Arc<Shared>,
    job: &Job,
) -> (&'static str, Option<Report>, Option<String>, bool, bool) {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        // Expired while queued: answer without burning worker time.
        return ("deadline_exceeded", None, None, false, false);
    }
    let image = match Image::from_bytes(&job.image) {
        Ok(image) => image,
        Err(e) => return ("error", None, Some(e.to_string()), false, false),
    };
    let method = job.knobs.method.unwrap_or(shared.config.method);
    let job_tracer = Arc::new(CounterTracer::new());
    let base = &shared.config.run;
    let run = RunConfig {
        validate: job.knobs.validate.unwrap_or(base.validate),
        max_rounds: job.knobs.max_rounds.unwrap_or(base.max_rounds),
        max_patterns: job.knobs.max_patterns.unwrap_or(base.max_patterns),
        deadline: job.deadline,
        tracer: Arc::clone(&job_tracer) as Arc<dyn Tracer>,
        ..base.clone()
    };
    // The key ignores tracer and deadline, so warm lookups hit across
    // requests regardless of per-request deadlines.
    let key = image_cache_key(&image, method, &run);
    if let Some(report) = shared.report_cache.get_traced(key, shared.tracer.as_ref()) {
        return ("ok", Some(report), None, true, false);
    }
    let mut timings = StageTimings::default();
    let mut optimizer = match Optimizer::from_image_configured(&image, &run, &mut timings) {
        Ok(optimizer) => optimizer,
        Err(e) => return ("error", None, Some(e.to_string()), false, false),
    };
    let outcome = optimizer.run_instrumented(method, &run, &mut timings, Some(&shared.dfg_cache));
    shared
        .job_counters
        .lock()
        .expect("job counters poisoned")
        .merge(&job_tracer.counters());
    match outcome {
        Ok(report) => {
            let degraded = job_tracer.counters().get("run.deadline_stopped") > 0;
            if degraded {
                // A deadline-cut report is valid but partial; caching it
                // would poison warm lookups for undegraded requests.
                ("deadline_exceeded", Some(report), None, false, true)
            } else {
                shared
                    .report_cache
                    .put_traced(key, &report, shared.tracer.as_ref());
                ("ok", Some(report), None, false, false)
            }
        }
        Err(e) => ("error", None, Some(e.to_string()), false, false),
    }
}

/// A blocking single-shot client for tests, the load generator and
/// `gpa submit`: sends one request frame and decodes one response.
///
/// # Errors
///
/// Transport and framing failures, or a non-Response reply.
pub fn submit(stream: &mut TcpStream, knobs: &str, image: &[u8]) -> Result<String, FrameError> {
    let payload = crate::proto::encode_request(knobs, image);
    write_frame(stream, FrameKind::Request, &payload).map_err(|e| FrameError::Io(e.kind()))?;
    let (kind, body) = read_frame(stream)?;
    if kind != FrameKind::Response {
        return Err(FrameError::BadKind(0));
    }
    String::from_utf8(body).map_err(|_| FrameError::Truncated)
}

/// Sends a Shutdown frame and waits for the `draining` ack.
///
/// # Errors
///
/// Transport and framing failures.
pub fn send_shutdown(stream: &mut TcpStream) -> Result<String, FrameError> {
    write_frame(stream, FrameKind::Shutdown, &[]).map_err(|e| FrameError::Io(e.kind()))?;
    let (_, body) = read_frame(stream)?;
    String::from_utf8(body).map_err(|_| FrameError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_parse_defaults_and_overrides() {
        assert_eq!(RequestKnobs::parse("").unwrap(), RequestKnobs::default());
        assert_eq!(RequestKnobs::parse("{}").unwrap(), RequestKnobs::default());
        let parsed = RequestKnobs::parse(
            "{\"method\":\"sfx\",\"validate\":\"off\",\"deadline_ms\":250,\
             \"max_rounds\":3,\"max_patterns\":1000}",
        )
        .unwrap();
        assert_eq!(parsed.method, Some(Method::Sfx));
        assert_eq!(parsed.validate, Some(ValidateLevel::Off));
        assert_eq!(parsed.deadline_ms, Some(250));
        assert_eq!(parsed.max_rounds, Some(3));
        assert_eq!(parsed.max_patterns, Some(1000));
    }

    #[test]
    fn knobs_parse_rejects_unknown_and_illtyped() {
        assert!(RequestKnobs::parse("{\"metod\":\"sfx\"}").is_err());
        assert!(RequestKnobs::parse("{\"deadline_ms\":-1}").is_err());
        assert!(RequestKnobs::parse("{\"max_rounds\":0}").is_err());
        assert!(RequestKnobs::parse("[1,2]").is_err());
        assert!(RequestKnobs::parse("not json").is_err());
    }

    #[test]
    fn response_layout_has_trailing_metrics() {
        let metrics = ResponseMetrics {
            cached: true,
            degraded: false,
            queue_ns: 7,
            run_ns: 9,
        };
        let doc = response_json("ok", None, None, &metrics);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(SERVE_SCHEMA)
        );
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        // The deterministic prefix is everything before `,"metrics"`.
        let cut = doc.find(",\"metrics\"").unwrap();
        assert_eq!(&doc[..cut], "{\"schema\":\"gpa-serve/1\",\"status\":\"ok\"");
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("cached"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }
}
