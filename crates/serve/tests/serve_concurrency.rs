//! End-to-end server tests: multi-client byte-identity against the
//! single-shot optimizer, queue shedding under overload, deadline
//! handling, graceful drain, and the serve counter identity.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gpa::json::Json;
use gpa::{image_cache_key, Method, Optimizer, RunConfig, ValidateLevel};
use gpa_serve::{send_shutdown, submit, ServeConfig, Server};
use gpa_trace::NoopTracer;

fn fast_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        run: RunConfig {
            validate: ValidateLevel::Off,
            ..RunConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Strips the trailing `,"metrics":…` member — the deterministic
/// section of a serve response.
fn deterministic_section(doc: &str) -> &str {
    doc.split(",\"metrics\":").next().unwrap()
}

/// Serve responses must carry exactly the single-shot optimizer's
/// report, byte for byte, from several concurrent clients at once —
/// and a repeat of the same image must answer from the warm cache with
/// the identical document.
#[test]
fn concurrent_responses_match_single_shot_optimizer_bytewise() {
    let names = ["crc", "sha", "qsort"];
    let opts = gpa_minicc::Options::default();
    let images: Vec<(&str, Vec<u8>)> = names
        .iter()
        .map(|name| {
            let image = gpa_minicc::compile_benchmark(name, &opts).unwrap();
            (*name, image.to_bytes())
        })
        .collect();

    // Single-shot ground truth, per image.
    let expected: Vec<String> = images
        .iter()
        .map(|(_, bytes)| {
            let image = gpa_image::Image::from_bytes(bytes).unwrap();
            let run = RunConfig {
                validate: ValidateLevel::Off,
                tracer: Arc::new(NoopTracer),
                ..RunConfig::default()
            };
            let mut optimizer = Optimizer::from_image(&image).unwrap();
            let report = optimizer.run_with(Method::Edgar, &run).unwrap();
            // Sanity: the serve worker addresses the same cache entry.
            let _ = image_cache_key(&image, Method::Edgar, &run);
            report.to_json().to_string()
        })
        .collect();

    let server = Server::start("127.0.0.1:0", fast_config()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for ((_, bytes), expected) in images.iter().zip(&expected) {
            scope.spawn(move || {
                // Each client its own connection; two passes so the
                // second is a warm cache hit.
                let mut conn = TcpStream::connect(addr).unwrap();
                for pass in 0..2 {
                    let doc = submit(&mut conn, "{\"validate\":\"off\"}", bytes).unwrap();
                    let parsed = Json::parse(&doc).unwrap();
                    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
                    assert_eq!(
                        deterministic_section(&doc),
                        format!(
                            "{{\"schema\":\"gpa-serve/1\",\"status\":\"ok\",\"report\":{expected}"
                        ),
                        "pass {pass}: serve report must match the single-shot optimizer"
                    );
                }
            });
        }
    });
    server.drain();
    let summary = server.join();
    assert_eq!(summary.counters.get("serve.accepted"), 6);
    assert_eq!(summary.counters.get("serve.completed"), 6);
    assert_eq!(summary.counters.get("serve.shed"), 0);
    assert_eq!(summary.counters.get("serve.in_flight_at_drain"), 0);
    // Second pass of every client hit the warm cache.
    assert!(
        summary.report_cache.0 >= 3,
        "expected warm hits, got {:?}",
        summary.report_cache
    );
}

/// With one worker and a one-deep queue, a burst must shed: the server
/// answers `overloaded` immediately instead of queueing without bound,
/// and the counter identity still balances.
#[test]
fn overload_sheds_with_immediate_overloaded_response() {
    let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())
        .unwrap()
        .to_bytes();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..fast_config()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let image = &image;
                scope.spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    // Vary max_rounds so every request is a distinct cold
                    // cache key (max_rounds is hashed into the key) and
                    // the single worker stays busy.
                    let knobs = format!("{{\"validate\":\"off\",\"max_rounds\":{}}}", 20 + i);
                    let doc = submit(&mut conn, &knobs, image).unwrap();
                    Json::parse(&doc)
                        .unwrap()
                        .get("status")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.drain();
    let summary = server.join();
    let shed = summary.counters.get("serve.shed");
    let completed = summary.counters.get("serve.completed");
    assert_eq!(
        statuses.iter().filter(|s| *s == "overloaded").count() as u64,
        shed
    );
    assert_eq!(
        statuses.iter().filter(|s| *s == "ok").count() as u64,
        completed
    );
    assert!(
        shed > 0,
        "6 concurrent cold requests must overflow a 1-deep queue"
    );
    assert_eq!(
        summary.counters.get("serve.accepted"),
        completed + shed + summary.counters.get("serve.deadline_exceeded"),
        "counter identity must balance"
    );
}

/// `deadline_ms: 0` expires in the queue: a deterministic, well-formed
/// `deadline_exceeded` response, never a hang.
#[test]
fn zero_deadline_yields_deadline_exceeded() {
    let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())
        .unwrap()
        .to_bytes();
    let server = Server::start("127.0.0.1:0", fast_config()).unwrap();
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let doc = submit(
        &mut conn,
        "{\"validate\":\"off\",\"deadline_ms\":0}",
        &image,
    )
    .unwrap();
    let parsed = Json::parse(&doc).unwrap();
    assert_eq!(
        parsed.get("status").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    server.drain();
    let summary = server.join();
    assert_eq!(summary.counters.get("serve.deadline_exceeded"), 1);
    assert_eq!(summary.counters.get("serve.completed"), 0);
}

/// Malformed knobs are a completed (rejected) request with a
/// machine-readable error — the connection survives for the next one.
#[test]
fn bad_knobs_error_keeps_the_connection_usable() {
    let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())
        .unwrap()
        .to_bytes();
    let server = Server::start("127.0.0.1:0", fast_config()).unwrap();
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let doc = submit(&mut conn, "{\"no_such_knob\":1}", &image).unwrap();
    let parsed = Json::parse(&doc).unwrap();
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
    assert!(parsed
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown knob"));
    // Same connection, now a valid request.
    let doc = submit(&mut conn, "{\"validate\":\"off\"}", &image).unwrap();
    assert_eq!(
        Json::parse(&doc)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    server.drain();
    let summary = server.join();
    assert_eq!(summary.counters.get("serve.accepted"), 2);
    assert_eq!(summary.counters.get("serve.completed"), 2);
}

/// A Shutdown frame acks `draining`, the server stops accepting, and
/// `join` returns with the identity balanced.
#[test]
fn shutdown_frame_drains_gracefully() {
    let image = gpa_minicc::compile_benchmark("crc", &gpa_minicc::Options::default())
        .unwrap()
        .to_bytes();
    let server = Server::start("127.0.0.1:0", fast_config()).unwrap();
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).unwrap();
    let doc = submit(&mut conn, "{\"validate\":\"off\"}", &image).unwrap();
    assert_eq!(
        Json::parse(&doc)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    let mut shutdown_conn = TcpStream::connect(addr).unwrap();
    let ack = send_shutdown(&mut shutdown_conn).unwrap();
    assert_eq!(
        Json::parse(&ack)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("draining")
    );
    assert!(server.draining());
    // New connections are refused (or reset) once the accept loop stops;
    // give it a beat to notice the flag.
    std::thread::sleep(Duration::from_millis(100));
    let summary = server.join();
    assert_eq!(summary.counters.get("serve.accepted"), 1);
    assert_eq!(summary.counters.get("serve.completed"), 1);
    assert_eq!(summary.counters.get("serve.shutdown_frames"), 1);
    assert_eq!(summary.counters.get("serve.in_flight_at_drain"), 0);
}
