//! Property tests for the `gpa-serve/1` frame codec: encode/decode
//! round trips (including maximum-length payloads), and rejection of
//! truncated or garbage-prefixed streams with the right error codes.

use proptest::prelude::*;

use gpa_serve::{
    decode_request, encode_request, read_frame, write_frame, FrameError, FrameKind, HEADER_LEN,
    MAGIC, MAX_FRAME_LEN,
};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Request),
        Just(FrameKind::Response),
        Just(FrameKind::Shutdown),
    ]
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_roundtrip(kind in arb_kind(), payload in arb_payload()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, kind, &payload).unwrap();
        prop_assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let decoded = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, (kind, payload));
    }

    #[test]
    fn concatenated_frames_decode_in_order(
        frames in proptest::collection::vec((arb_kind(), arb_payload()), 1..8)
    ) {
        let mut wire = Vec::new();
        for (kind, payload) in &frames {
            write_frame(&mut wire, *kind, payload).unwrap();
        }
        let mut r = wire.as_slice();
        for (kind, payload) in frames {
            prop_assert_eq!(read_frame(&mut r).unwrap(), (kind, payload));
        }
        prop_assert_eq!(read_frame(&mut r).unwrap_err(), FrameError::Eof);
    }

    #[test]
    fn any_truncation_is_rejected_as_truncated(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        cut_seed in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, &payload).unwrap();
        // Any strict prefix except the empty stream is a truncation
        // (empty is the distinguished clean Eof).
        let cut = 1 + cut_seed % (wire.len() - 1);
        prop_assert_eq!(
            read_frame(&mut &wire[..cut]).unwrap_err(),
            FrameError::Truncated
        );
        prop_assert_eq!(read_frame(&mut &wire[..0]).unwrap_err(), FrameError::Eof);
    }

    #[test]
    fn garbage_prefix_is_rejected_as_bad_magic(
        prefix in proptest::collection::vec(any::<u8>(), HEADER_LEN..64)
    ) {
        let mut prefix = prefix;
        if prefix[..4] == MAGIC {
            // (The vendored proptest has no prop_assume!; steer the rare
            // collision away from the magic instead of discarding it.)
            prefix[0] = b'X';
        }
        let err = read_frame(&mut prefix.as_slice()).unwrap_err();
        prop_assert_eq!(err.code(), "bad_magic");
    }

    #[test]
    fn request_payload_roundtrip(
        knobs in "[ -~]{0,64}",
        image in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let payload = encode_request(&knobs, &image);
        let request = decode_request(&payload).unwrap();
        prop_assert_eq!(request.knobs, knobs);
        prop_assert_eq!(request.image, image);
    }

    #[test]
    fn short_request_payload_is_truncated(
        knobs in "[ -~]{1,32}",
        image in proptest::collection::vec(any::<u8>(), 0..32),
        cut_seed in any::<usize>(),
    ) {
        let payload = encode_request(&knobs, &image);
        // Cut inside the knobs region (the image tail is legitimately
        // variable-length, so only the knobs prefix can be "short").
        let cut = cut_seed % (4 + knobs.len());
        prop_assert_eq!(
            decode_request(&payload[..cut]).unwrap_err(),
            FrameError::Truncated
        );
    }
}

/// The codec accepts a frame at exactly [`MAX_FRAME_LEN`] and rejects
/// one byte more — kept out of proptest so the 64 MiB allocation runs
/// once, not per case.
#[test]
fn max_length_boundary() {
    let payload = vec![0xA5u8; MAX_FRAME_LEN];
    let mut wire = Vec::with_capacity(HEADER_LEN + payload.len());
    write_frame(&mut wire, FrameKind::Response, &payload).unwrap();
    let (kind, decoded) = read_frame(&mut wire.as_slice()).unwrap();
    assert_eq!(kind, FrameKind::Response);
    assert_eq!(decoded.len(), MAX_FRAME_LEN);
    assert!(decoded == payload);

    // One byte over: the writer refuses, and a forged header is
    // rejected before any payload allocation.
    let over = vec![0u8; MAX_FRAME_LEN + 1];
    assert!(write_frame(&mut Vec::new(), FrameKind::Response, &over).is_err());
    let mut forged = wire[..HEADER_LEN].to_vec();
    forged[6..10].copy_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
    assert_eq!(
        read_frame(&mut forged.as_slice()).unwrap_err(),
        FrameError::TooLong(MAX_FRAME_LEN + 1)
    );
}
