//! The post-link-time rewriting pipeline: phases 1–5 of the paper.
//!
//! [`decode`](decode::decode_image) lifts a raw [`gpa_image::Image`] into a
//! rewritable [`Program`]: the binary is disassembled, partitioned into
//! functions using the symbol table, branch and call targets are replaced
//! by labels (making the code position-independent), pc-relative literal
//! loads are abstracted into [`Item::LitLoad`] (detecting the interwoven
//! literal pools of Fig. 10), and the `mov lr, pc; bx` pair is fused into
//! one indirect-call item. [`encode`](encode::encode_program) reverses the
//! transformation, laying out fresh literal pools and resolving labels, so
//! a decoded-then-reencoded program runs identically.
//!
//! [`Program::regions`] yields the straight-line regions (basic-block
//! bodies) whose data-flow graphs are mined for procedural abstraction.
//!
//! # Examples
//!
//! ```
//! use gpa_cfg::{decode_image, encode_program};
//!
//! let image = gpa_minicc::compile("int main() { return 3; }",
//!                                 &gpa_minicc::Options::default())?;
//! let program = decode_image(&image)?;
//! let rebuilt = encode_program(&program)?;
//! let out = gpa_emu::Machine::new(&rebuilt).run(100_000)?;
//! assert_eq!(out.exit_code, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod program;

pub use decode::{decode_image, decode_image_with, DecodeImageError};
pub use encode::{encode_program, EncodeProgramError};
pub use program::{FunctionCode, Item, LabelId, Literal, Program, Region, FRAGMENT_PREFIX};
