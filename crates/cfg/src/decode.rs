//! Phase 1–5: lifting a binary image into the rewritable representation.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use gpa_arm::insn::{AddressMode, DpOp, Instruction, MemOffset, MemOp, Operand2};
use gpa_arm::{decode as decode_word, Cond, Reg};
use gpa_image::{Image, SymbolKind};

use crate::program::{FunctionCode, Item, LabelId, Literal, Program};

/// Error produced while lifting an image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeImageError(String);

impl fmt::Display for DecodeImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lift image: {}", self.0)
    }
}

impl std::error::Error for DecodeImageError {}

fn err(message: impl Into<String>) -> DecodeImageError {
    DecodeImageError(message.into())
}

/// Is this instruction a pc-relative literal load, and if so at which
/// absolute address does its pool slot live?
fn literal_target(insn: &Instruction, addr: u32) -> Option<u32> {
    if let Instruction::Mem {
        op: MemOp::Ldr,
        byte: false,
        rn,
        offset: MemOffset::Imm(disp),
        mode: AddressMode::Offset,
        ..
    } = insn
    {
        if rn.is_pc() {
            return Some((addr as i64 + 8 + *disp as i64) as u32);
        }
    }
    None
}

/// Is this the first half of the `mov lr, pc; bx rm` indirect-call idiom?
fn is_mov_lr_pc(insn: &Instruction) -> bool {
    matches!(
        insn,
        Instruction::DataProc {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags: false,
            rd,
            op2: Operand2::Reg(rm),
            ..
        } if *rd == Reg::LR && rm.is_pc()
    )
}

/// Lifts a statically linked image into a [`Program`].
///
/// This performs the paper's phases 1–5: disassembly, function
/// partitioning via the symbol table, label insertion for every branch and
/// call target, detection of interwoven literal-pool data via pc-relative
/// loads, and fusing of the position-dependent indirect-call pair.
///
/// # Errors
///
/// Returns a [`DecodeImageError`] when code is not covered by function
/// symbols, a non-data word fails to disassemble, a branch leaves its
/// function without targeting another function's entry, or a literal
/// points into the middle of a function.
pub fn decode_image(image: &Image) -> Result<Program, DecodeImageError> {
    decode_image_with(image, 1)
}

/// [`decode_image`] with the per-function lifting fanned out over up to
/// `jobs` worker threads.
///
/// Functions decode independently — each one reads only the image and
/// the shared entry map — so the fan-out is a plain bounded pool over
/// the address-sorted function list with results merged back in that
/// order. The outcome is bit-identical to the sequential lift at any
/// job count, including failures: when several functions are
/// undecodable, the error reported is the one the sequential sweep
/// would have hit first.
///
/// # Errors
///
/// See [`decode_image`].
pub fn decode_image_with(image: &Image, jobs: usize) -> Result<Program, DecodeImageError> {
    // Function extents from the symbol table, sorted by address.
    let mut fn_syms: Vec<_> = image
        .symbols()
        .iter()
        .filter(|s| s.kind == SymbolKind::Function)
        .collect();
    fn_syms.sort_by_key(|s| s.addr);
    if fn_syms.is_empty() {
        return Err(err("image has no function symbols"));
    }
    let entry_by_addr: HashMap<u32, &str> =
        fn_syms.iter().map(|s| (s.addr, s.name.as_str())).collect();

    let jobs = jobs.max(1).min(fn_syms.len());
    let functions = if jobs <= 1 {
        let mut functions = Vec::with_capacity(fn_syms.len());
        for (i, sym) in fn_syms.iter().enumerate() {
            functions.push(decode_function(image, &fn_syms, i, sym, &entry_by_addr)?);
        }
        functions
    } else {
        // Bounded pool: workers claim function indices from a shared
        // counter and park results in per-function slots, so the merge
        // below reassembles the sequential order (and error priority)
        // regardless of scheduling.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<FunctionCode, DecodeImageError>>>> =
            fn_syms.iter().map(|_| Mutex::new(None)).collect();
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(sym) = fn_syms.get(i) else { return };
            let decoded = decode_function(image, &fn_syms, i, sym, &entry_by_addr);
            *slots[i].lock().expect("decode slot poisoned") = Some(decoded);
        };
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
        let mut functions = Vec::with_capacity(fn_syms.len());
        for slot in slots {
            let decoded = slot
                .into_inner()
                .expect("decode slot poisoned")
                .expect("every claimed index leaves a result");
            functions.push(decoded?);
        }
        functions
    };

    let entry = entry_by_addr
        .get(&image.entry())
        .ok_or_else(|| err("entry point is not a function symbol"))?
        .to_string();
    Ok(Program {
        functions,
        data: image.data_bytes().to_vec(),
        data_symbols: image
            .symbols()
            .iter()
            .filter(|s| s.kind == SymbolKind::Object)
            .cloned()
            .collect(),
        code_base: image.code_base(),
        data_base: image.data_base(),
        entry,
    })
}

/// Lifts one function body (three passes over its extent). Pure in
/// everything but the shared image and entry map, which makes it safe to
/// fan out across functions.
fn decode_function(
    image: &Image,
    fn_syms: &[&gpa_image::Symbol],
    i: usize,
    sym: &gpa_image::Symbol,
    entry_by_addr: &HashMap<u32, &str>,
) -> Result<FunctionCode, DecodeImageError> {
    {
        let start = sym.addr;
        let next = fn_syms
            .get(i + 1)
            .map(|s| s.addr)
            .unwrap_or_else(|| image.code_end());
        let end = if sym.size > 0 {
            (start + sym.size).min(next)
        } else {
            next
        };
        if !start.is_multiple_of(4)
            || !end.is_multiple_of(4)
            || start < image.code_base()
            || end > image.code_end()
        {
            return Err(err(format!("function `{}` has a bad extent", sym.name)));
        }

        // Pass A: scan linearly, tracking literal-pool (interwoven data)
        // words discovered through pc-relative loads. Pools follow the code
        // that references them, so a single forward sweep converges.
        let mut data_words: BTreeSet<u32> = BTreeSet::new();
        let mut decoded: BTreeMap<u32, Instruction> = BTreeMap::new();
        let mut addr = start;
        while addr < end {
            if data_words.contains(&addr) {
                addr += 4;
                continue;
            }
            let word = image
                .code_word_at(addr)
                .expect("extent checked against code section");
            match decode_word(word) {
                Ok(insn) => {
                    if let Some(target) = literal_target(&insn, addr) {
                        if !image.contains_code(target) {
                            return Err(err(format!(
                                "pc-relative load at {addr:#x} targets {target:#x} outside code"
                            )));
                        }
                        data_words.insert(target);
                    }
                    decoded.insert(addr, insn);
                }
                Err(_) => {
                    return Err(err(format!(
                        "word {word:#010x} at {addr:#x} in `{}` is neither a valid \
                         instruction nor referenced literal data",
                        sym.name
                    )));
                }
            }
            addr += 4;
        }
        // Referenced pool words may have decoded before being marked; drop
        // them from the instruction map now.
        for d in &data_words {
            decoded.remove(d);
        }

        // Pass B: collect local branch targets for label assignment.
        let mut label_addrs: BTreeSet<u32> = BTreeSet::new();
        for (&addr, insn) in &decoded {
            if let Instruction::Branch { link, offset, .. } = insn {
                let target = (addr as i64 + 8 + *offset as i64 * 4) as u32;
                let is_local = target >= start && target < end && !data_words.contains(&target);
                if is_local && !(*link && entry_by_addr.contains_key(&target)) {
                    label_addrs.insert(target);
                } else if !entry_by_addr.contains_key(&target) {
                    return Err(err(format!(
                        "branch at {addr:#x} in `{}` targets {target:#x}, which is neither \
                         local nor a function entry",
                        sym.name
                    )));
                }
            }
        }
        let labels: HashMap<u32, LabelId> = label_addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, LabelId(i as u32)))
            .collect();

        // Pass C: emit items.
        let mut items: Vec<Item> = Vec::with_capacity(decoded.len());
        let mut pending_mov_lr: Option<u32> = None;
        for (&addr, insn) in &decoded {
            if let Some(&label) = labels.get(&addr) {
                if pending_mov_lr.is_some() {
                    return Err(err(format!(
                        "label falls between mov lr, pc and bx at {addr:#x}"
                    )));
                }
                items.push(Item::Label(label));
            }
            // Fuse mov lr, pc + bx.
            if let Some(mov_addr) = pending_mov_lr.take() {
                match insn {
                    Instruction::Bx { cond: Cond::Al, rm } if *rm != Reg::LR => {
                        items.push(Item::IndirectCall { target: *rm });
                        continue;
                    }
                    _ => {
                        return Err(err(format!(
                            "mov lr, pc at {mov_addr:#x} not followed by bx"
                        )))
                    }
                }
            }
            if is_mov_lr_pc(insn) {
                pending_mov_lr = Some(addr);
                continue;
            }
            if let Some(target) = literal_target(insn, addr) {
                let value = image
                    .code_word_at(target)
                    .expect("literal targets checked in pass A");
                let Instruction::Mem { rd, .. } = insn else {
                    unreachable!("literal_target only matches loads")
                };
                let lit = match entry_by_addr.get(&value) {
                    Some(name) => Literal::Code((*name).to_string()),
                    None => {
                        if image.contains_code(value) {
                            return Err(err(format!(
                                "literal at {target:#x} holds {value:#x}: a code address \
                                 that is not a function entry"
                            )));
                        }
                        Literal::Word(value)
                    }
                };
                items.push(Item::LitLoad { rd: *rd, lit });
                continue;
            }
            if let Instruction::Branch { cond, link, offset } = insn {
                let target = (addr as i64 + 8 + *offset as i64 * 4) as u32;
                if let Some(&label) = labels.get(&target) {
                    if *link {
                        return Err(err(format!("bl at {addr:#x} targets a local label")));
                    }
                    items.push(Item::Branch {
                        cond: *cond,
                        target: label,
                    });
                } else {
                    let name = entry_by_addr
                        .get(&target)
                        .ok_or_else(|| err(format!("unresolved branch target {target:#x}")))?;
                    items.push(if *link {
                        Item::Call {
                            cond: *cond,
                            target: (*name).to_string(),
                        }
                    } else {
                        Item::TailCall {
                            cond: *cond,
                            target: (*name).to_string(),
                        }
                    });
                }
                continue;
            }
            items.push(Item::Insn(*insn));
        }
        if pending_mov_lr.is_some() {
            return Err(err("function ends inside an indirect-call pair".to_string()));
        }

        Ok(FunctionCode {
            name: sym.name.clone(),
            address_taken: sym.address_taken,
            items,
            label_count: labels.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_minicc::{compile, Options};

    fn lift(src: &str) -> Program {
        decode_image(&compile(src, &Options::default()).unwrap()).unwrap()
    }

    #[test]
    fn lifts_trivial_program() {
        let p = lift("int main() { return 3; }");
        assert!(p.function("main").is_some());
        assert!(p.function("_start").is_some());
        assert_eq!(p.entry, "_start");
        // _start: bl main; swi #0.
        let start = p.function("_start").unwrap();
        assert!(matches!(&start.items[0], Item::Call { target, .. } if target == "main"));
        assert!(matches!(
            &start.items[1],
            Item::Insn(Instruction::Swi { imm: 0, .. })
        ));
    }

    #[test]
    fn literal_pools_become_litloads() {
        let p = lift("int counter = 5; int main() { return counter; }");
        let main = p.function("main").unwrap();
        let litloads: Vec<_> = main
            .items
            .iter()
            .filter(|i| matches!(i, Item::LitLoad { .. }))
            .collect();
        assert!(!litloads.is_empty(), "main reads `counter` via a pool");
        // The pool word itself must not appear as an instruction.
        assert!(main.items.iter().all(|i| !matches!(
            i,
            Item::Insn(Instruction::Mem { rn, .. }) if rn.is_pc()
        )));
    }

    #[test]
    fn function_pointer_literals_are_symbolic() {
        let p = lift(
            "int twice(int x) { return x + x; }\n\
             int apply(int f, int x) { return f(x); }\n\
             int main() { return apply(twice, 4); }",
        );
        let main = p.function("main").unwrap();
        assert!(main.items.iter().any(|i| matches!(
            i,
            Item::LitLoad { lit: Literal::Code(name), .. } if name == "twice"
        )));
        let apply = p.function("apply").unwrap();
        assert!(apply
            .items
            .iter()
            .any(|i| matches!(i, Item::IndirectCall { .. })));
    }

    #[test]
    fn branches_become_labels() {
        let p = lift("int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }");
        let main = p.function("main").unwrap();
        assert!(main.label_count >= 2);
        let labels = main
            .items
            .iter()
            .filter(|i| matches!(i, Item::Label(_)))
            .count();
        assert_eq!(labels as u32, main.label_count);
        assert!(main.items.iter().any(|i| matches!(i, Item::Branch { .. })));
    }

    #[test]
    fn round_trip_instruction_counts() {
        let p = lift("int main() { return 42; }");
        // Lifted instruction count = code words minus pool words.
        assert!(p.instruction_count() > 0);
        for f in &p.functions {
            assert!(f.encoded_words() > 0, "{} is non-empty", f.name);
        }
    }

    #[test]
    fn regions_of_compiled_program() {
        let p = lift("int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }");
        let regions = p.regions();
        assert!(regions.len() >= 4);
        // No region contains a label.
        for r in &regions {
            assert!(r.items.iter().all(|i| !matches!(i, Item::Label(_))));
        }
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let image = compile(
            "int h(int x) { return x * 3 + 1; }\n\
             int a(int x, int y) { return h(x) * h(y); }\n\
             int b(int x, int y) { return h(x) + h(y); }\n\
             int main() { int s = 0; for (int i = 0; i < 5; i++) s += a(i, i + 1) - b(i, s); \
             putint(s); return s; }",
            &Options::default(),
        )
        .unwrap();
        let sequential = decode_image(&image).unwrap();
        for jobs in [2, 3, 8, 64] {
            let parallel = decode_image_with(&image, jobs).unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_decode_reports_the_first_error_in_address_order() {
        // Two undecodable functions: every job count must surface the
        // error of the lower-addressed one, exactly like the sequential
        // sweep.
        let mut image = gpa_image::Image::new(0x8000, 0x2_0000);
        image.push_code_word(0xffff_ffff); // bad word in `f`
        image.push_code_word(0xffff_ffff); // bad word in `g`
        image.add_symbol(gpa_image::Symbol::function("f", 0x8000, 4));
        image.add_symbol(gpa_image::Symbol::function("g", 0x8004, 4));
        let sequential = decode_image(&image).unwrap_err();
        assert!(format!("{sequential}").contains("`f`"), "{sequential}");
        for jobs in [2, 8] {
            let parallel = decode_image_with(&image, jobs).unwrap_err();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn rejects_garbage_image() {
        let mut image = gpa_image::Image::new(0x8000, 0x2_0000);
        image.push_code_word(0xffff_ffff);
        image.add_symbol(gpa_image::Symbol::function("f", 0x8000, 4));
        assert!(decode_image(&image).is_err());
        let empty = gpa_image::Image::new(0x8000, 0x2_0000);
        assert!(decode_image(&empty).is_err());
    }
}
