//! The rewritable program representation.

use std::fmt;

use gpa_arm::reg::RegSet;
use gpa_arm::{Cond, Effects, Instruction, Reg};

/// Name prefix of procedures created by fragment extraction.
///
/// Extracted fragments are *not* ABI-conforming: they read and write
/// whatever registers and stack slots the original code did. Calls to
/// them are therefore modelled as full dependence barriers (see
/// [`Item::effects`]) so no later pass reorders code across them — and,
/// as a consequence, they are never swept into another fragment.
pub const FRAGMENT_PREFIX: &str = "__gpa_frag";

/// A function-local label identifier. Labels are dense indices within one
/// [`FunctionCode`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabelId(pub u32);

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// What a literal-pool entry resolves to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// A raw 32-bit word: a constant or an address into the (immovable)
    /// data section.
    Word(u32),
    /// The address of a function (an address-taken function pointer);
    /// re-resolved after code moves.
    Code(String),
}

/// One item of the position-independent instruction stream.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Item {
    /// A label definition.
    Label(LabelId),
    /// A concrete instruction with no position-dependent fields. Includes
    /// returns (`bx lr`, `pop {…, pc}`) and `swi`.
    Insn(Instruction),
    /// A direct call `bl function`.
    Call {
        /// Condition code.
        cond: Cond,
        /// Callee name.
        target: String,
    },
    /// The fused `mov lr, pc; bx rm` indirect-call idiom (kept as one unit
    /// because the `mov lr, pc` is position-dependent relative to the
    /// `bx`).
    IndirectCall {
        /// Register holding the callee address.
        target: Reg,
    },
    /// A (possibly conditional) branch to a local label.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Target label.
        target: LabelId,
    },
    /// A branch (without link) to another function's entry — produced by
    /// cross-jump/tail-merge extraction.
    TailCall {
        /// Condition code.
        cond: Cond,
        /// Target function name.
        target: String,
    },
    /// A pc-relative literal-pool load, abstracted away from its pool
    /// address.
    LitLoad {
        /// Destination register.
        rd: Reg,
        /// What the pool slot holds.
        lit: Literal,
    },
}

impl Item {
    /// Whether the item transfers control (ends a straight-line region):
    /// branches and instructions writing `pc`. Calls do *not* end regions.
    pub fn is_region_terminator(&self) -> bool {
        match self {
            Item::Branch { .. } | Item::TailCall { .. } => true,
            Item::Insn(i) => i.effects().defs.contains(Reg::PC),
            Item::Label(_)
            | Item::Call { .. }
            | Item::IndirectCall { .. }
            | Item::LitLoad { .. } => false,
        }
    }

    /// Whether this item is a return-like terminator (`bx lr`,
    /// `pop {…, pc}`) — the cross-jump candidates of the paper.
    pub fn is_return(&self) -> bool {
        match self {
            Item::Insn(i) => i.effects().defs.contains(Reg::PC),
            _ => false,
        }
    }

    /// Number of machine words the item occupies when encoded.
    pub fn encoded_words(&self) -> usize {
        match self {
            Item::Label(_) => 0,
            Item::IndirectCall { .. } => 2,
            _ => 1,
        }
    }

    /// The dependence footprint used for data-flow-graph construction and
    /// scheduling. Calls clobber the caller-saved state conservatively.
    pub fn effects(&self) -> Effects {
        match self {
            Item::Label(_) => Effects::default(),
            Item::Insn(i) => i.effects(),
            Item::Call { cond, target } => {
                if target.starts_with(FRAGMENT_PREFIX) {
                    // Extracted fragments touch arbitrary caller state;
                    // calling them is a full barrier.
                    return Effects {
                        uses: RegSet(0xffff),
                        defs: RegSet(0xffff),
                        reads_flags: true,
                        writes_flags: true,
                        reads_mem: true,
                        writes_mem: true,
                    };
                }
                let mut fx = call_effects();
                fx.reads_flags |= !cond.is_always();
                fx
            }
            Item::IndirectCall { target } => {
                let mut fx = call_effects();
                fx.uses.insert(*target);
                fx
            }
            Item::Branch { cond, .. } | Item::TailCall { cond, .. } => Effects {
                uses: RegSet::EMPTY,
                defs: RegSet::of(&[Reg::PC]),
                reads_flags: !cond.is_always(),
                writes_flags: false,
                reads_mem: false,
                writes_mem: false,
            },
            Item::LitLoad { rd, .. } => Effects {
                uses: RegSet::EMPTY,
                defs: RegSet::of(&[*rd]),
                reads_flags: false,
                writes_flags: false,
                // Pool data is immutable; a literal load does not alias
                // program memory.
                reads_mem: false,
                writes_mem: false,
            },
        }
    }

    /// A stable textual label for this item, used as the node label in
    /// data-flow graphs (two items with equal labels are mining-equal).
    pub fn mining_label(&self) -> String {
        match self {
            Item::Label(l) => format!("label {l}"),
            Item::Insn(i) => i.to_string(),
            Item::Call { cond, target } => format!("bl{cond} {target}"),
            Item::IndirectCall { target } => format!("call* {target}"),
            Item::Branch { cond, target } => format!("b{cond} {target}"),
            Item::TailCall { cond, target } => format!("b{cond} {target}"),
            Item::LitLoad { rd, lit } => match lit {
                Literal::Word(w) => format!("ldr {rd}, ={w:#x}"),
                Literal::Code(f) => format!("ldr {rd}, =&{f}"),
            },
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Label(l) => write!(f, "{l}:"),
            other => write!(f, "    {}", other.mining_label()),
        }
    }
}

/// The caller-visible footprint of any call: arguments read, results and
/// scratch clobbered, memory and flags conservatively touched.
fn call_effects() -> Effects {
    Effects {
        uses: RegSet::of(&[Reg::r(0), Reg::r(1), Reg::r(2), Reg::r(3), Reg::SP]),
        defs: RegSet::of(&[
            Reg::r(0),
            Reg::r(1),
            Reg::r(2),
            Reg::r(3),
            Reg::r(12),
            Reg::LR,
        ]),
        reads_flags: false,
        writes_flags: true,
        reads_mem: true,
        writes_mem: true,
    }
}

/// A function in rewritable form.
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionCode {
    /// Function name.
    pub name: String,
    /// Whether the function's address escapes (affects nothing inside the
    /// rewriting passes today, but is carried through to the output symbol
    /// table).
    pub address_taken: bool,
    /// The position-independent instruction stream.
    pub items: Vec<Item>,
    /// Number of labels (label ids are `0..label_count`).
    pub label_count: u32,
}

impl FunctionCode {
    /// Total machine words the function body will occupy (without pools).
    pub fn encoded_words(&self) -> usize {
        self.items.iter().map(Item::encoded_words).sum()
    }

    /// The maximal straight-line regions of this function: runs of
    /// non-label items that end at (and include) a region terminator.
    /// These are the basic-block bodies whose DFGs are mined.
    pub fn regions(&self) -> Vec<Region<'_>> {
        let mut regions = Vec::new();
        let mut start = None::<usize>;
        for (i, item) in self.items.iter().enumerate() {
            match item {
                Item::Label(_) => {
                    if let Some(s) = start.take() {
                        regions.push(Region {
                            function: &self.name,
                            start: s,
                            items: &self.items[s..i],
                        });
                    }
                }
                _ => {
                    if start.is_none() {
                        start = Some(i);
                    }
                    if item.is_region_terminator() {
                        let s = start.take().expect("start set above");
                        regions.push(Region {
                            function: &self.name,
                            start: s,
                            items: &self.items[s..=i],
                        });
                    }
                }
            }
        }
        if let Some(s) = start {
            regions.push(Region {
                function: &self.name,
                start: s,
                items: &self.items[s..],
            });
        }
        regions
    }

    /// Allocates a fresh label id.
    pub fn fresh_label(&mut self) -> LabelId {
        let id = LabelId(self.label_count);
        self.label_count += 1;
        id
    }
}

/// A straight-line region (basic-block body) inside a function.
#[derive(Clone, Copy, Debug)]
pub struct Region<'a> {
    /// Owning function name.
    pub function: &'a str,
    /// Index of the first item within the function's item list.
    pub start: usize,
    /// The items of the region (no labels inside).
    pub items: &'a [Item],
}

impl Region<'_> {
    /// Number of items in the region.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl FunctionCode {
    /// Renders the function as annotated assembly (labels unindented,
    /// items indented) — the disassembly listing of the lifted binary.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}:", self.name);
        for item in &self.items {
            let _ = writeln!(out, "{item}");
        }
        out
    }
}

/// A whole program in rewritable form, plus everything needed to re-encode
/// it (data section, object symbols, bases).
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// Functions in layout order.
    pub functions: Vec<FunctionCode>,
    /// The immutable data section.
    pub data: Vec<u8>,
    /// Data-object symbols carried through to the output.
    pub data_symbols: Vec<gpa_image::Symbol>,
    /// Code section base address.
    pub code_base: u32,
    /// Data section base address.
    pub data_base: u32,
    /// Name of the entry function.
    pub entry: String,
}

impl Program {
    /// Total instruction count across all functions (machine words,
    /// excluding literal pools) — the "# instructions" of Table 1.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(FunctionCode::encoded_words).sum()
    }

    /// All straight-line regions of the program.
    pub fn regions(&self) -> Vec<Region<'_>> {
        self.functions
            .iter()
            .flat_map(FunctionCode::regions)
            .collect()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionCode> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Renders the whole program as an annotated assembly listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            out.push_str(&f.listing());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    #[test]
    fn regions_split_at_labels_and_branches() {
        let f = FunctionCode {
            name: "f".into(),
            address_taken: false,
            items: vec![
                Item::Label(LabelId(0)),
                insn("mov r0, #1"),
                Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(1),
                },
                insn("mov r1, #2"),
                Item::Label(LabelId(1)),
                insn("mov r2, #3"),
                insn("bx lr"),
            ],
            label_count: 2,
        };
        let regions = f.regions();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].len(), 2); // mov + branch
        assert_eq!(regions[1].len(), 1); // mov r1
        assert_eq!(regions[2].len(), 2); // mov r2 + bx lr (return included)
        assert!(regions[2].items[1].is_return());
    }

    #[test]
    fn calls_do_not_terminate_regions() {
        let f = FunctionCode {
            name: "f".into(),
            address_taken: false,
            items: vec![
                insn("mov r0, #1"),
                Item::Call {
                    cond: Cond::Al,
                    target: "g".into(),
                },
                insn("mov r1, #2"),
            ],
            label_count: 0,
        };
        assert_eq!(f.regions().len(), 1);
        assert_eq!(f.regions()[0].len(), 3);
    }

    #[test]
    fn call_effects_are_conservative() {
        let call = Item::Call {
            cond: Cond::Al,
            target: "g".into(),
        };
        let fx = call.effects();
        assert!(fx.defs.contains(Reg::LR));
        assert!(fx.defs.contains(Reg::r(0)));
        assert!(fx.writes_mem && fx.reads_mem);
        assert!(fx.writes_flags);
    }

    #[test]
    fn mining_labels_distinguish_targets() {
        let a = Item::Call {
            cond: Cond::Al,
            target: "f".into(),
        };
        let b = Item::Call {
            cond: Cond::Al,
            target: "g".into(),
        };
        assert_ne!(a.mining_label(), b.mining_label());
        let w = Item::LitLoad {
            rd: Reg::r(1),
            lit: Literal::Word(0x2_0000),
        };
        let c = Item::LitLoad {
            rd: Reg::r(1),
            lit: Literal::Code("f".into()),
        };
        assert_ne!(w.mining_label(), c.mining_label());
    }

    #[test]
    fn encoded_words_counts_fused_pair() {
        let f = FunctionCode {
            name: "f".into(),
            address_taken: false,
            items: vec![
                Item::Label(LabelId(0)),
                Item::IndirectCall { target: Reg::r(4) },
                insn("bx lr"),
            ],
            label_count: 1,
        };
        assert_eq!(f.encoded_words(), 3);
    }
}
