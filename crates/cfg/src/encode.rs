//! Re-encoding a rewritten [`Program`] into an executable image.
//!
//! The inverse of [`crate::decode_image`]: functions are laid out in
//! order, each followed by a freshly built literal pool; labels, calls and
//! literal references are resolved to concrete addresses. Because the data
//! section never moves, `Literal::Word` values remain valid; function
//! addresses (`Literal::Code`) are re-resolved against the new layout.

use std::collections::HashMap;
use std::fmt;

use gpa_arm::insn::{AddressMode, MemOffset, MemOp};
use gpa_arm::{Cond, Instruction, Reg};
use gpa_image::{Image, Symbol};

use crate::program::{FunctionCode, Item, LabelId, Literal, Program};

/// Error produced while re-encoding a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeProgramError(String);

impl fmt::Display for EncodeProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode program: {}", self.0)
    }
}

impl std::error::Error for EncodeProgramError {}

fn err(message: impl Into<String>) -> EncodeProgramError {
    EncodeProgramError(message.into())
}

struct FnLayout {
    base: u32,
    labels: HashMap<LabelId, u32>,
    pool: Vec<(Literal, u32)>,
    size_bytes: u32,
}

fn layout_function(f: &FunctionCode, base: u32) -> FnLayout {
    let mut labels = HashMap::new();
    let mut pool_keys: Vec<Literal> = Vec::new();
    let mut offset = 0u32;
    for item in &f.items {
        match item {
            Item::Label(id) => {
                labels.insert(*id, base + offset);
            }
            Item::LitLoad { lit, .. } => {
                if !pool_keys.contains(lit) {
                    pool_keys.push(lit.clone());
                }
                offset += 4;
            }
            other => offset += 4 * other.encoded_words() as u32,
        }
    }
    let pool_base = base + offset;
    let pool: Vec<(Literal, u32)> = pool_keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, pool_base + 4 * i as u32))
        .collect();
    let size_bytes = offset + 4 * pool.len() as u32;
    FnLayout {
        base,
        labels,
        pool,
        size_bytes,
    }
}

/// Re-encodes a program into an executable [`Image`].
///
/// # Errors
///
/// Returns an [`EncodeProgramError`] on unresolved labels or call targets,
/// literal pools out of `ldr` range, or instructions whose fields have no
/// encoding.
pub fn encode_program(program: &Program) -> Result<Image, EncodeProgramError> {
    // Pass 1: function layout.
    let mut layouts: Vec<FnLayout> = Vec::with_capacity(program.functions.len());
    let mut fn_addr: HashMap<&str, u32> = HashMap::new();
    let mut cursor = program.code_base;
    for f in &program.functions {
        let layout = layout_function(f, cursor);
        cursor = layout.base + layout.size_bytes;
        if fn_addr.insert(f.name.as_str(), layout.base).is_some() {
            return Err(err(format!("duplicate function `{}`", f.name)));
        }
        layouts.push(layout);
    }

    // Pass 2: encode.
    let mut image = Image::new(program.code_base, program.data_base);
    for (f, layout) in program.functions.iter().zip(&layouts) {
        let mut addr = layout.base;
        let emit = |image: &mut Image, insn: Instruction, addr: &mut u32| {
            let word = insn
                .encode()
                .map_err(|e| err(format!("in `{}`: {insn}: {e}", f.name)))?;
            image.push_code_word(word);
            *addr += 4;
            Ok::<(), EncodeProgramError>(())
        };
        let branch_to = |target: u32, addr: u32| ((target as i64 - (addr as i64 + 8)) / 4) as i32;
        for item in &f.items {
            match item {
                Item::Label(_) => {}
                Item::Insn(insn) => emit(&mut image, *insn, &mut addr)?,
                Item::Call { cond, target } | Item::TailCall { cond, target } => {
                    let dest = *fn_addr
                        .get(target.as_str())
                        .ok_or_else(|| err(format!("call to undefined `{target}`")))?;
                    let link = matches!(item, Item::Call { .. });
                    emit(
                        &mut image,
                        Instruction::Branch {
                            cond: *cond,
                            link,
                            offset: branch_to(dest, addr),
                        },
                        &mut addr,
                    )?;
                }
                Item::Branch { cond, target } => {
                    let dest = *layout
                        .labels
                        .get(target)
                        .ok_or_else(|| err(format!("undefined label {target} in `{}`", f.name)))?;
                    emit(
                        &mut image,
                        Instruction::Branch {
                            cond: *cond,
                            link: false,
                            offset: branch_to(dest, addr),
                        },
                        &mut addr,
                    )?;
                }
                Item::IndirectCall { target } => {
                    emit(
                        &mut image,
                        Instruction::mov_reg(Reg::LR, Reg::PC),
                        &mut addr,
                    )?;
                    emit(
                        &mut image,
                        Instruction::Bx {
                            cond: Cond::Al,
                            rm: *target,
                        },
                        &mut addr,
                    )?;
                }
                Item::LitLoad { rd, lit } => {
                    let pool_addr = layout
                        .pool
                        .iter()
                        .find(|(k, _)| k == lit)
                        .map(|&(_, a)| a)
                        .expect("layout pass recorded every literal");
                    let disp = pool_addr as i64 - (addr as i64 + 8);
                    if disp.abs() >= 4096 {
                        return Err(err(format!(
                            "literal pool out of range in `{}` ({disp} bytes)",
                            f.name
                        )));
                    }
                    emit(
                        &mut image,
                        Instruction::Mem {
                            cond: Cond::Al,
                            op: MemOp::Ldr,
                            byte: false,
                            rd: *rd,
                            rn: Reg::PC,
                            offset: MemOffset::Imm(disp as i32),
                            mode: AddressMode::Offset,
                        },
                        &mut addr,
                    )?;
                }
            }
        }
        for (lit, _) in &layout.pool {
            let word = match lit {
                Literal::Word(w) => *w,
                Literal::Code(name) => *fn_addr
                    .get(name.as_str())
                    .ok_or_else(|| err(format!("literal references undefined `{name}`")))?,
            };
            image.push_code_word(word);
        }
    }

    // Data, symbols, entry.
    for f in program.functions.iter().zip(&layouts) {
        let (f, layout) = f;
        let mut sym = Symbol::function(f.name.clone(), layout.base, layout.size_bytes);
        if f.address_taken {
            sym = sym.with_address_taken();
        }
        image.add_symbol(sym);
    }
    for sym in &program.data_symbols {
        image.add_symbol(sym.clone());
    }
    image.push_data(&program.data);
    let entry = *fn_addr
        .get(program.entry.as_str())
        .ok_or_else(|| err(format!("entry function `{}` missing", program.entry)))?;
    image.set_entry(entry);
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_image;
    use gpa_emu::Machine;
    use gpa_minicc::{compile, compile_benchmark, Options};

    /// Compile → run; decode → re-encode → run; outputs must match.
    fn round_trip(src: &str) {
        let image = compile(src, &Options::default()).unwrap();
        let before = Machine::new(&image).run(50_000_000).unwrap();
        let program = decode_image(&image).unwrap();
        let rebuilt = encode_program(&program).unwrap();
        let after = Machine::new(&rebuilt).run(50_000_000).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn round_trip_simple() {
        round_trip("int main() { return 11; }");
    }

    #[test]
    fn round_trip_control_flow_and_data() {
        round_trip(
            "int table[6] = {3, 1, 4, 1, 5, 9};\n\
             char *msg = \"pi\";\n\
             int main() {\n\
               int s = 0;\n\
               for (int i = 0; i < 6; i++) s = s * 10 + table[i];\n\
               putstr(msg); putint(s);\n\
               return 0; }",
        );
    }

    #[test]
    fn round_trip_function_pointers() {
        round_trip(
            "int twice(int x) { return x + x; }\n\
             int apply(int f, int x) { return f(x); }\n\
             int main() { putint(apply(twice, 21)); return 0; }",
        );
    }

    #[test]
    fn round_trip_division_and_recursion() {
        round_trip(
            "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n\
             int main() { putint(fact(7) / 10 % 1000); return 0; }",
        );
    }

    #[test]
    fn round_trip_benchmark_crc() {
        let image = compile_benchmark("crc", &Options::default()).unwrap();
        let before = Machine::new(&image).run(400_000_000).unwrap();
        let rebuilt = encode_program(&decode_image(&image).unwrap()).unwrap();
        let after = Machine::new(&rebuilt).run(400_000_000).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn re_encoded_image_lifts_again() {
        // decode ∘ encode is idempotent on the item streams.
        let image = compile(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i * i; return s; }",
            &Options::default(),
        )
        .unwrap();
        let p1 = decode_image(&image).unwrap();
        let rebuilt = encode_program(&p1).unwrap();
        let p2 = decode_image(&rebuilt).unwrap();
        assert_eq!(p1.instruction_count(), p2.instruction_count());
        for (a, b) in p1.functions.iter().zip(&p2.functions) {
            assert_eq!(a.items, b.items, "function {}", a.name);
        }
    }
}
