//! Property tests: randomly built programs survive encode → decode with
//! their item streams intact (the rewriting pipeline's fundamental
//! invariant), and the listings stay parseable.

use proptest::prelude::*;

use gpa_arm::insn::{DpOp, Instruction};
use gpa_arm::{Cond, Reg};
use gpa_cfg::{decode_image, encode_program, FunctionCode, Item, LabelId, Literal, Program};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..11).prop_map(Reg::r)
}

/// Straight-line items that are always encodable and position-independent.
fn arb_body_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        (arb_reg(), 0u32..256).prop_map(|(rd, imm)| Item::Insn(Instruction::mov_imm(rd, imm))),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| Item::Insn(Instruction::dp_reg(
            DpOp::Add,
            rd,
            rn,
            rm
        ))),
        (arb_reg(), arb_reg()).prop_map(|(rd, rn)| Item::Insn(Instruction::ldr_imm(rd, rn, 4))),
        (arb_reg(), any::<u32>()).prop_map(|(rd, value)| Item::LitLoad {
            rd,
            lit: Literal::Word(value),
        }),
        (arb_reg(),).prop_map(|(target,)| Item::IndirectCall { target }),
    ]
}

/// A function: optional label + body + branch-to-label-or-return shape
/// that is structurally valid for the encoder.
fn arb_function(index: usize) -> impl Strategy<Value = FunctionCode> {
    (
        proptest::collection::vec(arb_body_item(), 1..12),
        any::<bool>(),
    )
        .prop_map(move |(mut body, with_loop)| {
            let mut items = Vec::new();
            let mut label_count = 0;
            if with_loop {
                items.push(Item::Label(LabelId(0)));
                label_count = 1;
            }
            items.append(&mut body);
            if with_loop {
                items.push(Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(0),
                });
            }
            items.push(Item::Insn(Instruction::ret()));
            FunctionCode {
                name: format!("f{index}"),
                address_taken: false,
                items,
                label_count,
            }
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(any::<bool>(), 1..5)
        .prop_flat_map(|shape| {
            let functions: Vec<_> = shape
                .iter()
                .enumerate()
                .map(|(i, _)| arb_function(i))
                .collect();
            functions
        })
        .prop_map(|mut functions| {
            // Add call edges: every function calls the next one.
            let names: Vec<String> = functions.iter().map(|f| f.name.clone()).collect();
            for (i, f) in functions.iter_mut().enumerate() {
                if i + 1 < names.len() {
                    f.items.insert(
                        0,
                        Item::Call {
                            cond: Cond::Al,
                            target: names[i + 1].clone(),
                        },
                    );
                }
            }
            let entry = functions[0].name.clone();
            Program {
                functions,
                data: vec![1, 2, 3, 4],
                data_symbols: Vec::new(),
                code_base: 0x8000,
                data_base: 0x2_0000,
                entry,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_preserves_items(program in arb_program()) {
        let image = encode_program(&program).expect("generated programs encode");
        let back = decode_image(&image).expect("own encodings lift");
        prop_assert_eq!(back.functions.len(), program.functions.len());
        for (a, b) in program.functions.iter().zip(&back.functions) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.items, &b.items, "function {}", a.name);
        }
        prop_assert_eq!(&back.entry, &program.entry);
        prop_assert_eq!(&back.data, &program.data);
    }

    #[test]
    fn instruction_count_matches_layout(program in arb_program()) {
        let image = encode_program(&program).expect("generated programs encode");
        let back = decode_image(&image).expect("own encodings lift");
        prop_assert_eq!(back.instruction_count(), program.instruction_count());
        // Code section = instructions + literal pools.
        prop_assert!(image.code_len() >= program.instruction_count());
    }

    #[test]
    fn listings_are_stable(program in arb_program()) {
        let listing = program.listing();
        for f in &program.functions {
            let header = format!("{}:", f.name);
            prop_assert!(listing.contains(&header), "missing {header}");
        }
    }
}
