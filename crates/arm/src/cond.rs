//! ARM condition codes.

use std::fmt;
use std::str::FromStr;

/// An ARM condition code, encoded in the top four bits of every instruction.
///
/// [`Cond::Al`] ("always") is the unconditional case and is printed as the
/// empty suffix.
///
/// # Examples
///
/// ```
/// use gpa_arm::Cond;
///
/// assert_eq!(Cond::Eq.to_string(), "eq");
/// assert_eq!(Cond::Al.to_string(), "");
/// assert_eq!(Cond::Lt.invert(), Cond::Ge);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z set).
    Eq = 0,
    /// Not equal (Z clear).
    Ne = 1,
    /// Carry set / unsigned higher-or-same.
    Cs = 2,
    /// Carry clear / unsigned lower.
    Cc = 3,
    /// Minus / negative (N set).
    Mi = 4,
    /// Plus / positive or zero (N clear).
    Pl = 5,
    /// Overflow set.
    Vs = 6,
    /// Overflow clear.
    Vc = 7,
    /// Unsigned higher.
    Hi = 8,
    /// Unsigned lower or same.
    Ls = 9,
    /// Signed greater or equal.
    Ge = 10,
    /// Signed less than.
    Lt = 11,
    /// Signed greater than.
    Gt = 12,
    /// Signed less or equal.
    Le = 13,
    /// Always — the unconditional case.
    #[default]
    Al = 14,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// The four-bit encoding of this condition.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes a condition from its four-bit encoding.
    ///
    /// Returns `None` for `0b1111` (the ARM "never"/unconditional-extension
    /// space, which this subset does not use) and values above 15.
    pub fn from_bits(bits: u32) -> Option<Cond> {
        Cond::ALL.get(bits as usize).copied()
    }

    /// Whether this instruction executes unconditionally.
    pub fn is_always(self) -> bool {
        self == Cond::Al
    }

    /// The logically opposite condition (`eq` ↔ `ne`, …).
    ///
    /// `al` maps to itself since the subset has no "never" condition.
    pub fn invert(self) -> Cond {
        match self {
            Cond::Al => Cond::Al,
            c => Cond::from_bits(c.bits() ^ 1).expect("inverted condition in range"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a condition-code suffix fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCondError(pub(crate) String);

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid condition code `{}`", self.0)
    }
}

impl std::error::Error for ParseCondError {}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "eq" => Ok(Cond::Eq),
            "ne" => Ok(Cond::Ne),
            "cs" | "hs" => Ok(Cond::Cs),
            "cc" | "lo" => Ok(Cond::Cc),
            "mi" => Ok(Cond::Mi),
            "pl" => Ok(Cond::Pl),
            "vs" => Ok(Cond::Vs),
            "vc" => Ok(Cond::Vc),
            "hi" => Ok(Cond::Hi),
            "ls" => Ok(Cond::Ls),
            "ge" => Ok(Cond::Ge),
            "lt" => Ok(Cond::Lt),
            "gt" => Ok(Cond::Gt),
            "le" => Ok(Cond::Le),
            "" | "al" => Ok(Cond::Al),
            _ => Err(ParseCondError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), Some(c));
        }
        assert_eq!(Cond::from_bits(15), None);
    }

    #[test]
    fn invert_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
        assert_eq!(Cond::Eq.invert(), Cond::Ne);
        assert_eq!(Cond::Hi.invert(), Cond::Ls);
        assert_eq!(Cond::Al.invert(), Cond::Al);
    }

    #[test]
    fn parse_round_trip() {
        for c in Cond::ALL {
            assert_eq!(c.to_string().parse::<Cond>().unwrap(), c);
        }
        assert_eq!("hs".parse::<Cond>().unwrap(), Cond::Cs);
        assert!("xx".parse::<Cond>().is_err());
    }
}
