//! ARM-subset instruction-set model used throughout the graph-based
//! procedural-abstraction (PA) toolchain.
//!
//! This crate models the part of the ARM32 (ARMv4) instruction set that the
//! rest of the workspace needs: data-processing instructions, single data
//! transfers with pre/post-indexed writeback, load/store multiple, branches,
//! multiplies and software interrupts. Encodings are the *real* ARM32 bit
//! patterns, so [`encode`](Instruction::encode) / [`decode`] round-trip
//! through genuine machine words.
//!
//! The crate provides four views of an instruction:
//!
//! * the structured [`Instruction`] value itself,
//! * its 32-bit encoding ([`Instruction::encode`], [`decode`]),
//! * its textual assembly form ([`std::fmt::Display`] and the
//!   [`parse`] module), and
//! * its dependence interface ([`Effects`]) — which registers / memory /
//!   flags it reads and writes — which is what data-flow-graph construction,
//!   liveness analysis and the emulator consume.
//!
//! # Examples
//!
//! ```
//! use gpa_arm::{Instruction, decode};
//!
//! let insn: Instruction = "add r4, r2, #4".parse()?;
//! let word = insn.encode()?;
//! assert_eq!(decode(word)?, insn);
//! assert_eq!(insn.to_string(), "add r4, r2, #4");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cond;
pub mod defuse;
pub mod encode;
pub mod insn;
pub mod memfx;
pub mod parse;
pub mod reg;

pub use cond::Cond;
pub use defuse::Effects;
pub use encode::{decode, encode_rotated_imm, DecodeError, EncodeError};
pub use insn::{AddressMode, BlockMode, DpOp, Instruction, MemOffset, MemOp, Operand2, ShiftKind};
pub use memfx::{MemAccess, MemDisp, MemFx};
pub use reg::Reg;
