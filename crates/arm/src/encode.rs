//! Bit-accurate ARM32 encoding and decoding for the supported subset.
//!
//! Every [`Instruction`] encodes to the genuine ARMv4 bit pattern; [`decode`]
//! inverts it. Round-tripping is exercised by unit and property tests.

use std::fmt;

use crate::cond::Cond;
use crate::insn::{
    AddressMode, BlockMode, DpOp, Instruction, MemOffset, MemOp, Operand2, ShiftKind,
};
use crate::reg::{Reg, RegSet};

/// Error produced when an [`Instruction`] has no valid ARM encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A data-processing immediate that is not an 8-bit value rotated right
    /// by an even amount.
    UnencodableImm(u32),
    /// A shift amount outside the encodable range for its kind.
    BadShiftAmount(ShiftKind, u8),
    /// A memory offset whose magnitude does not fit in 12 bits.
    OffsetOutOfRange(i32),
    /// A branch offset that does not fit in a signed 24-bit field.
    BranchOutOfRange(i32),
    /// A `swi` comment field wider than 24 bits.
    SwiOutOfRange(u32),
    /// An empty register list in `ldm`/`stm`.
    EmptyRegisterList,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnencodableImm(v) => {
                write!(
                    f,
                    "immediate {v:#x} is not an 8-bit value rotated by an even amount"
                )
            }
            EncodeError::BadShiftAmount(k, n) => write!(f, "shift {k} #{n} is not encodable"),
            EncodeError::OffsetOutOfRange(v) => write!(f, "memory offset {v} exceeds 12 bits"),
            EncodeError::BranchOutOfRange(v) => write!(f, "branch offset {v} exceeds 24 bits"),
            EncodeError::SwiOutOfRange(v) => write!(f, "swi number {v:#x} exceeds 24 bits"),
            EncodeError::EmptyRegisterList => {
                write!(f, "ldm/stm requires a non-empty register list")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a 32-bit word is not a valid instruction of the
/// subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// Finds the (rotation, byte) pair encoding `value` as an ARM rotated
/// immediate, preferring the smallest rotation.
///
/// Returns `None` when the value is not expressible.
///
/// # Examples
///
/// ```
/// use gpa_arm::encode_rotated_imm;
///
/// assert_eq!(encode_rotated_imm(255), Some((0, 255)));
/// assert_eq!(encode_rotated_imm(0x3f0), Some((14, 0x3f)));
/// assert_eq!(encode_rotated_imm(0x101), None);
/// ```
pub fn encode_rotated_imm(value: u32) -> Option<(u32, u32)> {
    for rot in 0..16 {
        let rotated = value.rotate_left(rot * 2);
        if rotated <= 0xff {
            return Some((rot, rotated));
        }
    }
    None
}

/// Whether a value is expressible as a data-processing immediate.
pub fn is_encodable_imm(value: u32) -> bool {
    encode_rotated_imm(value).is_some()
}

fn encode_shifter(op2: Operand2) -> Result<(u32, u32), EncodeError> {
    // Returns (I bit, shifter_operand bits).
    match op2 {
        Operand2::Imm(v) => {
            let (rot, byte) = encode_rotated_imm(v).ok_or(EncodeError::UnencodableImm(v))?;
            Ok((1, (rot << 8) | byte))
        }
        Operand2::Reg(rm) => Ok((0, rm.number() as u32)),
        Operand2::RegShift(rm, kind, amount) => {
            let imm = match (kind, amount) {
                (ShiftKind::Lsl, 1..=31) => amount as u32,
                (ShiftKind::Lsr | ShiftKind::Asr, 32) => 0,
                (ShiftKind::Lsr | ShiftKind::Asr, 1..=31) => amount as u32,
                (ShiftKind::Ror, 1..=31) => amount as u32,
                _ => return Err(EncodeError::BadShiftAmount(kind, amount)),
            };
            Ok((0, (imm << 7) | (kind.bits() << 5) | rm.number() as u32))
        }
    }
}

fn decode_shifter(i_bit: u32, bits: u32, word: u32) -> Result<Operand2, DecodeError> {
    if i_bit == 1 {
        let rot = (bits >> 8) & 0xf;
        let byte = bits & 0xff;
        return Ok(Operand2::Imm(byte.rotate_right(rot * 2)));
    }
    if bits & 0x10 != 0 {
        return Err(DecodeError {
            word,
            reason: "register-shifted-by-register operands are outside the subset",
        });
    }
    let rm = Reg::r((bits & 0xf) as u8);
    let kind = ShiftKind::from_bits((bits >> 5) & 0x3).expect("two-bit field");
    let amount = (bits >> 7) & 0x1f;
    if amount == 0 {
        match kind {
            ShiftKind::Lsl => Ok(Operand2::Reg(rm)),
            ShiftKind::Lsr => Ok(Operand2::RegShift(rm, ShiftKind::Lsr, 32)),
            ShiftKind::Asr => Ok(Operand2::RegShift(rm, ShiftKind::Asr, 32)),
            ShiftKind::Ror => Err(DecodeError {
                word,
                reason: "rrx is outside the subset",
            }),
        }
    } else {
        Ok(Operand2::RegShift(rm, kind, amount as u8))
    }
}

impl Instruction {
    /// Encodes this instruction as its 32-bit ARM machine word.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] when a field value has no encoding (an
    /// unrepresentable immediate, an out-of-range offset, …).
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let cond = self.cond().bits() << 28;
        match *self {
            Instruction::DataProc {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                let (i, shifter) = encode_shifter(op2)?;
                let s = (set_flags || op.is_compare()) as u32;
                let rd_bits = if op.is_compare() {
                    0
                } else {
                    rd.number() as u32
                };
                let rn_bits = if op.is_move() { 0 } else { rn.number() as u32 };
                Ok(cond
                    | (i << 25)
                    | (op.bits() << 21)
                    | (s << 20)
                    | (rn_bits << 16)
                    | (rd_bits << 12)
                    | shifter)
            }
            Instruction::Mul {
                set_flags,
                rd,
                rm,
                rs,
                ..
            } => Ok(cond
                | ((set_flags as u32) << 20)
                | ((rd.number() as u32) << 16)
                | ((rs.number() as u32) << 8)
                | 0x90
                | rm.number() as u32),
            Instruction::Mla {
                set_flags,
                rd,
                rm,
                rs,
                rn,
                ..
            } => Ok(cond
                | (1 << 21)
                | ((set_flags as u32) << 20)
                | ((rd.number() as u32) << 16)
                | ((rn.number() as u32) << 12)
                | ((rs.number() as u32) << 8)
                | 0x90
                | rm.number() as u32),
            Instruction::Mem {
                op,
                byte,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                let (i, u, off_bits) = match offset {
                    MemOffset::Imm(v) => {
                        let mag = v.unsigned_abs();
                        if mag >= 4096 {
                            return Err(EncodeError::OffsetOutOfRange(v));
                        }
                        (0, (v >= 0) as u32, mag)
                    }
                    MemOffset::Reg(rm, sub) => (1, !sub as u32, rm.number() as u32),
                };
                let (p, w) = match mode {
                    AddressMode::Offset => (1, 0),
                    AddressMode::PreIndexed => (1, 1),
                    AddressMode::PostIndexed => (0, 0),
                };
                let l = matches!(op, MemOp::Ldr) as u32;
                Ok(cond
                    | (1 << 26)
                    | (i << 25)
                    | (p << 24)
                    | (u << 23)
                    | ((byte as u32) << 22)
                    | (w << 21)
                    | (l << 20)
                    | ((rn.number() as u32) << 16)
                    | ((rd.number() as u32) << 12)
                    | off_bits)
            }
            Instruction::Block {
                op,
                rn,
                writeback,
                mode,
                regs,
                ..
            } => {
                if regs.is_empty() {
                    return Err(EncodeError::EmptyRegisterList);
                }
                let (p, u) = mode.pu_bits();
                let l = matches!(op, MemOp::Ldr) as u32;
                Ok(cond
                    | (1 << 27)
                    | (p << 24)
                    | (u << 23)
                    | ((writeback as u32) << 21)
                    | (l << 20)
                    | ((rn.number() as u32) << 16)
                    | regs.0 as u32)
            }
            Instruction::Branch { link, offset, .. } => {
                if !(-(1 << 23)..(1 << 23)).contains(&offset) {
                    return Err(EncodeError::BranchOutOfRange(offset));
                }
                Ok(cond | (0b101 << 25) | ((link as u32) << 24) | (offset as u32 & 0x00ff_ffff))
            }
            Instruction::Bx { rm, .. } => Ok(cond | 0x012f_ff10 | rm.number() as u32),
            Instruction::Swi { imm, .. } => {
                if imm >= (1 << 24) {
                    return Err(EncodeError::SwiOutOfRange(imm));
                }
                Ok(cond | (0xf << 24) | imm)
            }
        }
    }
}

/// Decodes a 32-bit ARM machine word into an [`Instruction`].
///
/// # Errors
///
/// Returns a [`DecodeError`] when the word is not a valid instruction of the
/// supported subset (the word may still be interwoven data — the rewriting
/// pipeline treats undecodable words that are never executed as data).
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let cond = Cond::from_bits(word >> 28).ok_or(DecodeError {
        word,
        reason: "condition field 0b1111 is outside the subset",
    })?;
    let op27_25 = (word >> 25) & 0x7;
    match op27_25 {
        0b000 | 0b001 => {
            // bx has a fixed pattern inside the data-processing space.
            if word & 0x0fff_fff0 == 0x012f_ff10 {
                return Ok(Instruction::Bx {
                    cond,
                    rm: Reg::r((word & 0xf) as u8),
                });
            }
            // Multiply: bits 7..4 == 1001 and 27..22 == 000000.
            if op27_25 == 0b000 && (word >> 4) & 0xf == 0b1001 && (word >> 22) & 0x3f == 0 {
                let a = (word >> 21) & 1;
                let set_flags = (word >> 20) & 1 == 1;
                let rd = Reg::r(((word >> 16) & 0xf) as u8);
                let rn = Reg::r(((word >> 12) & 0xf) as u8);
                let rs = Reg::r(((word >> 8) & 0xf) as u8);
                let rm = Reg::r((word & 0xf) as u8);
                return Ok(if a == 1 {
                    Instruction::Mla {
                        cond,
                        set_flags,
                        rd,
                        rm,
                        rs,
                        rn,
                    }
                } else {
                    Instruction::Mul {
                        cond,
                        set_flags,
                        rd,
                        rm,
                        rs,
                    }
                });
            }
            let op = DpOp::from_bits((word >> 21) & 0xf).expect("four-bit field");
            let set_flags = (word >> 20) & 1 == 1;
            if op.is_compare() && !set_flags {
                return Err(DecodeError {
                    word,
                    reason: "compare opcode with S=0 (MSR/MRS space) is outside the subset",
                });
            }
            let rn = Reg::r(((word >> 16) & 0xf) as u8);
            let rd = Reg::r(((word >> 12) & 0xf) as u8);
            let op2 = decode_shifter(op27_25 & 1, word & 0xfff, word)?;
            Ok(Instruction::DataProc {
                cond,
                op,
                set_flags,
                rd: if op.is_compare() { Reg::r(0) } else { rd },
                rn: if op.is_move() { Reg::r(0) } else { rn },
                op2,
            })
        }
        0b010 | 0b011 => {
            let i = (word >> 25) & 1;
            let p = (word >> 24) & 1;
            let u = (word >> 23) & 1;
            let byte = (word >> 22) & 1 == 1;
            let w = (word >> 21) & 1;
            let l = (word >> 20) & 1;
            let rn = Reg::r(((word >> 16) & 0xf) as u8);
            let rd = Reg::r(((word >> 12) & 0xf) as u8);
            let offset = if i == 0 {
                let mag = (word & 0xfff) as i32;
                MemOffset::Imm(if u == 1 { mag } else { -mag })
            } else {
                if word & 0xff0 != 0 {
                    return Err(DecodeError {
                        word,
                        reason: "scaled register offsets are outside the subset",
                    });
                }
                MemOffset::Reg(Reg::r((word & 0xf) as u8), u == 0)
            };
            let mode = match (p, w) {
                (1, 0) => AddressMode::Offset,
                (1, 1) => AddressMode::PreIndexed,
                (0, 0) => AddressMode::PostIndexed,
                _ => {
                    return Err(DecodeError {
                        word,
                        reason: "LDRT/STRT (P=0, W=1) is outside the subset",
                    })
                }
            };
            Ok(Instruction::Mem {
                cond,
                op: if l == 1 { MemOp::Ldr } else { MemOp::Str },
                byte,
                rd,
                rn,
                offset,
                mode,
            })
        }
        0b100 => {
            if (word >> 22) & 1 == 1 {
                return Err(DecodeError {
                    word,
                    reason: "ldm/stm with S bit is outside the subset",
                });
            }
            let p = (word >> 24) & 1;
            let u = (word >> 23) & 1;
            let writeback = (word >> 21) & 1 == 1;
            let l = (word >> 20) & 1;
            let rn = Reg::r(((word >> 16) & 0xf) as u8);
            let regs = RegSet((word & 0xffff) as u16);
            if regs.is_empty() {
                return Err(DecodeError {
                    word,
                    reason: "ldm/stm with empty register list",
                });
            }
            Ok(Instruction::Block {
                cond,
                op: if l == 1 { MemOp::Ldr } else { MemOp::Str },
                rn,
                writeback,
                mode: BlockMode::from_pu_bits(p, u),
                regs,
            })
        }
        0b101 => {
            let link = (word >> 24) & 1 == 1;
            // Sign-extend the 24-bit offset.
            let offset = ((word & 0x00ff_ffff) << 8) as i32 >> 8;
            Ok(Instruction::Branch { cond, link, offset })
        }
        0b111 => {
            if (word >> 24) & 0xf != 0xf {
                return Err(DecodeError {
                    word,
                    reason: "coprocessor instructions are outside the subset",
                });
            }
            Ok(Instruction::Swi {
                cond,
                imm: word & 0x00ff_ffff,
            })
        }
        _ => Err(DecodeError {
            word,
            reason: "instruction class outside the subset",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction as I;

    fn round_trip(insn: I) {
        let word = insn.encode().unwrap_or_else(|e| panic!("{insn}: {e}"));
        let back = decode(word).unwrap_or_else(|e| panic!("{insn}: {e}"));
        assert_eq!(back, insn, "word {word:#010x}");
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against `arm-none-eabi-as` output.
        assert_eq!(
            I::dp_imm(DpOp::Add, Reg::r(4), Reg::r(2), 4)
                .encode()
                .unwrap(),
            0xe282_4004
        );
        assert_eq!(
            I::dp_reg(DpOp::Sub, Reg::r(2), Reg::r(2), Reg::r(3))
                .encode()
                .unwrap(),
            0xe042_2003
        );
        assert_eq!(I::mov_imm(Reg::r(0), 0).encode().unwrap(), 0xe3a0_0000);
        assert_eq!(I::ret().encode().unwrap(), 0xe12f_ff1e);
        assert_eq!(
            I::ldr_imm(Reg::r(3), Reg::r(1), 0).encode().unwrap(),
            0xe591_3000
        );
        // b . (offset -2 words)
        assert_eq!(
            I::Branch {
                cond: Cond::Al,
                link: false,
                offset: -2
            }
            .encode()
            .unwrap(),
            0xeaff_fffe
        );
        // push {r4, lr} == stmdb sp!, {r4, lr}
        let push = I::Block {
            cond: Cond::Al,
            op: MemOp::Str,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Db,
            regs: RegSet::of(&[Reg::r(4), Reg::LR]),
        };
        assert_eq!(push.encode().unwrap(), 0xe92d_4010);
        // mul r0, r1, r2
        let mul = I::Mul {
            cond: Cond::Al,
            set_flags: false,
            rd: Reg::r(0),
            rm: Reg::r(1),
            rs: Reg::r(2),
        };
        assert_eq!(mul.encode().unwrap(), 0xe000_0291);
    }

    #[test]
    fn round_trip_data_processing() {
        for op in DpOp::ALL {
            let insn = I::DataProc {
                cond: Cond::Ne,
                op,
                set_flags: op.is_compare(),
                rd: if op.is_compare() {
                    Reg::r(0)
                } else {
                    Reg::r(3)
                },
                rn: if op.is_move() { Reg::r(0) } else { Reg::r(5) },
                op2: Operand2::Imm(0xff),
            };
            round_trip(insn);
        }
    }

    #[test]
    fn round_trip_shifted_operands() {
        for kind in [
            ShiftKind::Lsl,
            ShiftKind::Lsr,
            ShiftKind::Asr,
            ShiftKind::Ror,
        ] {
            for amount in [1u8, 2, 17, 31] {
                round_trip(I::DataProc {
                    cond: Cond::Al,
                    op: DpOp::Add,
                    set_flags: false,
                    rd: Reg::r(1),
                    rn: Reg::r(2),
                    op2: Operand2::RegShift(Reg::r(3), kind, amount),
                });
            }
        }
        // lsr/asr #32 are special-cased.
        round_trip(I::DataProc {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags: false,
            rd: Reg::r(1),
            rn: Reg::r(0),
            op2: Operand2::RegShift(Reg::r(3), ShiftKind::Lsr, 32),
        });
        round_trip(I::DataProc {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags: false,
            rd: Reg::r(1),
            rn: Reg::r(0),
            op2: Operand2::RegShift(Reg::r(3), ShiftKind::Asr, 32),
        });
    }

    #[test]
    fn round_trip_memory() {
        for mode in [
            AddressMode::Offset,
            AddressMode::PreIndexed,
            AddressMode::PostIndexed,
        ] {
            for offset in [
                MemOffset::Imm(0),
                MemOffset::Imm(4),
                MemOffset::Imm(-8),
                MemOffset::Reg(Reg::r(6), false),
                MemOffset::Reg(Reg::r(6), true),
            ] {
                for (op, byte) in [(MemOp::Ldr, false), (MemOp::Str, true)] {
                    round_trip(I::Mem {
                        cond: Cond::Al,
                        op,
                        byte,
                        rd: Reg::r(3),
                        rn: Reg::r(1),
                        offset,
                        mode,
                    });
                }
            }
        }
    }

    #[test]
    fn round_trip_block_branch_misc() {
        for mode in [BlockMode::Ia, BlockMode::Ib, BlockMode::Da, BlockMode::Db] {
            round_trip(I::Block {
                cond: Cond::Al,
                op: MemOp::Ldr,
                rn: Reg::SP,
                writeback: true,
                mode,
                regs: RegSet::of(&[Reg::r(0), Reg::r(4), Reg::PC]),
            });
        }
        for offset in [0, 1, -1, 12345, -12345, (1 << 23) - 1, -(1 << 23)] {
            round_trip(I::Branch {
                cond: Cond::Lt,
                link: true,
                offset,
            });
        }
        round_trip(I::Bx {
            cond: Cond::Eq,
            rm: Reg::r(3),
        });
        round_trip(I::Swi {
            cond: Cond::Al,
            imm: 0x123456,
        });
        round_trip(I::Mla {
            cond: Cond::Al,
            set_flags: true,
            rd: Reg::r(1),
            rm: Reg::r(2),
            rs: Reg::r(3),
            rn: Reg::r(4),
        });
    }

    #[test]
    fn encode_errors() {
        assert_eq!(
            I::mov_imm(Reg::r(0), 0x101).encode(),
            Err(EncodeError::UnencodableImm(0x101))
        );
        assert_eq!(
            I::ldr_imm(Reg::r(0), Reg::r(1), 4096).encode(),
            Err(EncodeError::OffsetOutOfRange(4096))
        );
        assert_eq!(
            I::Branch {
                cond: Cond::Al,
                link: false,
                offset: 1 << 23
            }
            .encode(),
            Err(EncodeError::BranchOutOfRange(1 << 23))
        );
        assert_eq!(
            I::Block {
                cond: Cond::Al,
                op: MemOp::Ldr,
                rn: Reg::SP,
                writeback: true,
                mode: BlockMode::Ia,
                regs: RegSet::EMPTY,
            }
            .encode(),
            Err(EncodeError::EmptyRegisterList)
        );
        assert_eq!(
            I::DataProc {
                cond: Cond::Al,
                op: DpOp::Add,
                set_flags: false,
                rd: Reg::r(0),
                rn: Reg::r(0),
                op2: Operand2::RegShift(Reg::r(1), ShiftKind::Lsl, 32),
            }
            .encode(),
            Err(EncodeError::BadShiftAmount(ShiftKind::Lsl, 32))
        );
    }

    #[test]
    fn decode_errors() {
        // Condition 0b1111.
        assert!(decode(0xf000_0000).is_err());
        // Register-shifted-by-register.
        assert!(decode(0xe080_0110).is_err());
        // Coprocessor space.
        assert!(decode(0xee00_0000).is_err());
        // MRS (compare op with S=0).
        assert!(decode(0xe10f_0000).is_err());
    }

    #[test]
    fn rotated_immediates() {
        assert!(is_encodable_imm(0));
        assert!(is_encodable_imm(255));
        assert!(is_encodable_imm(0xff00_0000));
        assert!(is_encodable_imm(0x0003_fc00));
        assert!(!is_encodable_imm(0x0000_0101));
        assert!(!is_encodable_imm(0xffff_ffff));
        // Every encodable immediate round-trips through the shifter.
        for rot in 0..16u32 {
            for byte in [0u32, 1, 0x80, 0xff] {
                let v = byte.rotate_right(rot * 2);
                let (r, b) = encode_rotated_imm(v).unwrap();
                assert_eq!(b.rotate_right(r * 2), v);
            }
        }
    }
}
