//! A small assembler: parsing of textual assembly into [`Instruction`]s.
//!
//! The accepted syntax is exactly what [`Instruction`]'s `Display`
//! implementation prints (plus the usual aliases `push`/`pop`, `hs`/`lo`),
//! so `to_string` and `parse` round-trip. Used by tests, examples and the
//! hand-assembled fixtures.

use std::fmt;
use std::str::FromStr;

use crate::cond::Cond;
use crate::insn::{
    AddressMode, BlockMode, DpOp, Instruction, MemOffset, MemOp, Operand2, ShiftKind,
};
use crate::reg::{Reg, RegSet};

/// Error returned when a line of assembly cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseInstructionError {
    line: String,
    reason: String,
}

impl ParseInstructionError {
    fn new(line: &str, reason: impl Into<String>) -> Self {
        ParseInstructionError {
            line: line.to_owned(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse `{}`: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseInstructionError {}

/// Splits an operand list on top-level commas, respecting `[...]`, `{...}`.
fn split_operands(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_owned());
    }
    parts
}

fn parse_imm(s: &str, line: &str) -> Result<i64, ParseInstructionError> {
    let body = s.strip_prefix('#').ok_or_else(|| {
        ParseInstructionError::new(line, format!("expected immediate, got `{s}`"))
    })?;
    let (neg, digits) = match body.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, body),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse::<i64>()
    }
    .map_err(|_| ParseInstructionError::new(line, format!("bad immediate `{s}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_reg(s: &str, line: &str) -> Result<Reg, ParseInstructionError> {
    s.parse::<Reg>()
        .map_err(|e| ParseInstructionError::new(line, e.to_string()))
}

/// Parses suffix text as `[cond][s-flag]`, e.g. `""`, `"s"`, `"eq"`, `"eqs"`.
fn parse_cond_s(suffix: &str) -> Option<(Cond, bool)> {
    if suffix.is_empty() {
        return Some((Cond::Al, false));
    }
    if suffix == "s" {
        return Some((Cond::Al, true));
    }
    if let Ok(cond) = suffix.parse::<Cond>() {
        return Some((cond, false));
    }
    suffix
        .strip_suffix('s')
        .and_then(|c| c.parse::<Cond>().ok())
        .map(|cond| (cond, true))
}

fn parse_op2(parts: &[String], line: &str) -> Result<Operand2, ParseInstructionError> {
    match parts {
        [one] => {
            if one.starts_with('#') {
                let v = parse_imm(one, line)?;
                Ok(Operand2::Imm(v as u32))
            } else {
                Ok(Operand2::Reg(parse_reg(one, line)?))
            }
        }
        [reg, shift] => {
            let rm = parse_reg(reg, line)?;
            let (kind_str, amount_str) = shift
                .split_once(' ')
                .ok_or_else(|| ParseInstructionError::new(line, "malformed shift"))?;
            let kind = match kind_str.trim() {
                "lsl" => ShiftKind::Lsl,
                "lsr" => ShiftKind::Lsr,
                "asr" => ShiftKind::Asr,
                "ror" => ShiftKind::Ror,
                other => {
                    return Err(ParseInstructionError::new(
                        line,
                        format!("unknown shift `{other}`"),
                    ))
                }
            };
            let amount = parse_imm(amount_str.trim(), line)?;
            Ok(Operand2::RegShift(rm, kind, amount as u8))
        }
        _ => Err(ParseInstructionError::new(line, "malformed operand2")),
    }
}

/// Parses an addressing operand: `[rn]`, `[rn, #imm]`, `[rn, rm]`,
/// `[rn, -rm]`, with optional `!`, or the post-indexed split form handled by
/// the caller.
fn parse_address(
    addr: &str,
    post: Option<&str>,
    line: &str,
) -> Result<(Reg, MemOffset, AddressMode), ParseInstructionError> {
    let (inner, writeback) = match addr.strip_suffix('!') {
        Some(rest) => (rest, true),
        None => (addr, false),
    };
    let inner = inner
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseInstructionError::new(line, "expected [..] address"))?;
    let parts = split_operands(inner);
    let parse_off = |s: &str| -> Result<MemOffset, ParseInstructionError> {
        if s.starts_with('#') {
            Ok(MemOffset::Imm(parse_imm(s, line)? as i32))
        } else if let Some(neg) = s.strip_prefix('-') {
            Ok(MemOffset::Reg(parse_reg(neg, line)?, true))
        } else {
            Ok(MemOffset::Reg(parse_reg(s, line)?, false))
        }
    };
    match (parts.as_slice(), post) {
        ([rn], None) => {
            let rn = parse_reg(rn, line)?;
            let mode = if writeback {
                AddressMode::PreIndexed
            } else {
                AddressMode::Offset
            };
            Ok((rn, MemOffset::Imm(0), mode))
        }
        ([rn], Some(off)) => {
            if writeback {
                return Err(ParseInstructionError::new(line, "post-index with `!`"));
            }
            Ok((
                parse_reg(rn, line)?,
                parse_off(off)?,
                AddressMode::PostIndexed,
            ))
        }
        ([rn, off], None) => {
            let mode = if writeback {
                AddressMode::PreIndexed
            } else {
                AddressMode::Offset
            };
            Ok((parse_reg(rn, line)?, parse_off(off)?, mode))
        }
        _ => Err(ParseInstructionError::new(line, "malformed address")),
    }
}

fn parse_reglist(s: &str, line: &str) -> Result<RegSet, ParseInstructionError> {
    let inner = s
        .strip_prefix('{')
        .and_then(|x| x.strip_suffix('}'))
        .ok_or_else(|| ParseInstructionError::new(line, "expected {..} register list"))?;
    let mut set = RegSet::EMPTY;
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = item.split_once('-') {
            let lo = parse_reg(lo.trim(), line)?;
            let hi = parse_reg(hi.trim(), line)?;
            if lo > hi {
                return Err(ParseInstructionError::new(
                    line,
                    "descending register range",
                ));
            }
            for n in lo.number()..=hi.number() {
                set.insert(Reg::r(n));
            }
        } else {
            set.insert(parse_reg(item, line)?);
        }
    }
    Ok(set)
}

impl FromStr for Instruction {
    type Err = ParseInstructionError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let trimmed = line.trim();
        let (mnemonic, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (trimmed, ""),
        };
        let ops = split_operands(rest);
        let err = |reason: &str| ParseInstructionError::new(line, reason);

        // Fixed-name instructions first.
        if let Some(suffix) = mnemonic.strip_prefix("bx") {
            let cond = suffix.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let [rm] = ops.as_slice() else {
                return Err(err("bx takes one register"));
            };
            return Ok(Instruction::Bx {
                cond,
                rm: parse_reg(rm, line)?,
            });
        }
        if let Some(suffix) = mnemonic.strip_prefix("swi") {
            let cond = suffix.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let [imm] = ops.as_slice() else {
                return Err(err("swi takes one immediate"));
            };
            return Ok(Instruction::Swi {
                cond,
                imm: parse_imm(imm, line)? as u32,
            });
        }
        // push/pop aliases.
        if let Some(suffix) = mnemonic.strip_prefix("push") {
            let cond = suffix.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let [list] = ops.as_slice() else {
                return Err(err("push takes a register list"));
            };
            return Ok(Instruction::Block {
                cond,
                op: MemOp::Str,
                rn: Reg::SP,
                writeback: true,
                mode: BlockMode::Db,
                regs: parse_reglist(list, line)?,
            });
        }
        if let Some(suffix) = mnemonic.strip_prefix("pop") {
            let cond = suffix.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let [list] = ops.as_slice() else {
                return Err(err("pop takes a register list"));
            };
            return Ok(Instruction::Block {
                cond,
                op: MemOp::Ldr,
                rn: Reg::SP,
                writeback: true,
                mode: BlockMode::Ia,
                regs: parse_reglist(list, line)?,
            });
        }
        // ldm/stm with cond then mode suffix, e.g. `ldmia`, `stmeqdb`.
        if mnemonic.starts_with("ldm") || mnemonic.starts_with("stm") {
            let op = if mnemonic.starts_with("ldm") {
                MemOp::Ldr
            } else {
                MemOp::Str
            };
            let suffix = &mnemonic[3..];
            let (cond_str, mode_str) = if suffix.len() == 4 {
                (&suffix[..2], &suffix[2..])
            } else {
                ("", suffix)
            };
            let cond = cond_str.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let mode = match mode_str {
                "ia" => BlockMode::Ia,
                "ib" => BlockMode::Ib,
                "da" => BlockMode::Da,
                "db" => BlockMode::Db,
                _ => return Err(err("unknown ldm/stm mode")),
            };
            let [base, list] = ops.as_slice() else {
                return Err(err("ldm/stm takes base and register list"));
            };
            let (base, writeback) = match base.strip_suffix('!') {
                Some(b) => (b, true),
                None => (base.as_str(), false),
            };
            return Ok(Instruction::Block {
                cond,
                op,
                rn: parse_reg(base, line)?,
                writeback,
                mode,
                regs: parse_reglist(list, line)?,
            });
        }
        // ldr/str with cond then optional byte suffix.
        if mnemonic.starts_with("ldr") || mnemonic.starts_with("str") {
            let op = if mnemonic.starts_with("ldr") {
                MemOp::Ldr
            } else {
                MemOp::Str
            };
            let suffix = &mnemonic[3..];
            let (cond_b, byte) = match suffix.strip_suffix('b') {
                Some(c) => (c, true),
                None => (suffix, false),
            };
            let cond = cond_b.parse::<Cond>().map_err(|e| err(&e.to_string()))?;
            let (rd, addr, post) = match ops.as_slice() {
                [rd, addr] => (rd, addr, None),
                [rd, addr, post] => (rd, addr, Some(post.as_str())),
                _ => return Err(err("ldr/str takes a register and an address")),
            };
            let (rn, offset, mode) = parse_address(addr, post, line)?;
            return Ok(Instruction::Mem {
                cond,
                op,
                byte,
                rd: parse_reg(rd, line)?,
                rn,
                offset,
                mode,
            });
        }
        // mul / mla.
        if let Some(suffix) = mnemonic.strip_prefix("mul") {
            let (cond, set_flags) = parse_cond_s(suffix).ok_or_else(|| err("bad mul suffix"))?;
            let [rd, rm, rs] = ops.as_slice() else {
                return Err(err("mul takes three registers"));
            };
            return Ok(Instruction::Mul {
                cond,
                set_flags,
                rd: parse_reg(rd, line)?,
                rm: parse_reg(rm, line)?,
                rs: parse_reg(rs, line)?,
            });
        }
        if let Some(suffix) = mnemonic.strip_prefix("mla") {
            let (cond, set_flags) = parse_cond_s(suffix).ok_or_else(|| err("bad mla suffix"))?;
            let [rd, rm, rs, rn] = ops.as_slice() else {
                return Err(err("mla takes four registers"));
            };
            return Ok(Instruction::Mla {
                cond,
                set_flags,
                rd: parse_reg(rd, line)?,
                rm: parse_reg(rm, line)?,
                rs: parse_reg(rs, line)?,
                rn: parse_reg(rn, line)?,
            });
        }
        // Branches: `bl<cond>` before `b<cond>`. `bic` is claimed by the
        // data-processing loop below, and never reaches here because "ic" is
        // not a condition.
        if let Some(suffix) = mnemonic.strip_prefix("bl") {
            if let Ok(cond) = suffix.parse::<Cond>() {
                let [target] = ops.as_slice() else {
                    return Err(err("branch takes one offset"));
                };
                let disp: i64 = target
                    .parse()
                    .map_err(|_| err("branch target must be a byte displacement"))?;
                return Ok(Instruction::Branch {
                    cond,
                    link: true,
                    offset: ((disp - 8) / 4) as i32,
                });
            }
        }
        if let Some(suffix) = mnemonic.strip_prefix('b') {
            if let Ok(cond) = suffix.parse::<Cond>() {
                let [target] = ops.as_slice() else {
                    return Err(err("branch takes one offset"));
                };
                let disp: i64 = target
                    .parse()
                    .map_err(|_| err("branch target must be a byte displacement"))?;
                return Ok(Instruction::Branch {
                    cond,
                    link: false,
                    offset: ((disp - 8) / 4) as i32,
                });
            }
        }
        // Data-processing instructions.
        for op in DpOp::ALL {
            let Some(suffix) = mnemonic.strip_prefix(op.mnemonic()) else {
                continue;
            };
            let Some((cond, mut set_flags)) = parse_cond_s(suffix) else {
                continue;
            };
            if op.is_compare() {
                if set_flags {
                    return Err(err("compare instructions take no `s` suffix"));
                }
                set_flags = true;
                let [rn, rest @ ..] = ops.as_slice() else {
                    return Err(err("compare takes two operands"));
                };
                return Ok(Instruction::DataProc {
                    cond,
                    op,
                    set_flags,
                    rd: Reg::r(0),
                    rn: parse_reg(rn, line)?,
                    op2: parse_op2(rest, line)?,
                });
            }
            if op.is_move() {
                let [rd, rest @ ..] = ops.as_slice() else {
                    return Err(err("move takes two operands"));
                };
                return Ok(Instruction::DataProc {
                    cond,
                    op,
                    set_flags,
                    rd: parse_reg(rd, line)?,
                    rn: Reg::r(0),
                    op2: parse_op2(rest, line)?,
                });
            }
            let [rd, rn, rest @ ..] = ops.as_slice() else {
                return Err(err("expected three operands"));
            };
            return Ok(Instruction::DataProc {
                cond,
                op,
                set_flags,
                rd: parse_reg(rd, line)?,
                rn: parse_reg(rn, line)?,
                op2: parse_op2(rest, line)?,
            });
        }
        Err(err("unknown mnemonic"))
    }
}

/// Parses a multi-line assembly listing; blank lines and `@` / `;` comments
/// are skipped.
///
/// # Errors
///
/// Returns the first line that fails to parse.
///
/// # Examples
///
/// ```
/// let block = gpa_arm::parse::parse_listing(
///     "ldr r3, [r1], #4\n sub r2, r2, r3 @ comment\n\n add r4, r2, #4",
/// )?;
/// assert_eq!(block.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_listing(text: &str) -> Result<Vec<Instruction>, ParseInstructionError> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = match raw.find(['@', ';']) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(line.parse()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    /// Every display form parses back to the same instruction.
    fn round_trip(text: &str) {
        let insn: Instruction = text.parse().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(insn.to_string(), text);
        let again: Instruction = insn.to_string().parse().unwrap();
        assert_eq!(again, insn);
    }

    #[test]
    fn parses_paper_example() {
        // The running example from Fig. 1 of the paper.
        let block = parse_listing(
            "ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             ldr r3, [r1]!\n\
             add r4, r2, #4",
        )
        .unwrap();
        assert_eq!(block.len(), 7);
        assert_eq!(block[1], block[4]);
        assert_eq!(block[2], block[6]);
    }

    #[test]
    fn display_parse_round_trips() {
        for text in [
            "add r4, r2, #4",
            "subs r2, r2, r3",
            "addeqs r1, r1, r2, lsl #2",
            "mov r0, #1",
            "mvnne r3, r4",
            "cmp r1, #0",
            "tst r2, #255",
            "ldr r3, [r1]",
            "ldr r3, [r1, #8]",
            "ldr r3, [r1], #4",
            "ldr r3, [r1]!",
            "strb r0, [r5, -r6]",
            "ldrb r2, [r3, r4]",
            "str r0, [sp, #-4]!",
            "stmdb sp!, {r4, r5, lr}",
            "ldmia sp!, {r4, r5, pc}",
            "bx lr",
            "swi #3",
            "mul r0, r1, r2",
            "mla r0, r1, r2, r3",
            "b +16",
            "blne -32",
        ] {
            round_trip(text);
        }
    }

    #[test]
    fn parse_encode_matches_hand_decoding() {
        let insn: Instruction = "add r4, r2, #4".parse().unwrap();
        let word = insn.encode().unwrap();
        assert_eq!(decode(word).unwrap(), insn);
    }

    #[test]
    fn reglist_ranges() {
        let insn: Instruction = "push {r0-r3, r7, lr}".parse().unwrap();
        let Instruction::Block { regs, .. } = insn else {
            panic!("not a block transfer");
        };
        assert_eq!(regs.len(), 6);
        assert!(regs.contains(Reg::r(2)));
        assert!(regs.contains(Reg::LR));
    }

    #[test]
    fn rejects_malformed() {
        assert!("frobnicate r0".parse::<Instruction>().is_err());
        assert!("add r0".parse::<Instruction>().is_err());
        assert!("cmps r0, #1".parse::<Instruction>().is_err());
        assert!("ldr r0, (r1)".parse::<Instruction>().is_err());
        assert!("push {r3-r1}".parse::<Instruction>().is_err());
        assert!("bx".parse::<Instruction>().is_err());
    }

    #[test]
    fn comments_and_blanks() {
        let listing = parse_listing("@ nothing\n\n mov r0, #0 ; trailing\n").unwrap();
        assert_eq!(listing, vec![Instruction::mov_imm(Reg::r(0), 0)]);
    }
}
