//! General-purpose register names.

use std::fmt;
use std::str::FromStr;

/// One of the sixteen ARM general-purpose registers.
///
/// `r13`, `r14` and `r15` double as the stack pointer, link register and
/// program counter; the conventional aliases are available as the associated
/// constants [`Reg::SP`], [`Reg::LR`] and [`Reg::PC`].
///
/// # Examples
///
/// ```
/// use gpa_arm::Reg;
///
/// let r = Reg::r(3);
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!("lr".parse::<Reg>()?, Reg::LR);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer, `r13`.
    pub const SP: Reg = Reg(13);
    /// The link register, `r14`.
    pub const LR: Reg = Reg(14);
    /// The program counter, `r15`.
    pub const PC: Reg = Reg(15);

    /// Creates a register from its number.
    ///
    /// Returns `None` if `n > 15`.
    pub const fn new(n: u8) -> Option<Reg> {
        if n <= 15 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub const fn r(n: u8) -> Reg {
        match Reg::new(n) {
            Some(r) => r,
            None => panic!("register number out of range"),
        }
    }

    /// The register number, `0..=15`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this register is the program counter.
    pub fn is_pc(self) -> bool {
        self == Reg::PC
    }

    /// Iterates over all sixteen registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => write!(f, "sp"),
            14 => write!(f, "lr"),
            15 => write!(f, "pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegError(pub(crate) String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sp" => return Ok(Reg::SP),
            "lr" => return Ok(Reg::LR),
            "pc" => return Ok(Reg::PC),
            "ip" => return Ok(Reg(12)),
            "fp" => return Ok(Reg(11)),
            _ => {}
        }
        s.strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(Reg::new)
            .ok_or_else(|| ParseRegError(s.to_owned()))
    }
}

/// A set of registers, stored as a 16-bit mask (bit *i* = `r<i>`).
///
/// This is the representation used by `ldm`/`stm` register lists, def/use
/// sets and liveness analysis.
///
/// # Examples
///
/// ```
/// use gpa_arm::reg::RegSet;
/// use gpa_arm::Reg;
///
/// let mut set = RegSet::EMPTY;
/// set.insert(Reg::r(0));
/// set.insert(Reg::LR);
/// assert!(set.contains(Reg::r(0)));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.to_string(), "{r0, lr}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RegSet(pub u16);

impl RegSet {
    /// The empty register set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Creates a set containing the given registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::EMPTY;
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Adds a register to the set.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.number();
    }

    /// Removes a register from the set.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.number());
    }

    /// Whether the set contains `r`.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.number()) != 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Registers in `self` but not in `other`.
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Whether the two sets share any register.
    pub fn intersects(self, other: RegSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the members in ascending register number.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..16).filter(move |i| self.0 & (1 << i) != 0).map(Reg)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_display() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
        assert_eq!(Reg::r(7).to_string(), "r7");
    }

    #[test]
    fn parse_round_trip() {
        for r in Reg::all() {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
        // Numeric names for the aliased registers also parse.
        assert_eq!("r13".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("r15".parse::<Reg>().unwrap(), Reg::PC);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn new_bounds() {
        assert!(Reg::new(15).is_some());
        assert!(Reg::new(16).is_none());
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::r(0));
        s.insert(Reg::r(4));
        s.insert(Reg::LR);
        assert_eq!(s.len(), 3);
        assert!(s.contains(Reg::r(4)));
        s.remove(Reg::r(4));
        assert!(!s.contains(Reg::r(4)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg::r(0), Reg::LR]);
    }

    #[test]
    fn regset_algebra() {
        let a = RegSet::of(&[Reg::r(0), Reg::r(1)]);
        let b = RegSet::of(&[Reg::r(1), Reg::r(2)]);
        assert_eq!(a.union(b), RegSet::of(&[Reg::r(0), Reg::r(1), Reg::r(2)]));
        assert_eq!(a.intersection(b), RegSet::of(&[Reg::r(1)]));
        assert_eq!(a.difference(b), RegSet::of(&[Reg::r(0)]));
        assert!(a.intersects(b));
        assert!(!a.intersects(RegSet::of(&[Reg::r(9)])));
    }

    #[test]
    fn regset_display() {
        assert_eq!(RegSet::EMPTY.to_string(), "{}");
        assert_eq!(RegSet::of(&[Reg::r(1), Reg::SP]).to_string(), "{r1, sp}");
    }
}
