//! Def/use analysis: the dependence interface of an instruction.
//!
//! [`Effects`] summarizes which registers, condition flags and memory an
//! instruction reads and writes. Data-flow-graph construction, liveness
//! analysis and the scheduler all depend exclusively on this summary, so the
//! conservative choices (e.g. `swi` touching memory) are made once, here.

use crate::cond::Cond;
use crate::insn::{DpOp, Instruction, MemOffset, MemOp, Operand2};
use crate::reg::{Reg, RegSet};

/// The complete read/write footprint of one instruction.
///
/// # Examples
///
/// ```
/// use gpa_arm::{Instruction, Reg};
///
/// let insn: Instruction = "ldr r3, [r1], #4".parse()?;
/// let fx = insn.effects();
/// assert!(fx.uses.contains(Reg::r(1)));
/// assert!(fx.defs.contains(Reg::r(3)));
/// assert!(fx.defs.contains(Reg::r(1))); // post-index writeback
/// assert!(fx.reads_mem);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Effects {
    /// Registers read.
    pub uses: RegSet,
    /// Registers written.
    pub defs: RegSet,
    /// Whether the condition flags are read (conditional execution,
    /// carry-consuming arithmetic).
    pub reads_flags: bool,
    /// Whether the condition flags are written (`s` suffix, compares).
    pub writes_flags: bool,
    /// Whether memory is read.
    pub reads_mem: bool,
    /// Whether memory is written.
    pub writes_mem: bool,
}

impl Effects {
    fn use_op2(&mut self, op2: Operand2) {
        match op2 {
            Operand2::Imm(_) => {}
            Operand2::Reg(r) | Operand2::RegShift(r, _, _) => self.uses.insert(r),
        }
    }
}

/// Whether two footprints conflict, i.e. the instructions that produced
/// them must keep their relative order: one writes state the other reads
/// or writes (registers, flags, or — conservatively — memory; two reads
/// of memory never conflict).
pub fn conflicts(a: &Effects, b: &Effects) -> bool {
    reg_or_flag_conflict(a, b) || mem_conflict(a, b)
}

/// The register and flag half of [`conflicts`]: RAW / WAR / WAW on
/// registers, plus flag write/read ordering. This half can never be
/// relaxed by memory disambiguation.
pub fn reg_or_flag_conflict(a: &Effects, b: &Effects) -> bool {
    a.defs.intersects(b.uses)
        || a.uses.intersects(b.defs)
        || a.defs.intersects(b.defs)
        || (a.writes_flags && (b.reads_flags || b.writes_flags))
        || (a.reads_flags && b.writes_flags)
}

/// The memory half of [`conflicts`]: loads may be reordered with loads,
/// nothing else. An alias analysis that proves the two accesses disjoint
/// may exempt a pair from this half (see `gpa::validate`'s V107).
pub fn mem_conflict(a: &Effects, b: &Effects) -> bool {
    (a.writes_mem && (b.reads_mem || b.writes_mem)) || (a.reads_mem && b.writes_mem)
}

impl Instruction {
    /// Computes the read/write footprint of this instruction.
    pub fn effects(&self) -> Effects {
        let mut fx = Effects::default();
        if self.cond() != Cond::Al {
            fx.reads_flags = true;
        }
        match *self {
            Instruction::DataProc {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                if !op.is_move() {
                    fx.uses.insert(rn);
                }
                fx.use_op2(op2);
                if !op.is_compare() {
                    fx.defs.insert(rd);
                }
                if set_flags || op.is_compare() {
                    fx.writes_flags = true;
                }
                if matches!(op, DpOp::Adc | DpOp::Sbc | DpOp::Rsc) {
                    fx.reads_flags = true;
                }
            }
            Instruction::Mul {
                set_flags,
                rd,
                rm,
                rs,
                ..
            } => {
                fx.uses.insert(rm);
                fx.uses.insert(rs);
                fx.defs.insert(rd);
                fx.writes_flags |= set_flags;
            }
            Instruction::Mla {
                set_flags,
                rd,
                rm,
                rs,
                rn,
                ..
            } => {
                fx.uses.insert(rm);
                fx.uses.insert(rs);
                fx.uses.insert(rn);
                fx.defs.insert(rd);
                fx.writes_flags |= set_flags;
            }
            Instruction::Mem {
                op,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                fx.uses.insert(rn);
                if let MemOffset::Reg(rm, _) = offset {
                    fx.uses.insert(rm);
                }
                match op {
                    MemOp::Ldr => {
                        fx.defs.insert(rd);
                        fx.reads_mem = true;
                    }
                    MemOp::Str => {
                        fx.uses.insert(rd);
                        fx.writes_mem = true;
                    }
                }
                if mode.writes_back() {
                    fx.defs.insert(rn);
                }
            }
            Instruction::Block {
                op,
                rn,
                writeback,
                regs,
                ..
            } => {
                fx.uses.insert(rn);
                match op {
                    MemOp::Ldr => {
                        fx.defs = fx.defs.union(regs);
                        fx.reads_mem = true;
                    }
                    MemOp::Str => {
                        fx.uses = fx.uses.union(regs);
                        fx.writes_mem = true;
                    }
                }
                if writeback {
                    fx.defs.insert(rn);
                }
            }
            Instruction::Branch { link, .. } => {
                if link {
                    fx.defs.insert(Reg::LR);
                }
                fx.defs.insert(Reg::PC);
            }
            Instruction::Bx { rm, .. } => {
                fx.uses.insert(rm);
                fx.defs.insert(Reg::PC);
            }
            Instruction::Swi { .. } => {
                // System-call convention: service args in r0..r2, result in
                // r0. Conservatively touches memory both ways.
                fx.uses = fx
                    .uses
                    .union(RegSet::of(&[Reg::r(0), Reg::r(1), Reg::r(2)]));
                fx.defs.insert(Reg::r(0));
                fx.reads_mem = true;
                fx.writes_mem = true;
            }
        }
        fx
    }

    /// Whether two instructions must keep their relative order: true when
    /// one writes state the other reads or writes (registers, flags, or —
    /// conservatively — memory).
    pub fn depends_on(&self, earlier: &Instruction) -> bool {
        conflicts(&earlier.effects(), &self.effects())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction as I;
    use crate::reg::RegSet;
    use crate::BlockMode;

    #[test]
    fn data_processing_effects() {
        let add = I::dp_reg(DpOp::Add, Reg::r(4), Reg::r(2), Reg::r(3));
        let fx = add.effects();
        assert_eq!(fx.uses, RegSet::of(&[Reg::r(2), Reg::r(3)]));
        assert_eq!(fx.defs, RegSet::of(&[Reg::r(4)]));
        assert!(!fx.reads_flags && !fx.writes_flags);

        let cmp: I = "cmp r1, #0".parse().unwrap();
        let fx = cmp.effects();
        assert_eq!(fx.uses, RegSet::of(&[Reg::r(1)]));
        assert!(fx.defs.is_empty());
        assert!(fx.writes_flags);

        let adc: I = "adc r0, r0, r1".parse().unwrap();
        assert!(adc.effects().reads_flags);

        let moveq: I = "moveq r0, #1".parse().unwrap();
        assert!(moveq.effects().reads_flags);
    }

    #[test]
    fn memory_effects() {
        let post: I = "ldr r3, [r1], #4".parse().unwrap();
        let fx = post.effects();
        assert_eq!(fx.uses, RegSet::of(&[Reg::r(1)]));
        assert_eq!(fx.defs, RegSet::of(&[Reg::r(3), Reg::r(1)]));
        assert!(fx.reads_mem && !fx.writes_mem);

        let store: I = "str r0, [sp, #8]".parse().unwrap();
        let fx = store.effects();
        assert_eq!(fx.uses, RegSet::of(&[Reg::r(0), Reg::SP]));
        assert!(fx.defs.is_empty());
        assert!(fx.writes_mem);
    }

    #[test]
    fn block_and_branch_effects() {
        let push = I::Block {
            cond: Cond::Al,
            op: MemOp::Str,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Db,
            regs: RegSet::of(&[Reg::r(4), Reg::LR]),
        };
        let fx = push.effects();
        assert!(fx.uses.contains(Reg::r(4)) && fx.uses.contains(Reg::LR));
        assert_eq!(fx.defs, RegSet::of(&[Reg::SP]));

        let bl = I::Branch {
            cond: Cond::Al,
            link: true,
            offset: 0,
        };
        assert!(bl.effects().defs.contains(Reg::LR));
        assert!(bl.effects().defs.contains(Reg::PC));

        assert!(I::ret().effects().uses.contains(Reg::LR));
    }

    #[test]
    fn dependence_relation() {
        let ld: I = "ldr r3, [r1], #4".parse().unwrap();
        let sub: I = "sub r2, r2, r3".parse().unwrap();
        let add: I = "add r4, r2, #4".parse().unwrap();
        // RAW: sub reads r3 that ldr defines.
        assert!(sub.depends_on(&ld));
        // add does not touch r3/r1.
        assert!(!add.depends_on(&ld));
        // WAW between the two writeback loads.
        assert!(ld.depends_on(&ld));
        // Independent loads may be reordered.
        let ld2: I = "ldr r5, [r6]".parse().unwrap();
        let ld3: I = "ldr r7, [r8]".parse().unwrap();
        assert!(!ld3.depends_on(&ld2));
        // Store vs load must stay ordered.
        let st: I = "str r0, [r6]".parse().unwrap();
        assert!(st.depends_on(&ld2) || ld2.depends_on(&st));
        // Flag chain: cmp then beq.
        let cmp: I = "cmp r1, #0".parse().unwrap();
        let beq = I::Branch {
            cond: Cond::Eq,
            link: false,
            offset: 0,
        };
        assert!(beq.depends_on(&cmp));
    }
}
