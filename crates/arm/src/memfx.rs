//! Addressing-shape extraction: the syntactic form of an instruction's
//! memory accesses.
//!
//! [`MemFx`] refines the boolean `reads_mem`/`writes_mem` bits of
//! [`crate::defuse::Effects`] into *shapes*: which base register each
//! access goes through, at which displacement, and how many bytes it
//! touches. The shapes are purely syntactic — no value knowledge — so an
//! abstract interpreter (e.g. `gpa_verify::absint`) can resolve them
//! against per-point register values and prove accesses disjoint.

use crate::insn::{AddressMode, BlockMode, Instruction, MemOffset, MemOp};
use crate::reg::Reg;

/// A displacement relative to a base register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemDisp {
    /// A known byte displacement.
    Imm(i64),
    /// A register displacement; `true` means the register is subtracted.
    Reg(Reg, bool),
}

/// One memory access of an instruction: `width` bytes at
/// `base + disp`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Base register the address is formed from.
    pub base: Reg,
    /// Displacement added to the base.
    pub disp: MemDisp,
    /// Access width in bytes (1 for byte transfers, 4 for words,
    /// `4 * n` for an `n`-register block transfer).
    pub width: i64,
    /// Whether the access writes memory.
    pub store: bool,
}

/// The complete addressing shape of one instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemFx {
    /// Every memory access the instruction may perform. `None` when the
    /// instruction touches memory in a shape that cannot be described by
    /// base + displacement (today only `swi`, whose service routine may
    /// access arbitrary memory); `Some(vec![])` when it touches no
    /// memory at all.
    pub accesses: Option<Vec<MemAccess>>,
    /// Base-register writeback performed by the instruction, as
    /// `(register, delta)`.
    pub writeback: Option<(Reg, MemDisp)>,
}

impl MemFx {
    fn none() -> MemFx {
        MemFx {
            accesses: Some(Vec::new()),
            writeback: None,
        }
    }
}

impl Instruction {
    /// Extracts the addressing shape of this instruction.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpa_arm::{Instruction, Reg};
    /// use gpa_arm::memfx::MemDisp;
    ///
    /// let st: Instruction = "str r0, [sp, #8]".parse()?;
    /// let fx = st.mem_fx();
    /// let accesses = fx.accesses.unwrap();
    /// assert_eq!(accesses.len(), 1);
    /// assert_eq!(accesses[0].base, Reg::SP);
    /// assert_eq!(accesses[0].disp, MemDisp::Imm(8));
    /// assert_eq!(accesses[0].width, 4);
    /// assert!(accesses[0].store);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn mem_fx(&self) -> MemFx {
        match *self {
            Instruction::Mem {
                op,
                byte,
                rn,
                offset,
                mode,
                ..
            } => {
                let disp = match (mode, offset) {
                    // Post-indexed addressing uses the unmodified base.
                    (AddressMode::PostIndexed, _) => MemDisp::Imm(0),
                    (_, MemOffset::Imm(d)) => MemDisp::Imm(i64::from(d)),
                    (_, MemOffset::Reg(rm, sub)) => MemDisp::Reg(rm, sub),
                };
                let writeback = if mode.writes_back() {
                    Some((
                        rn,
                        match offset {
                            MemOffset::Imm(d) => MemDisp::Imm(i64::from(d)),
                            MemOffset::Reg(rm, sub) => MemDisp::Reg(rm, sub),
                        },
                    ))
                } else {
                    None
                };
                MemFx {
                    accesses: Some(vec![MemAccess {
                        base: rn,
                        disp,
                        width: if byte { 1 } else { 4 },
                        store: op == MemOp::Str,
                    }]),
                    writeback,
                }
            }
            Instruction::Block {
                op,
                rn,
                writeback,
                mode,
                regs,
                ..
            } => {
                let n = i64::from(regs.len());
                // The transferred words form one contiguous range whose
                // placement relative to the base depends on the mode:
                // ia [rn, rn+4n), ib [rn+4, rn+4n+4),
                // da [rn-4n+4, rn+4), db [rn-4n, rn).
                let lo = match mode {
                    BlockMode::Ia => 0,
                    BlockMode::Ib => 4,
                    BlockMode::Da => 4 - 4 * n,
                    BlockMode::Db => -4 * n,
                };
                let delta = match mode {
                    BlockMode::Ia | BlockMode::Ib => 4 * n,
                    BlockMode::Da | BlockMode::Db => -4 * n,
                };
                MemFx {
                    accesses: Some(vec![MemAccess {
                        base: rn,
                        disp: MemDisp::Imm(lo),
                        width: 4 * n,
                        store: op == MemOp::Str,
                    }]),
                    writeback: writeback.then_some((rn, MemDisp::Imm(delta))),
                }
            }
            // The system-call gate may access arbitrary memory.
            Instruction::Swi { .. } => MemFx {
                accesses: None,
                writeback: None,
            },
            _ => MemFx::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::RegSet;

    fn insn(text: &str) -> Instruction {
        text.parse().unwrap()
    }

    #[test]
    fn word_and_byte_transfers() {
        let fx = insn("ldr r3, [sp, #4]").mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].base, Reg::SP);
        assert_eq!(acc[0].disp, MemDisp::Imm(4));
        assert_eq!(acc[0].width, 4);
        assert!(!acc[0].store);
        assert!(fx.writeback.is_none());

        let fx = insn("strb r0, [r1, #-3]").mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Imm(-3));
        assert_eq!(acc[0].width, 1);
        assert!(acc[0].store);
    }

    #[test]
    fn indexed_modes_split_address_and_writeback() {
        // Pre-indexed: access at rn + d, rn updated by d.
        let fx = insn("str r0, [sp, #-4]!").mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Imm(-4));
        assert_eq!(fx.writeback, Some((Reg::SP, MemDisp::Imm(-4))));

        // Post-indexed: access at rn, rn updated by d.
        let fx = insn("ldr r3, [r1], #4").mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Imm(0));
        assert_eq!(fx.writeback, Some((Reg::r(1), MemDisp::Imm(4))));
    }

    #[test]
    fn register_offsets_stay_symbolic() {
        let fx = insn("ldr r0, [r1, r2]").mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Reg(Reg::r(2), false));
    }

    #[test]
    fn block_modes_cover_the_transferred_range() {
        let push = Instruction::Block {
            cond: Cond::Al,
            op: MemOp::Str,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Db,
            regs: RegSet::of(&[Reg::r(4), Reg::LR]),
        };
        let fx = push.mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Imm(-8));
        assert_eq!(acc[0].width, 8);
        assert!(acc[0].store);
        assert_eq!(fx.writeback, Some((Reg::SP, MemDisp::Imm(-8))));

        let pop = Instruction::Block {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Ia,
            regs: RegSet::of(&[Reg::r(4), Reg::PC]),
        };
        let fx = pop.mem_fx();
        let acc = fx.accesses.unwrap();
        assert_eq!(acc[0].disp, MemDisp::Imm(0));
        assert_eq!(acc[0].width, 8);
        assert!(!acc[0].store);
        assert_eq!(fx.writeback, Some((Reg::SP, MemDisp::Imm(8))));
    }

    #[test]
    fn swi_is_unresolvable_and_alu_is_memory_free() {
        assert_eq!(insn("swi #1").mem_fx().accesses, None);
        let fx = insn("add r0, r1, r2").mem_fx();
        assert_eq!(fx.accesses, Some(Vec::new()));
        assert!(fx.writeback.is_none());
    }
}
