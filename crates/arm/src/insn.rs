//! The structured instruction representation.

use std::fmt;

use crate::cond::Cond;
use crate::reg::{Reg, RegSet};

/// The sixteen ARM data-processing opcodes, in encoding order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND.
    And = 0,
    /// Bitwise exclusive OR.
    Eor = 1,
    /// Subtract.
    Sub = 2,
    /// Reverse subtract (`rd = op2 - rn`).
    Rsb = 3,
    /// Add.
    Add = 4,
    /// Add with carry.
    Adc = 5,
    /// Subtract with carry.
    Sbc = 6,
    /// Reverse subtract with carry.
    Rsc = 7,
    /// Test bits (AND, flags only).
    Tst = 8,
    /// Test equivalence (EOR, flags only).
    Teq = 9,
    /// Compare (SUB, flags only).
    Cmp = 10,
    /// Compare negated (ADD, flags only).
    Cmn = 11,
    /// Bitwise OR.
    Orr = 12,
    /// Move.
    Mov = 13,
    /// Bit clear (`rd = rn & !op2`).
    Bic = 14,
    /// Move NOT.
    Mvn = 15,
}

impl DpOp {
    /// All opcodes in encoding order.
    pub const ALL: [DpOp; 16] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Rsc,
        DpOp::Tst,
        DpOp::Teq,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Bic,
        DpOp::Mvn,
    ];

    /// The four-bit opcode field value.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes from the four-bit opcode field.
    pub fn from_bits(bits: u32) -> Option<DpOp> {
        DpOp::ALL.get(bits as usize).copied()
    }

    /// Whether the opcode only sets flags and writes no destination register
    /// (`tst`, `teq`, `cmp`, `cmn`).
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// Whether the opcode takes no first source operand (`mov`, `mvn`).
    pub fn is_move(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Rsc => "rsc",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Orr => "orr",
            DpOp::Mov => "mov",
            DpOp::Bic => "bic",
            DpOp::Mvn => "mvn",
        }
    }
}

impl fmt::Display for DpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A barrel-shifter operation applied to a register operand.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right.
    Ror,
}

impl ShiftKind {
    /// The two-bit shift field value.
    pub fn bits(self) -> u32 {
        match self {
            ShiftKind::Lsl => 0,
            ShiftKind::Lsr => 1,
            ShiftKind::Asr => 2,
            ShiftKind::Ror => 3,
        }
    }

    /// Decodes from the two-bit shift field.
    pub fn from_bits(bits: u32) -> Option<ShiftKind> {
        match bits {
            0 => Some(ShiftKind::Lsl),
            1 => Some(ShiftKind::Lsr),
            2 => Some(ShiftKind::Asr),
            3 => Some(ShiftKind::Ror),
            _ => None,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }
}

impl fmt::Display for ShiftKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The flexible second operand of a data-processing instruction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operand2 {
    /// An immediate. Must be expressible as an 8-bit value rotated right by
    /// an even amount (checked at encode time).
    Imm(u32),
    /// A plain register.
    Reg(Reg),
    /// A register shifted by an immediate amount (`1..=31` for `lsl`,
    /// `1..=32` for the others; `lsr/asr #32` is encoded as shift field 0).
    RegShift(Reg, ShiftKind, u8),
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Imm(v) => write!(f, "#{}", *v as i32),
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::RegShift(r, k, n) => write!(f, "{r}, {k} #{n}"),
        }
    }
}

/// Load or store direction of a single data transfer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemOp {
    /// `ldr` / `ldrb`.
    Ldr,
    /// `str` / `strb`.
    Str,
}

/// The offset part of a single-data-transfer address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemOffset {
    /// A signed immediate offset; magnitude must fit in 12 bits.
    Imm(i32),
    /// A register offset; `true` means subtract.
    Reg(Reg, bool),
}

impl MemOffset {
    /// Whether the offset is the immediate zero.
    pub fn is_zero(self) -> bool {
        matches!(self, MemOffset::Imm(0))
    }
}

/// How the base register and offset combine in a single data transfer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AddressMode {
    /// `[rn, off]` — offset addressing, base unchanged.
    Offset,
    /// `[rn, off]!` — pre-indexed: address is `rn + off`, then written back.
    PreIndexed,
    /// `[rn], off` — post-indexed: address is `rn`, then `rn += off`.
    PostIndexed,
}

impl AddressMode {
    /// Whether the base register is written back.
    pub fn writes_back(self) -> bool {
        !matches!(self, AddressMode::Offset)
    }
}

/// Direction/ordering mode of a load/store-multiple instruction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BlockMode {
    /// Increment after (`ia`) — `pop` is `ldmia sp!`.
    Ia,
    /// Increment before (`ib`).
    Ib,
    /// Decrement after (`da`).
    Da,
    /// Decrement before (`db`) — `push` is `stmdb sp!`.
    Db,
}

impl BlockMode {
    /// The (P, U) bit pair of the encoding.
    pub fn pu_bits(self) -> (u32, u32) {
        match self {
            BlockMode::Ia => (0, 1),
            BlockMode::Ib => (1, 1),
            BlockMode::Da => (0, 0),
            BlockMode::Db => (1, 0),
        }
    }

    /// Decodes from the (P, U) bit pair.
    pub fn from_pu_bits(p: u32, u: u32) -> BlockMode {
        match (p, u) {
            (0, 1) => BlockMode::Ia,
            (1, 1) => BlockMode::Ib,
            (0, 0) => BlockMode::Da,
            _ => BlockMode::Db,
        }
    }

    /// The assembly suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            BlockMode::Ia => "ia",
            BlockMode::Ib => "ib",
            BlockMode::Da => "da",
            BlockMode::Db => "db",
        }
    }
}

/// A single instruction of the supported ARM subset.
///
/// Branch targets are stored as the raw signed *word* offset of the encoding
/// (relative to the address of the branch plus 8); the control-flow layer
/// converts them to and from labels.
///
/// # Examples
///
/// ```
/// use gpa_arm::{Instruction, DpOp, Operand2, Reg, Cond};
///
/// let insn = Instruction::DataProc {
///     cond: Cond::Al,
///     op: DpOp::Add,
///     set_flags: false,
///     rd: Reg::r(4),
///     rn: Reg::r(2),
///     op2: Operand2::Imm(4),
/// };
/// assert_eq!(insn.to_string(), "add r4, r2, #4");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// A data-processing instruction (`add`, `sub`, `mov`, `cmp`, …).
    DataProc {
        /// Condition code.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Whether the instruction updates the condition flags (`s` suffix).
        /// Always `true` for the compare opcodes.
        set_flags: bool,
        /// Destination register (ignored for compares; by convention `r0`).
        rd: Reg,
        /// First operand register (ignored for moves; by convention `r0`).
        rn: Reg,
        /// Flexible second operand.
        op2: Operand2,
    },
    /// 32-bit multiply `mul rd, rm, rs`.
    Mul {
        /// Condition code.
        cond: Cond,
        /// Whether the instruction updates the condition flags.
        set_flags: bool,
        /// Destination register.
        rd: Reg,
        /// First factor.
        rm: Reg,
        /// Second factor.
        rs: Reg,
    },
    /// Multiply-accumulate `mla rd, rm, rs, rn` (`rd = rm * rs + rn`).
    Mla {
        /// Condition code.
        cond: Cond,
        /// Whether the instruction updates the condition flags.
        set_flags: bool,
        /// Destination register.
        rd: Reg,
        /// First factor.
        rm: Reg,
        /// Second factor.
        rs: Reg,
        /// Addend.
        rn: Reg,
    },
    /// A single data transfer (`ldr`, `str`, `ldrb`, `strb`).
    Mem {
        /// Condition code.
        cond: Cond,
        /// Load or store.
        op: MemOp,
        /// Byte (`true`) or word (`false`) transfer.
        byte: bool,
        /// Transferred register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset.
        offset: MemOffset,
        /// Offset/pre/post indexing.
        mode: AddressMode,
    },
    /// Load/store multiple (`ldm*`, `stm*`); covers `push`/`pop`.
    Block {
        /// Condition code.
        cond: Cond,
        /// Load (`ldm`) or store (`stm`).
        op: MemOp,
        /// Base register.
        rn: Reg,
        /// Whether the base is written back (`!`).
        writeback: bool,
        /// Increment/decrement before/after.
        mode: BlockMode,
        /// The transferred register list.
        regs: RegSet,
    },
    /// A branch (`b`) or branch-with-link (`bl`).
    Branch {
        /// Condition code.
        cond: Cond,
        /// Whether the link register is set (`bl`).
        link: bool,
        /// Signed word offset relative to this instruction's address + 8.
        offset: i32,
    },
    /// Branch-and-exchange `bx rm`; `bx lr` is the subset's return idiom.
    Bx {
        /// Condition code.
        cond: Cond,
        /// Target address register.
        rm: Reg,
    },
    /// Software interrupt — the emulator's system-call gate.
    Swi {
        /// Condition code.
        cond: Cond,
        /// 24-bit comment field selecting the service.
        imm: u32,
    },
}

impl Instruction {
    /// The condition code of any instruction.
    pub fn cond(&self) -> Cond {
        match *self {
            Instruction::DataProc { cond, .. }
            | Instruction::Mul { cond, .. }
            | Instruction::Mla { cond, .. }
            | Instruction::Mem { cond, .. }
            | Instruction::Block { cond, .. }
            | Instruction::Branch { cond, .. }
            | Instruction::Bx { cond, .. }
            | Instruction::Swi { cond, .. } => cond,
        }
    }

    /// Whether this instruction can transfer control: branches, `bx`, and
    /// anything that writes the program counter.
    pub fn is_control_flow(&self) -> bool {
        match self {
            Instruction::Branch { .. } | Instruction::Bx { .. } | Instruction::Swi { .. } => true,
            _ => self.effects().defs.contains(Reg::PC),
        }
    }

    /// Whether this is an *unconditional* control transfer after which
    /// execution never falls through (`b`, `bx`, or a pc-writing pop).
    pub fn ends_block(&self) -> bool {
        match self {
            Instruction::Branch { cond, link, .. } => cond.is_always() && !link,
            Instruction::Bx { cond, .. } => cond.is_always(),
            _ => self.cond().is_always() && self.effects().defs.contains(Reg::PC),
        }
    }

    /// Convenience constructor: `mov rd, #imm`.
    pub fn mov_imm(rd: Reg, imm: u32) -> Instruction {
        Instruction::DataProc {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags: false,
            rd,
            rn: Reg::r(0),
            op2: Operand2::Imm(imm),
        }
    }

    /// Convenience constructor: `mov rd, rm`.
    pub fn mov_reg(rd: Reg, rm: Reg) -> Instruction {
        Instruction::DataProc {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags: false,
            rd,
            rn: Reg::r(0),
            op2: Operand2::Reg(rm),
        }
    }

    /// Convenience constructor: a three-register data-processing instruction.
    pub fn dp_reg(op: DpOp, rd: Reg, rn: Reg, rm: Reg) -> Instruction {
        Instruction::DataProc {
            cond: Cond::Al,
            op,
            set_flags: false,
            rd,
            rn,
            op2: Operand2::Reg(rm),
        }
    }

    /// Convenience constructor: a register-immediate data-processing
    /// instruction.
    pub fn dp_imm(op: DpOp, rd: Reg, rn: Reg, imm: u32) -> Instruction {
        Instruction::DataProc {
            cond: Cond::Al,
            op,
            set_flags: false,
            rd,
            rn,
            op2: Operand2::Imm(imm),
        }
    }

    /// Convenience constructor: `ldr rd, [rn, #off]`.
    pub fn ldr_imm(rd: Reg, rn: Reg, off: i32) -> Instruction {
        Instruction::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            byte: false,
            rd,
            rn,
            offset: MemOffset::Imm(off),
            mode: AddressMode::Offset,
        }
    }

    /// Convenience constructor: `str rd, [rn, #off]`.
    pub fn str_imm(rd: Reg, rn: Reg, off: i32) -> Instruction {
        Instruction::Mem {
            cond: Cond::Al,
            op: MemOp::Str,
            byte: false,
            rd,
            rn,
            offset: MemOffset::Imm(off),
            mode: AddressMode::Offset,
        }
    }

    /// Convenience constructor: the return idiom `bx lr`.
    pub fn ret() -> Instruction {
        Instruction::Bx {
            cond: Cond::Al,
            rm: Reg::LR,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::DataProc {
                cond,
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let s = if set_flags && !op.is_compare() {
                    "s"
                } else {
                    ""
                };
                if op.is_compare() {
                    write!(f, "{op}{cond} {rn}, {op2}")
                } else if op.is_move() {
                    write!(f, "{op}{cond}{s} {rd}, {op2}")
                } else {
                    write!(f, "{op}{cond}{s} {rd}, {rn}, {op2}")
                }
            }
            Instruction::Mul {
                cond,
                set_flags,
                rd,
                rm,
                rs,
            } => {
                let s = if set_flags { "s" } else { "" };
                write!(f, "mul{cond}{s} {rd}, {rm}, {rs}")
            }
            Instruction::Mla {
                cond,
                set_flags,
                rd,
                rm,
                rs,
                rn,
            } => {
                let s = if set_flags { "s" } else { "" };
                write!(f, "mla{cond}{s} {rd}, {rm}, {rs}, {rn}")
            }
            Instruction::Mem {
                cond,
                op,
                byte,
                rd,
                rn,
                offset,
                mode,
            } => {
                let name = match op {
                    MemOp::Ldr => "ldr",
                    MemOp::Str => "str",
                };
                let b = if byte { "b" } else { "" };
                write!(f, "{name}{cond}{b} {rd}, ")?;
                let off = |f: &mut fmt::Formatter<'_>| match offset {
                    MemOffset::Imm(v) => write!(f, ", #{v}"),
                    MemOffset::Reg(r, false) => write!(f, ", {r}"),
                    MemOffset::Reg(r, true) => write!(f, ", -{r}"),
                };
                match mode {
                    AddressMode::Offset => {
                        if offset.is_zero() {
                            write!(f, "[{rn}]")
                        } else {
                            write!(f, "[{rn}")?;
                            off(f)?;
                            write!(f, "]")
                        }
                    }
                    AddressMode::PreIndexed => {
                        if offset.is_zero() {
                            write!(f, "[{rn}]!")
                        } else {
                            write!(f, "[{rn}")?;
                            off(f)?;
                            write!(f, "]!")
                        }
                    }
                    AddressMode::PostIndexed => {
                        write!(f, "[{rn}]")?;
                        off(f)
                    }
                }
            }
            Instruction::Block {
                cond,
                op,
                rn,
                writeback,
                mode,
                regs,
            } => {
                let name = match op {
                    MemOp::Ldr => "ldm",
                    MemOp::Str => "stm",
                };
                let wb = if writeback { "!" } else { "" };
                write!(f, "{name}{cond}{} {rn}{wb}, {regs}", mode.suffix())
            }
            Instruction::Branch { cond, link, offset } => {
                let l = if link { "l" } else { "" };
                write!(f, "b{l}{cond} {:+}", offset * 4 + 8)
            }
            Instruction::Bx { cond, rm } => write!(f, "bx{cond} {rm}"),
            Instruction::Swi { cond, imm } => write!(f, "swi{cond} #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_data_processing() {
        assert_eq!(
            Instruction::dp_imm(DpOp::Add, Reg::r(4), Reg::r(2), 4).to_string(),
            "add r4, r2, #4"
        );
        assert_eq!(
            Instruction::dp_reg(DpOp::Sub, Reg::r(2), Reg::r(2), Reg::r(3)).to_string(),
            "sub r2, r2, r3"
        );
        assert_eq!(Instruction::mov_imm(Reg::r(0), 1).to_string(), "mov r0, #1");
        let cmp = Instruction::DataProc {
            cond: Cond::Al,
            op: DpOp::Cmp,
            set_flags: true,
            rd: Reg::r(0),
            rn: Reg::r(1),
            op2: Operand2::Imm(0),
        };
        assert_eq!(cmp.to_string(), "cmp r1, #0");
        let adds = Instruction::DataProc {
            cond: Cond::Eq,
            op: DpOp::Add,
            set_flags: true,
            rd: Reg::r(1),
            rn: Reg::r(1),
            op2: Operand2::RegShift(Reg::r(2), ShiftKind::Lsl, 2),
        };
        assert_eq!(adds.to_string(), "addeqs r1, r1, r2, lsl #2");
    }

    #[test]
    fn display_memory() {
        assert_eq!(
            Instruction::ldr_imm(Reg::r(3), Reg::r(1), 0).to_string(),
            "ldr r3, [r1]"
        );
        assert_eq!(
            Instruction::ldr_imm(Reg::r(3), Reg::r(1), 8).to_string(),
            "ldr r3, [r1, #8]"
        );
        let post = Instruction::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            byte: false,
            rd: Reg::r(3),
            rn: Reg::r(1),
            offset: MemOffset::Imm(4),
            mode: AddressMode::PostIndexed,
        };
        assert_eq!(post.to_string(), "ldr r3, [r1], #4");
        let pre = Instruction::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            byte: false,
            rd: Reg::r(3),
            rn: Reg::r(1),
            offset: MemOffset::Imm(0),
            mode: AddressMode::PreIndexed,
        };
        assert_eq!(pre.to_string(), "ldr r3, [r1]!");
        let regoff = Instruction::Mem {
            cond: Cond::Al,
            op: MemOp::Str,
            byte: true,
            rd: Reg::r(0),
            rn: Reg::r(5),
            offset: MemOffset::Reg(Reg::r(6), true),
            mode: AddressMode::Offset,
        };
        assert_eq!(regoff.to_string(), "strb r0, [r5, -r6]");
    }

    #[test]
    fn display_block_and_branch() {
        let push = Instruction::Block {
            cond: Cond::Al,
            op: MemOp::Str,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Db,
            regs: RegSet::of(&[Reg::r(4), Reg::LR]),
        };
        assert_eq!(push.to_string(), "stmdb sp!, {r4, lr}");
        assert_eq!(Instruction::ret().to_string(), "bx lr");
        let b = Instruction::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -3,
        };
        assert_eq!(b.to_string(), "bne -4");
        let swi = Instruction::Swi {
            cond: Cond::Al,
            imm: 7,
        };
        assert_eq!(swi.to_string(), "swi #7");
    }

    #[test]
    fn ends_block() {
        assert!(Instruction::ret().ends_block());
        assert!(Instruction::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0
        }
        .ends_block());
        assert!(!Instruction::Branch {
            cond: Cond::Eq,
            link: false,
            offset: 0
        }
        .ends_block());
        assert!(!Instruction::Branch {
            cond: Cond::Al,
            link: true,
            offset: 0
        }
        .ends_block());
        // pop {pc} ends a block.
        let pop_pc = Instruction::Block {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rn: Reg::SP,
            writeback: true,
            mode: BlockMode::Ia,
            regs: RegSet::of(&[Reg::r(4), Reg::PC]),
        };
        assert!(pop_pc.ends_block());
    }
}
