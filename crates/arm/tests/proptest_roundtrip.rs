//! Property tests: every constructible instruction survives
//! encode→decode and display→parse round-trips, and the dependence
//! relation is consistent with the effects model.

use gpa_arm::insn::{AddressMode, BlockMode, DpOp, MemOffset, MemOp, Operand2, ShiftKind};
use gpa_arm::reg::RegSet;
use gpa_arm::{decode, Cond, Instruction, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::r)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u32..15).prop_map(|b| Cond::from_bits(b).unwrap())
}

/// An ARM-encodable immediate: an 8-bit byte rotated by an even amount.
fn arb_rotated_imm() -> impl Strategy<Value = u32> {
    (0u32..16, 0u32..=255).prop_map(|(rot, byte)| byte.rotate_right(rot * 2))
}

fn arb_shift() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (arb_reg(), 1u8..32).prop_map(|(r, n)| Operand2::RegShift(r, ShiftKind::Lsl, n)),
        (arb_reg(), 1u8..=32).prop_map(|(r, n)| Operand2::RegShift(r, ShiftKind::Lsr, n)),
        (arb_reg(), 1u8..=32).prop_map(|(r, n)| Operand2::RegShift(r, ShiftKind::Asr, n)),
        (arb_reg(), 1u8..32).prop_map(|(r, n)| Operand2::RegShift(r, ShiftKind::Ror, n)),
    ]
}

fn arb_operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        arb_rotated_imm().prop_map(Operand2::Imm),
        arb_reg().prop_map(Operand2::Reg),
        arb_shift(),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let dp = (
        arb_cond(),
        (0u32..16).prop_map(|b| DpOp::from_bits(b).unwrap()),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        arb_operand2(),
    )
        .prop_map(|(cond, op, set_flags, rd, rn, op2)| Instruction::DataProc {
            cond,
            op,
            set_flags: set_flags || op.is_compare(),
            rd: if op.is_compare() { Reg::r(0) } else { rd },
            rn: if op.is_move() { Reg::r(0) } else { rn },
            op2,
        });
    let mem = (
        arb_cond(),
        any::<bool>(),
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        prop_oneof![
            (-4095i32..4096).prop_map(MemOffset::Imm),
            (arb_reg(), any::<bool>()).prop_map(|(r, s)| MemOffset::Reg(r, s)),
        ],
        prop_oneof![
            Just(AddressMode::Offset),
            Just(AddressMode::PreIndexed),
            Just(AddressMode::PostIndexed),
        ],
    )
        .prop_map(
            |(cond, load, byte, rd, rn, offset, mode)| Instruction::Mem {
                cond,
                op: if load { MemOp::Ldr } else { MemOp::Str },
                byte,
                rd,
                rn,
                offset,
                mode,
            },
        );
    let block = (
        arb_cond(),
        any::<bool>(),
        arb_reg(),
        any::<bool>(),
        prop_oneof![
            Just(BlockMode::Ia),
            Just(BlockMode::Ib),
            Just(BlockMode::Da),
            Just(BlockMode::Db),
        ],
        1u16..=u16::MAX,
    )
        .prop_map(
            |(cond, load, rn, writeback, mode, regs)| Instruction::Block {
                cond,
                op: if load { MemOp::Ldr } else { MemOp::Str },
                rn,
                writeback,
                mode,
                regs: RegSet(regs),
            },
        );
    let branch = (arb_cond(), any::<bool>(), -(1i32 << 23)..(1 << 23))
        .prop_map(|(cond, link, offset)| Instruction::Branch { cond, link, offset });
    let misc = prop_oneof![
        (arb_cond(), arb_reg()).prop_map(|(cond, rm)| Instruction::Bx { cond, rm }),
        (arb_cond(), 0u32..(1 << 24)).prop_map(|(cond, imm)| Instruction::Swi { cond, imm }),
        (arb_cond(), any::<bool>(), arb_reg(), arb_reg(), arb_reg()).prop_map(
            |(cond, s, rd, rm, rs)| Instruction::Mul {
                cond,
                set_flags: s,
                rd,
                rm,
                rs
            }
        ),
        (
            arb_cond(),
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(cond, s, rd, rm, rs, rn)| Instruction::Mla {
                cond,
                set_flags: s,
                rd,
                rm,
                rs,
                rn
            }),
    ];
    prop_oneof![dp, mem, block, branch, misc]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(insn in arb_instruction()) {
        let word = insn.encode().expect("generated instructions are encodable");
        let back = decode(word).expect("own encodings decode");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn display_parse_round_trip(insn in arb_instruction()) {
        // Branch display shows a byte displacement relative to pc; it
        // parses back to the same offset.
        let text = insn.to_string();
        let back: Instruction = text.parse().expect("own display parses");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn effects_are_self_consistent(a in arb_instruction(), b in arb_instruction()) {
        // depends_on is exactly the conflicts relation over effects.
        let expect = gpa_arm::defuse::conflicts(&a.effects(), &b.effects());
        prop_assert_eq!(b.depends_on(&a), expect);
        // Identical instructions always conflict or touch nothing at all.
        let fx = a.effects();
        let self_dep = a.depends_on(&a);
        let touches_state = !fx.defs.is_empty() || fx.writes_flags || fx.writes_mem;
        prop_assert!(!touches_state || self_dep || fx.defs.is_empty());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // must return Ok or Err, never panic
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            let re = insn.encode().expect("decoded instructions re-encode");
            // Round-trip must preserve the instruction, though not
            // necessarily the exact bit pattern (e.g. immediate rotations
            // have aliases); decoding again must agree.
            prop_assert_eq!(decode(re).unwrap(), insn);
        }
    }
}
