//! A worklist dataflow framework over lifted functions.
//!
//! Blocks are the maximal straight-line runs of a [`FunctionCode`]'s item
//! stream (split at labels and after control transfers); the transfer
//! functions are derived from [`gpa_arm::defuse`] effects, optionally
//! refined with interprocedural summaries from [`crate::callgraph`].
//!
//! Two classic analyses are provided: backward **liveness** (registers
//! and condition flags) and forward **reaching definitions**. Both are
//! *may* analyses computed to a least fixpoint, so liveness
//! over-approximates ("might still be read") — the safe direction for a
//! validator that asks whether clobbering a register can change
//! behaviour.

use std::collections::HashMap;

use gpa_arm::reg::RegSet;
use gpa_arm::Reg;
use gpa_cfg::{FunctionCode, Item, LabelId};

/// One basic block: a half-open item range plus its successors.
#[derive(Clone, Debug)]
pub struct Block {
    /// First item index (may be a label).
    pub start: usize,
    /// One past the last item index.
    pub end: usize,
    /// Successor block indices within the function.
    pub succs: Vec<usize>,
    /// Whether control can leave the function from this block (return,
    /// tail call, or falling off the end).
    pub exits: bool,
}

/// The intra-function control-flow graph.
#[derive(Clone, Debug)]
pub struct FnCfg {
    /// Blocks in item order; block 0 is the function entry.
    pub blocks: Vec<Block>,
    label_block: HashMap<LabelId, usize>,
}

impl FnCfg {
    /// Builds the block graph of a function. Branches to undefined labels
    /// simply get no edge — [`crate::lint`] reports them separately.
    pub fn build(f: &FunctionCode) -> FnCfg {
        // Block leaders: item 0, every label, every item after a
        // terminator.
        let n = f.items.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, item) in f.items.iter().enumerate() {
            if matches!(item, Item::Label(_)) {
                leader[i] = true;
            }
            if item.is_region_terminator() && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut label_block = HashMap::new();
        let mut start = 0;
        for (i, &lead) in leader.iter().enumerate() {
            if i > start && lead {
                blocks.push(Block {
                    start,
                    end: i,
                    succs: Vec::new(),
                    exits: false,
                });
                start = i;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
                exits: false,
            });
        }
        for (b, block) in blocks.iter().enumerate() {
            for i in block.start..block.end {
                if let Item::Label(id) = f.items[i] {
                    label_block.insert(id, b);
                }
            }
        }
        let mut cfg = FnCfg {
            blocks,
            label_block,
        };
        for b in 0..cfg.blocks.len() {
            let last = cfg.blocks[b].end - 1;
            let mut succs = Vec::new();
            let mut exits = false;
            let item = &f.items[last];
            match item {
                Item::Branch { cond, target } => {
                    if let Some(&t) = cfg.label_block.get(target) {
                        succs.push(t);
                    }
                    if !cond.is_always() && b + 1 < cfg.blocks.len() {
                        succs.push(b + 1);
                    }
                }
                Item::TailCall { cond, .. } => {
                    exits = true;
                    if !cond.is_always() && b + 1 < cfg.blocks.len() {
                        succs.push(b + 1);
                    }
                }
                Item::Insn(i) if i.effects().defs.contains(Reg::PC) => {
                    exits = true;
                    if !i.cond().is_always() && b + 1 < cfg.blocks.len() {
                        succs.push(b + 1);
                    }
                }
                _ => {
                    if b + 1 < cfg.blocks.len() {
                        succs.push(b + 1);
                    } else {
                        exits = true; // Falls off the end of the function.
                    }
                }
            }
            cfg.blocks[b].succs = succs;
            cfg.blocks[b].exits = exits;
        }
        cfg
    }

    /// The block containing a label definition, if any.
    pub fn block_of_label(&self, id: LabelId) -> Option<usize> {
        self.label_block.get(&id).copied()
    }

    /// Block indices reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = Vec::new();
        if !self.blocks.is_empty() {
            seen[0] = true;
            stack.push(0);
        }
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Predecessor lists, derived from the successor edges.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// A liveness fact: which registers and whether the flags may still be
/// read before being overwritten.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LiveState {
    /// Possibly-live registers.
    pub regs: RegSet,
    /// Whether the condition flags are possibly live.
    pub flags: bool,
}

impl LiveState {
    /// The empty fact.
    pub const EMPTY: LiveState = LiveState {
        regs: RegSet::EMPTY,
        flags: false,
    };

    /// Pointwise union of two facts.
    pub fn union(self, other: LiveState) -> LiveState {
        LiveState {
            regs: self.regs.union(other.regs),
            flags: self.flags || other.flags,
        }
    }
}

/// The gen/kill pair of one item for backward liveness.
///
/// `kill` must only contain state the item *always* overwrites
/// (conditional items kill nothing); `gen` may over-approximate.
#[derive(Clone, Copy, Debug, Default)]
pub struct GenKill {
    /// Read before any write by this item.
    pub gen: LiveState,
    /// Unconditionally overwritten by this item.
    pub kill: LiveState,
}

/// Supplies the gen/kill pair per item. The default
/// [`EffectsTransfer`] derives it from [`Item::effects`];
/// [`crate::callgraph::SummaryTransfer`] refines call items with
/// interprocedural summaries.
pub trait ItemTransfer {
    /// The liveness transfer of `item`.
    fn gen_kill(&self, item: &Item) -> GenKill;
}

/// The context-insensitive transfer: calls use the conservative barrier
/// effects baked into [`Item::effects`].
pub struct EffectsTransfer;

/// Whether the item's writes happen unconditionally.
fn writes_unconditionally(item: &Item) -> bool {
    match item {
        Item::Insn(i) => i.cond().is_always(),
        Item::Call { cond, .. } | Item::Branch { cond, .. } | Item::TailCall { cond, .. } => {
            cond.is_always()
        }
        Item::Label(_) | Item::IndirectCall { .. } | Item::LitLoad { .. } => true,
    }
}

impl ItemTransfer for EffectsTransfer {
    fn gen_kill(&self, item: &Item) -> GenKill {
        let fx = item.effects();
        let gen = LiveState {
            regs: fx.uses,
            flags: fx.reads_flags,
        };
        let kill = if writes_unconditionally(item) {
            LiveState {
                regs: fx.defs,
                flags: fx.writes_flags,
            }
        } else {
            LiveState::EMPTY
        };
        GenKill { gen, kill }
    }
}

/// Backward liveness over one function.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Fact at each block entry.
    pub live_in: Vec<LiveState>,
    /// Fact at each block exit.
    pub live_out: Vec<LiveState>,
}

/// Applies one item backwards to a fact.
fn apply_backward(fact: LiveState, gk: &GenKill) -> LiveState {
    LiveState {
        regs: fact.regs.difference(gk.kill.regs).union(gk.gen.regs),
        flags: (fact.flags && !gk.kill.flags) || gk.gen.flags,
    }
}

impl Liveness {
    /// Runs the worklist to a fixpoint. `exit_live` is the fact assumed
    /// where control leaves the function (returns, tail calls, the end) —
    /// [`LiveState::EMPTY`] asks "read again *by this function*", which is
    /// what return instructions' own uses (`bx lr` reads `lr`) make
    /// precise enough for validation.
    pub fn analyze(
        f: &FunctionCode,
        cfg: &FnCfg,
        transfer: &dyn ItemTransfer,
        exit_live: LiveState,
    ) -> Liveness {
        let n = cfg.blocks.len();
        let mut live_in = vec![LiveState::EMPTY; n];
        let mut live_out = vec![LiveState::EMPTY; n];
        let preds = cfg.preds();
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(b) = work.pop() {
            let block = &cfg.blocks[b];
            let mut out = if block.exits {
                exit_live
            } else {
                LiveState::EMPTY
            };
            for &s in &block.succs {
                out = out.union(live_in[s]);
            }
            live_out[b] = out;
            let mut fact = out;
            for i in (block.start..block.end).rev() {
                fact = apply_backward(fact, &transfer.gen_kill(&f.items[i]));
            }
            if fact != live_in[b] {
                live_in[b] = fact;
                for &p in &preds[b] {
                    if !work.contains(&p) {
                        work.push(p);
                    }
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// The fact immediately *after* item `index` executes — i.e. what a
    /// clobber inserted at that point could destroy.
    pub fn live_after(
        &self,
        f: &FunctionCode,
        cfg: &FnCfg,
        transfer: &dyn ItemTransfer,
        index: usize,
    ) -> LiveState {
        let b = cfg
            .blocks
            .iter()
            .position(|blk| blk.start <= index && index < blk.end)
            .expect("item index within the function");
        let block = &cfg.blocks[b];
        let mut fact = self.live_out[b];
        for i in ((index + 1)..block.end).rev() {
            fact = apply_backward(fact, &transfer.gen_kill(&f.items[i]));
        }
        fact
    }
}

/// Forward reaching definitions: which item indices may have produced the
/// current value of each register.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// Per block, per register (0..16), the set of reaching def sites at
    /// block entry. [`ReachingDefs::ENTRY`] denotes the function-entry
    /// value.
    pub reach_in: Vec<[Vec<usize>; 16]>,
}

impl ReachingDefs {
    /// Pseudo-site for "the value the register had at function entry".
    pub const ENTRY: usize = usize::MAX;

    /// Runs the forward worklist to a fixpoint.
    pub fn analyze(f: &FunctionCode, cfg: &FnCfg) -> ReachingDefs {
        let n = cfg.blocks.len();
        let entry_fact: [Vec<usize>; 16] = std::array::from_fn(|_| vec![ReachingDefs::ENTRY]);
        let empty: [Vec<usize>; 16] = std::array::from_fn(|_| Vec::new());
        let mut reach_in: Vec<[Vec<usize>; 16]> = vec![empty; n];
        if n > 0 {
            reach_in[0] = entry_fact;
        }
        let flow = |fact: &[Vec<usize>; 16], block: &Block| -> [Vec<usize>; 16] {
            let mut out = fact.clone();
            for i in block.start..block.end {
                let item = &f.items[i];
                let defs = item.effects().defs;
                for r in defs.iter() {
                    let slot = &mut out[r.number() as usize];
                    if writes_unconditionally(item) {
                        slot.clear();
                    }
                    if !slot.contains(&i) {
                        slot.push(i);
                        slot.sort_unstable();
                    }
                }
            }
            out
        };
        let mut work: Vec<usize> = (0..n).collect();
        work.reverse();
        let mut out_facts: Vec<Option<[Vec<usize>; 16]>> = vec![None; n];
        while let Some(b) = work.pop() {
            let out = flow(&reach_in[b], &cfg.blocks[b]);
            if out_facts[b].as_ref() == Some(&out) {
                continue;
            }
            for &s in &cfg.blocks[b].succs {
                let mut merged = reach_in[s].clone();
                let mut changed = false;
                for (r, sites) in out.iter().enumerate() {
                    for &site in sites {
                        if !merged[r].contains(&site) {
                            merged[r].push(site);
                            merged[r].sort_unstable();
                            changed = true;
                        }
                    }
                }
                if changed {
                    reach_in[s] = merged;
                    if !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
            out_facts[b] = Some(out);
        }
        ReachingDefs { reach_in }
    }

    /// The def sites of `reg` reaching the entry of `block`.
    pub fn defs_reaching(&self, block: usize, reg: Reg) -> &[usize] {
        &self.reach_in[block][reg.number() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::Cond;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn func(items: Vec<Item>, label_count: u32) -> FunctionCode {
        FunctionCode {
            name: "f".into(),
            address_taken: false,
            items,
            label_count,
        }
    }

    #[test]
    fn cfg_blocks_and_edges() {
        // entry -> (branch eq L0) -> fallthrough -> L0 -> ret
        let f = func(
            vec![
                insn("cmp r0, #0"),
                Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(0),
                },
                insn("mov r0, #1"),
                Item::Label(LabelId(0)),
                insn("bx lr"),
            ],
            1,
        );
        let cfg = FnCfg::build(&f);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].succs, vec![2, 1]);
        assert_eq!(cfg.blocks[1].succs, vec![2]);
        assert!(cfg.blocks[2].succs.is_empty());
        assert!(cfg.blocks[2].exits);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn unreachable_block_detected() {
        let f = func(
            vec![
                Item::Branch {
                    cond: Cond::Al,
                    target: LabelId(0),
                },
                insn("mov r0, #9"), // dead
                Item::Label(LabelId(0)),
                insn("bx lr"),
            ],
            1,
        );
        let cfg = FnCfg::build(&f);
        let reach = cfg.reachable();
        assert_eq!(reach, vec![true, false, true]);
    }

    #[test]
    fn liveness_through_a_diamond() {
        // r4 is read on one arm only; it must be live at the branch.
        let f = func(
            vec![
                insn("cmp r0, #0"),
                Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(0),
                },
                insn("mov r0, r4"),
                Item::Label(LabelId(0)),
                insn("bx lr"),
            ],
            1,
        );
        let cfg = FnCfg::build(&f);
        let live = Liveness::analyze(&f, &cfg, &EffectsTransfer, LiveState::EMPTY);
        assert!(live.live_in[0].regs.contains(Reg::r(4)));
        assert!(live.live_in[0].regs.contains(Reg::r(0)));
        assert!(live.live_in[0].regs.contains(Reg::LR));
        // After the cmp the flags are live (the beq reads them).
        let after_cmp = live.live_after(&f, &cfg, &EffectsTransfer, 0);
        assert!(after_cmp.flags);
        // After the branch resolves flags are dead again.
        assert!(!live.live_out[1].flags);
    }

    #[test]
    fn conditional_writes_do_not_kill() {
        let f = func(
            vec![insn("cmp r0, #0"), insn("moveq r1, #1"), insn("bx lr")],
            0,
        );
        let cfg = FnCfg::build(&f);
        let live = Liveness::analyze(
            &f,
            &cfg,
            &EffectsTransfer,
            LiveState {
                regs: RegSet::of(&[Reg::r(1)]),
                flags: false,
            },
        );
        // r1 may flow through the untaken moveq, so it is live at entry.
        assert!(live.live_in[0].regs.contains(Reg::r(1)));
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let f = func(
            vec![
                insn("cmp r0, #0"),
                Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(0),
                },
                insn("mov r1, #1"),
                Item::Label(LabelId(0)),
                insn("mov r2, r1"),
                insn("bx lr"),
            ],
            1,
        );
        let cfg = FnCfg::build(&f);
        let reach = ReachingDefs::analyze(&f, &cfg);
        // At the join block, r1 is either the entry value or the mov at 2.
        let sites = reach.defs_reaching(2, Reg::r(1));
        assert!(sites.contains(&2));
        assert!(sites.contains(&ReachingDefs::ENTRY));
        // r0 is only ever the entry value.
        assert_eq!(reach.defs_reaching(2, Reg::r(0)), &[ReachingDefs::ENTRY]);
    }
}
