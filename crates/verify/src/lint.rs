//! The binary linter: pass-per-check diagnostics over lifted programs
//! and raw images.
//!
//! Every check re-derives its facts from scratch (layout, reachability,
//! label tables) rather than trusting the rewriting passes — the linter
//! is the adversary of the optimizer, not its client.

use std::collections::{BTreeSet, HashMap, HashSet};

use gpa_arm::{decode as decode_word, Instruction, Reg};
use gpa_cfg::{decode_image, FunctionCode, Item, LabelId, Literal, Program, FRAGMENT_PREFIX};
use gpa_image::{Image, SymbolKind};

use crate::absint::{self, AbsAccess, AbsEnv, AbsInt, AbsValue, AccessBase};
use crate::callgraph::CallGraph;
use crate::dataflow::FnCfg;
use crate::diag::{Code, Diagnostic, Location};

/// Maximum byte displacement (exclusive) a pc-relative `ldr` can encode.
const LDR_RANGE: i64 = 4096;

/// Runs every program-level lint. An empty result means the program is
/// structurally sound: every reference resolves, control never falls into
/// data, literals stay addressable, and extracted fragments honour the
/// `lr` discipline.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_duplicate_functions(program, &mut diags);
    let names: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
    let graph = CallGraph::build(program);
    let env = AbsEnv::build(program, &graph);
    for f in &program.functions {
        lint_labels(f, &mut diags);
        lint_reachability(f, &mut diags);
        lint_fall_through(f, &mut diags);
        lint_literal_range(f, &mut diags);
        lint_call_targets(f, &names, &mut diags);
        lint_stack_discipline(f, &env, &mut diags);
        if f.name.starts_with(FRAGMENT_PREFIX) {
            lint_lr_discipline(f, &mut diags);
        }
    }
    diags
}

/// Runs every image-level lint: structural symbol/branch checks on the
/// raw words, then — when the image lifts at all — the program lints on
/// the lifted form.
pub fn lint_image(image: &Image) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_symbols(image, &mut diags);
    lint_raw_branches(image, &mut diags);
    match decode_image(image) {
        Ok(program) => diags.extend(lint_program(&program)),
        Err(e) => diags.push(Diagnostic::error(
            Code::Undecodable,
            Location::program(),
            e.to_string(),
        )),
    }
    diags
}

/// V009: duplicate function names.
fn lint_duplicate_functions(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut seen = HashSet::new();
    for f in &program.functions {
        if !seen.insert(f.name.as_str()) {
            diags.push(Diagnostic::error(
                Code::DuplicateFunction,
                Location::function(&f.name),
                format!("function `{}` is defined more than once", f.name),
            ));
        }
    }
}

/// V001/V002: every branch target defined exactly once.
fn lint_labels(f: &FunctionCode, diags: &mut Vec<Diagnostic>) {
    let mut defined: HashMap<LabelId, usize> = HashMap::new();
    for (i, item) in f.items.iter().enumerate() {
        if let Item::Label(id) = item {
            if defined.insert(*id, i).is_some() {
                diags.push(Diagnostic::error(
                    Code::DuplicateLabel,
                    Location::item(&f.name, i),
                    format!("label {id} is defined more than once"),
                ));
            }
        }
    }
    for (i, item) in f.items.iter().enumerate() {
        if let Item::Branch { target, .. } = item {
            if !defined.contains_key(target) {
                diags.push(Diagnostic::error(
                    Code::DanglingLabel,
                    Location::item(&f.name, i),
                    format!("branch references undefined label {target}"),
                ));
            }
        }
    }
}

/// V003: blocks that no path from the entry reaches.
fn lint_reachability(f: &FunctionCode, diags: &mut Vec<Diagnostic>) {
    let cfg = FnCfg::build(f);
    let reachable = cfg.reachable();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if reachable[b] {
            continue;
        }
        // A block holding only labels carries no code; skip it.
        let has_code = f.items[block.start..block.end]
            .iter()
            .any(|i| !matches!(i, Item::Label(_)));
        if has_code {
            diags.push(Diagnostic::error(
                Code::UnreachableBlock,
                Location::item(&f.name, block.start),
                format!(
                    "block at items {}..{} is unreachable from the function entry",
                    block.start, block.end
                ),
            ));
        }
    }
}

/// V004: the last executed item must leave the function (or stop the
/// machine) — otherwise control falls into the literal pool or the next
/// function. A trailing `swi` is accepted: the exit convention never
/// returns.
fn lint_fall_through(f: &FunctionCode, diags: &mut Vec<Diagnostic>) {
    let last = f.items.iter().rposition(|i| !matches!(i, Item::Label(_)));
    let Some(last) = last else {
        diags.push(Diagnostic::error(
            Code::FallThrough,
            Location::function(&f.name),
            "function has no instructions".to_string(),
        ));
        return;
    };
    let ok = match &f.items[last] {
        Item::Branch { cond, .. } | Item::TailCall { cond, .. } => cond.is_always(),
        Item::Insn(i) => {
            (i.effects().defs.contains(Reg::PC) || matches!(i, Instruction::Swi { .. }))
                && i.cond().is_always()
        }
        _ => false,
    };
    if !ok {
        diags.push(Diagnostic::error(
            Code::FallThrough,
            Location::item(&f.name, last),
            format!(
                "control falls off the end of `{}` ({})",
                f.name,
                f.items[last].mining_label()
            ),
        ));
    }
}

/// V005: re-derive the function layout and check that every literal load
/// can still reach its pool slot after re-encoding.
fn lint_literal_range(f: &FunctionCode, diags: &mut Vec<Diagnostic>) {
    // Mirrors the encoder's layout: items in order, pool appended after
    // the body, one slot per distinct literal in first-use order.
    let mut pool_keys: Vec<&Literal> = Vec::new();
    let mut offset = 0i64;
    let mut loads: Vec<(usize, i64, &Literal)> = Vec::new();
    for (i, item) in f.items.iter().enumerate() {
        match item {
            Item::Label(_) => {}
            Item::LitLoad { lit, .. } => {
                if !pool_keys.contains(&lit) {
                    pool_keys.push(lit);
                }
                loads.push((i, offset, lit));
                offset += 4;
            }
            other => offset += 4 * other.encoded_words() as i64,
        }
    }
    let pool_base = offset;
    for (i, load_off, lit) in loads {
        let slot = pool_keys
            .iter()
            .position(|k| *k == lit)
            .expect("literal recorded above");
        let disp = (pool_base + 4 * slot as i64) - (load_off + 8);
        if disp.abs() >= LDR_RANGE {
            diags.push(Diagnostic::error(
                Code::LiteralOutOfRange,
                Location::item(&f.name, i),
                format!("literal load is {disp} bytes from its pool slot (|range| < {LDR_RANGE})"),
            ));
        }
    }
}

/// V008: calls, tail calls and code literals must reference existing
/// functions.
fn lint_call_targets(f: &FunctionCode, names: &HashSet<&str>, diags: &mut Vec<Diagnostic>) {
    for (i, item) in f.items.iter().enumerate() {
        let target = match item {
            Item::Call { target, .. } | Item::TailCall { target, .. } => target,
            Item::LitLoad {
                lit: Literal::Code(name),
                ..
            } => name,
            _ => continue,
        };
        if !names.contains(target.as_str()) {
            diags.push(Diagnostic::error(
                Code::UndefinedCallTarget,
                Location::item(&f.name, i),
                format!("reference to undefined function `{target}`"),
            ));
        }
    }
}

/// V007: inside an extracted fragment, nothing may read `lr` after it has
/// been clobbered — the `push {lr}` prologue reads it *before* the first
/// clobber and the `pop {pc}` epilogue returns through the stack, so the
/// legal shapes never trip this.
fn lint_lr_discipline(f: &FunctionCode, diags: &mut Vec<Diagnostic>) {
    let mut clobbered_at: Option<usize> = None;
    for (i, item) in f.items.iter().enumerate() {
        let fx = item.effects();
        // A call's conservative barrier effects claim it reads lr; a
        // real `bl` only ever *writes* it.
        let reads_lr = fx.uses.contains(Reg::LR)
            && !matches!(item, Item::Call { .. } | Item::IndirectCall { .. });
        if reads_lr {
            if let Some(c) = clobbered_at {
                diags.push(Diagnostic::error(
                    Code::LrDiscipline,
                    Location::item(&f.name, i),
                    format!(
                        "`{}` reads lr, which item {c} clobbered — fragment lacks the \
                         push {{lr}}/pop {{pc}} wrap",
                        item.mining_label()
                    ),
                ));
                return;
            }
        }
        if fx.defs.contains(Reg::LR) {
            clobbered_at = Some(i);
        }
    }
}

/// V010–V014: the stack-discipline lints, driven by the value-set
/// abstract interpreter ([`crate::absint`]).
///
/// All five are warnings — they flag suspicious but not provably wrong
/// code, and the whole-frame claims (V011/V013) are only made when every
/// reachable memory access of the function resolves to a known stack
/// slot. Extracted fragments are exempt from the frame-shaped checks
/// (V010/V011/V013): they operate inside their caller's frame, and
/// merged epilogues legitimately return with `sp` displaced.
fn lint_stack_discipline(f: &FunctionCode, env: &AbsEnv, diags: &mut Vec<Diagnostic>) {
    let a = AbsInt::analyze(f, Some(env));
    let is_fragment = f.name.starts_with(FRAGMENT_PREFIX);

    // Per item, the resolved memory accesses (None = unresolvable).
    let resolved: Vec<Option<Vec<AbsAccess>>> = f
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            a.before[i]
                .as_ref()
                .and_then(|state| absint::resolved_accesses(state, item, Some(env)))
        })
        .collect();

    // V010 — every (unconditional) return must restore sp to its entry
    // value. Tail calls are not checked: a cross-jumped epilogue
    // finishes the unwind in the shared fragment.
    if !is_fragment {
        for (i, item) in f.items.iter().enumerate() {
            let Item::Insn(insn) = item else { continue };
            if !item.is_return() || !insn.cond().is_always() {
                continue;
            }
            let Some(before) = a.before[i] else { continue };
            let mut after = before;
            absint::transfer(&mut after, item, i, Some(env));
            if let AbsValue::SpRel(d) = after.get(Reg::SP) {
                if d != 0 {
                    diags.push(Diagnostic::warning(
                        Code::StackImbalance,
                        Location::item(&f.name, i),
                        format!("returns with sp displaced {d:+} bytes from its entry value"),
                    ));
                }
            }
        }
    }

    // V012 — word-sized accesses must land 4-byte aligned relative to
    // the (8-byte-aligned) entry sp.
    for (i, accesses) in resolved.iter().enumerate() {
        let Some(accesses) = accesses else { continue };
        for acc in accesses {
            if acc.base == AccessBase::Sp && acc.hi - acc.lo >= 4 && acc.lo.rem_euclid(4) != 0 {
                diags.push(Diagnostic::warning(
                    Code::MisalignedSlot,
                    Location::item(&f.name, i),
                    format!("word access at sp{:+} is not 4-byte aligned", acc.lo),
                ));
            }
        }
    }

    // V014 — a stored value that is itself a stack address: the frame
    // escapes into memory.
    for (i, item) in f.items.iter().enumerate() {
        let Some(state) = a.before[i] else { continue };
        let Item::Insn(insn) = item else { continue };
        let stored: Vec<Reg> = match *insn {
            Instruction::Mem {
                op: gpa_arm::MemOp::Str,
                rd,
                ..
            } => vec![rd],
            Instruction::Block {
                op: gpa_arm::MemOp::Str,
                regs,
                ..
            } => regs.iter().collect(),
            _ => continue,
        };
        for r in stored {
            if let AbsValue::SpRel(d) = state.get(r) {
                diags.push(Diagnostic::warning(
                    Code::SpEscape,
                    Location::item(&f.name, i),
                    format!("stores {r}, which holds the stack address sp{d:+}"),
                ));
            }
        }
    }

    // V011/V013 — whole-frame claims, made only when every reachable
    // memory access resolves to a *stack* slot (a single unknown,
    // symbolic, or absolute pointer could alias any slot) and the
    // function never tail-calls away: a tail call — e.g. into a merged
    // epilogue fragment — continues executing in this frame, so its
    // reads and writes are invisible here.
    let tail_calls = f
        .items
        .iter()
        .enumerate()
        .any(|(i, item)| a.before[i].is_some() && matches!(item, Item::TailCall { .. }));
    let all_resolved = (0..f.items.len()).all(|i| {
        a.before[i].is_none()
            || resolved[i]
                .as_ref()
                .is_some_and(|accs| accs.iter().all(|acc| acc.base == AccessBase::Sp))
    });
    if is_fragment || tail_calls || !all_resolved {
        return;
    }
    let flat = |store: bool| -> Vec<AbsAccess> {
        resolved
            .iter()
            .flatten()
            .flatten()
            .filter(|acc| acc.store == store)
            .copied()
            .collect()
    };
    let stores = flat(true);
    let loads = flat(false);
    for (i, accesses) in resolved.iter().enumerate() {
        let Some(accesses) = accesses else { continue };
        for acc in accesses {
            // Only slots strictly below the entry sp belong to this
            // function's own frame; higher offsets are the caller's.
            if acc.hi > 0 {
                continue;
            }
            if !acc.store && stores.iter().all(|s| s.disjoint(acc)) {
                diags.push(Diagnostic::warning(
                    Code::ReadUnwrittenSlot,
                    Location::item(&f.name, i),
                    format!(
                        "reads stack bytes sp{:+}..sp{:+}, which no store in the function writes",
                        acc.lo, acc.hi
                    ),
                ));
            }
            if acc.store && loads.iter().all(|l| l.disjoint(acc)) {
                diags.push(Diagnostic::warning(
                    Code::DeadStackStore,
                    Location::item(&f.name, i),
                    format!(
                        "stores stack bytes sp{:+}..sp{:+}, which are never read before the \
                         frame is deallocated",
                        acc.lo, acc.hi
                    ),
                ));
            }
        }
    }
}

/// Image-level symbol sanity: function extents must be aligned, inside
/// the code section, and non-overlapping; the entry point must be a
/// function.
fn lint_symbols(image: &Image, diags: &mut Vec<Diagnostic>) {
    let mut fns: Vec<_> = image
        .symbols()
        .iter()
        .filter(|s| s.kind == SymbolKind::Function)
        .collect();
    fns.sort_by_key(|s| s.addr);
    for s in &fns {
        if s.addr % 4 != 0 || s.size % 4 != 0 {
            diags.push(Diagnostic::error(
                Code::BadBranchTarget,
                Location::function(&s.name),
                format!("function extent {:#x}+{:#x} is misaligned", s.addr, s.size),
            ));
        }
        if s.addr < image.code_base() || s.addr + s.size > image.code_end() {
            diags.push(Diagnostic::error(
                Code::BadBranchTarget,
                Location::function(&s.name),
                format!(
                    "function extent {:#x}+{:#x} leaves the code section",
                    s.addr, s.size
                ),
            ));
        }
    }
    for pair in fns.windows(2) {
        if pair[0].addr + pair[0].size > pair[1].addr {
            diags.push(Diagnostic::error(
                Code::BadBranchTarget,
                Location::function(&pair[1].name),
                format!(
                    "functions `{}` and `{}` overlap",
                    pair[0].name, pair[1].name
                ),
            ));
        }
    }
    if !fns.iter().any(|s| s.addr == image.entry()) {
        diags.push(Diagnostic::error(
            Code::BadBranchTarget,
            Location::program(),
            format!("entry point {:#x} is not a function symbol", image.entry()),
        ));
    }
}

/// V006 on the raw words: every branch instruction inside a function
/// extent must target an address inside the code section and outside the
/// interwoven literal-pool data of its own function.
fn lint_raw_branches(image: &Image, diags: &mut Vec<Diagnostic>) {
    let fns: Vec<_> = image
        .symbols()
        .iter()
        .filter(|s| s.kind == SymbolKind::Function)
        .collect();
    for sym in fns {
        let start = sym.addr;
        let end = sym.addr + sym.size;
        if start % 4 != 0 || start < image.code_base() || end > image.code_end() {
            continue; // lint_symbols already reported the extent.
        }
        // Re-derive the pool words exactly as the lifter does: a forward
        // sweep collecting pc-relative load targets.
        let mut data_words: BTreeSet<u32> = BTreeSet::new();
        let mut branches: Vec<(u32, u32)> = Vec::new();
        let mut addr = start;
        while addr < end {
            if data_words.contains(&addr) {
                addr += 4;
                continue;
            }
            let Some(word) = image.code_word_at(addr) else {
                break;
            };
            if let Ok(insn) = decode_word(word) {
                if let Instruction::Mem {
                    op: gpa_arm::insn::MemOp::Ldr,
                    byte: false,
                    rn,
                    offset: gpa_arm::insn::MemOffset::Imm(disp),
                    mode: gpa_arm::insn::AddressMode::Offset,
                    ..
                } = insn
                {
                    if rn.is_pc() {
                        data_words.insert((addr as i64 + 8 + disp as i64) as u32);
                    }
                }
                if let Instruction::Branch { offset, .. } = insn {
                    branches.push((addr, (addr as i64 + 8 + offset as i64 * 4) as u32));
                }
            }
            addr += 4;
        }
        for (addr, target) in branches {
            if data_words.contains(&addr) {
                continue; // A pool word that happens to decode as a branch.
            }
            if !image.contains_code(target) {
                diags.push(Diagnostic::error(
                    Code::BadBranchTarget,
                    Location::function(&sym.name),
                    format!("branch at {addr:#x} targets {target:#x}, outside the code section"),
                ));
            } else if data_words.contains(&target) {
                diags.push(Diagnostic::error(
                    Code::BadBranchTarget,
                    Location::function(&sym.name),
                    format!("branch at {addr:#x} targets literal-pool data at {target:#x}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use gpa_arm::Cond;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn func(name: &str, items: Vec<Item>, label_count: u32) -> FunctionCode {
        FunctionCode {
            name: name.into(),
            address_taken: false,
            items,
            label_count,
        }
    }

    fn program(functions: Vec<FunctionCode>) -> Program {
        let entry = functions[0].name.clone();
        Program {
            functions,
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_function_lints_clean() {
        let p = program(vec![func("f", vec![insn("mov r0, #1"), insn("bx lr")], 0)]);
        assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));
    }

    #[test]
    fn dangling_label_fires() {
        let p = program(vec![func(
            "f",
            vec![
                Item::Branch {
                    cond: Cond::Al,
                    target: LabelId(7),
                },
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::DanglingLabel));
    }

    #[test]
    fn duplicate_label_fires() {
        let p = program(vec![func(
            "f",
            vec![
                Item::Label(LabelId(0)),
                insn("mov r0, #1"),
                Item::Label(LabelId(0)),
                insn("bx lr"),
            ],
            1,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::DuplicateLabel));
    }

    #[test]
    fn unreachable_block_fires() {
        let p = program(vec![func(
            "f",
            vec![
                Item::Branch {
                    cond: Cond::Al,
                    target: LabelId(0),
                },
                insn("mov r0, #9"),
                Item::Label(LabelId(0)),
                insn("bx lr"),
            ],
            1,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::UnreachableBlock));
    }

    #[test]
    fn fall_through_fires() {
        let p = program(vec![func("f", vec![insn("mov r0, #1")], 0)]);
        assert!(codes(&lint_program(&p)).contains(&Code::FallThrough));
        // Conditional return still falls through.
        let p = program(vec![func("g", vec![insn("moveq pc, lr")], 0)]);
        assert!(codes(&lint_program(&p)).contains(&Code::FallThrough));
    }

    #[test]
    fn swi_terminates_start() {
        let p = program(vec![func(
            "_start",
            vec![insn("mov r0, #0"), insn("swi #0")],
            0,
        )]);
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn literal_out_of_range_fires() {
        // > 1024 distinct literals put the first load > 4 KiB from its slot.
        let mut items: Vec<Item> = (0..1100u32)
            .map(|w| Item::LitLoad {
                rd: Reg::r(0),
                lit: Literal::Word(w),
            })
            .collect();
        items.push(insn("bx lr"));
        let p = program(vec![func("f", items, 0)]);
        assert!(codes(&lint_program(&p)).contains(&Code::LiteralOutOfRange));
    }

    #[test]
    fn undefined_call_target_fires() {
        let p = program(vec![func(
            "f",
            vec![
                Item::Call {
                    cond: Cond::Al,
                    target: "ghost".into(),
                },
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::UndefinedCallTarget));
    }

    #[test]
    fn duplicate_function_fires() {
        let p = program(vec![
            func("f", vec![insn("bx lr")], 0),
            func("f", vec![insn("bx lr")], 0),
        ]);
        assert!(codes(&lint_program(&p)).contains(&Code::DuplicateFunction));
    }

    #[test]
    fn lr_discipline_fires_on_unwrapped_call() {
        // A fragment whose body calls out but returns via bx lr: the bl
        // destroyed the return address.
        let p = program(vec![
            func(
                "__gpa_frag0",
                vec![
                    insn("mov r0, r4"),
                    Item::Call {
                        cond: Cond::Al,
                        target: "helper".into(),
                    },
                    insn("bx lr"),
                ],
                0,
            ),
            func("helper", vec![insn("bx lr")], 0),
        ]);
        assert!(codes(&lint_program(&p)).contains(&Code::LrDiscipline));
    }

    #[test]
    fn lr_discipline_accepts_wrapped_fragment() {
        let p = program(vec![
            func(
                "__gpa_frag0",
                vec![
                    insn("push {lr}"),
                    Item::Call {
                        cond: Cond::Al,
                        target: "helper".into(),
                    },
                    insn("pop {pc}"),
                ],
                0,
            ),
            func("helper", vec![insn("bx lr")], 0),
        ]);
        assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));
    }

    #[test]
    fn stack_imbalance_fires_and_balanced_frames_are_clean() {
        let p = program(vec![func(
            "f",
            vec![insn("sub sp, sp, #8"), insn("bx lr")],
            0,
        )]);
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&Code::StackImbalance));
        assert!(!has_errors(&diags), "V010 must be a warning: {diags:?}");

        let p = program(vec![func(
            "g",
            vec![
                insn("push {r4, lr}"),
                insn("sub sp, sp, #16"),
                insn("str r0, [sp]"),
                insn("ldr r4, [sp]"),
                insn("add sp, sp, #16"),
                insn("pop {r4, pc}"),
            ],
            0,
        )]);
        assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));
    }

    #[test]
    fn read_of_unwritten_slot_fires() {
        let p = program(vec![func(
            "f",
            vec![
                insn("sub sp, sp, #8"),
                insn("ldr r0, [sp]"),
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::ReadUnwrittenSlot));
    }

    #[test]
    fn dead_store_before_return_fires() {
        let p = program(vec![func(
            "f",
            vec![
                insn("sub sp, sp, #8"),
                insn("str r0, [sp, #4]"),
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::DeadStackStore));
    }

    #[test]
    fn misaligned_word_access_fires() {
        let p = program(vec![func(
            "f",
            vec![
                insn("sub sp, sp, #8"),
                insn("str r0, [sp, #2]"),
                insn("ldr r1, [sp, #2]"),
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::MisalignedSlot));
        // Byte accesses have no alignment requirement.
        let p = program(vec![func(
            "g",
            vec![
                insn("sub sp, sp, #8"),
                insn("strb r0, [sp, #2]"),
                insn("ldrb r1, [sp, #2]"),
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        )]);
        assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));
    }

    #[test]
    fn sp_escape_fires() {
        let p = program(vec![func(
            "f",
            vec![insn("mov r4, sp"), insn("str r4, [r5]"), insn("bx lr")],
            0,
        )]);
        assert!(codes(&lint_program(&p)).contains(&Code::SpEscape));
    }

    #[test]
    fn unknown_pointer_suppresses_frame_claims() {
        // The store through r5 could write any slot, so the later read
        // of an apparently-unwritten slot must not be reported.
        let p = program(vec![func(
            "f",
            vec![
                insn("sub sp, sp, #8"),
                insn("str r0, [r5]"),
                insn("ldr r0, [sp]"),
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        )]);
        let diags = lint_program(&p);
        assert!(
            !codes(&diags).contains(&Code::ReadUnwrittenSlot),
            "{diags:?}"
        );
    }

    #[test]
    fn compiled_program_is_clean() {
        let image = gpa_minicc::compile(
            "int f(int x) { return x * 3 + 1; }\n\
             int main() { putint(f(4) + f(7)); return 0; }",
            &gpa_minicc::Options::default(),
        )
        .unwrap();
        let diags = lint_image(&image);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupted_image_reports() {
        let mut image = Image::new(0x8000, 0x2_0000);
        image.push_code_word(0xffff_ffff);
        image.add_symbol(gpa_image::Symbol::function("f", 0x8000, 4));
        image.set_entry(0x8000);
        let diags = lint_image(&image);
        assert!(codes(&diags).contains(&Code::Undecodable));
    }
}
