//! `gpa-verify`: static verification for the procedural-abstraction
//! pipeline.
//!
//! Three layers, each usable on its own:
//!
//! 1. **Dataflow** ([`dataflow`]) — worklist liveness (registers + flags)
//!    and reaching definitions over lifted [`gpa_cfg::Program`] functions,
//!    plus a call graph with per-function clobber/use summaries
//!    ([`callgraph`]) so `bl __gpa_frag…` calls can be modelled precisely
//!    instead of as the conservative barrier in [`gpa_cfg::Item::effects`].
//! 2. **Lints** ([`lint`]) — structural checks over programs and raw
//!    images, reported as [`Diagnostic`]s with stable `Vnnn` codes.
//! 3. **Validation support** — the per-round translation validator lives
//!    in `gpa::validate` (it needs the optimizer's candidate types); it
//!    builds on the analyses and diagnostics defined here.
//!
//! # Examples
//!
//! ```
//! use gpa_verify::{lint_image, has_errors};
//!
//! let image = gpa_minicc::compile("int main() { return 0; }",
//!                                 &gpa_minicc::Options::default())?;
//! let diags = lint_image(&image);
//! assert!(!has_errors(&diags));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod lint;

pub use absint::{AbsAccess, AbsEnv, AbsInt, AbsValue, AccessBase, RegState};
pub use callgraph::{CallGraph, FnSummary, SummaryTransfer};
pub use dataflow::{
    EffectsTransfer, FnCfg, GenKill, ItemTransfer, LiveState, Liveness, ReachingDefs,
};
pub use diag::{has_errors, Code, Diagnostic, Location, Severity};
pub use lint::{lint_image, lint_program};
