//! Diagnostics: the currency of the lint and validation passes.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not provably wrong; does not fail a lint run.
    Warning,
    /// The program or rewrite is provably broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable codes for every check, usable in tests and suppressions.
///
/// `V0xx` codes are structural binary lints; `V1xx` codes are emitted by
/// the per-round translation validator in `gpa::validate`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    /// V001: a branch references a label that is never defined.
    DanglingLabel,
    /// V002: a label id is defined more than once in one function.
    DuplicateLabel,
    /// V003: a block is unreachable from the function entry.
    UnreachableBlock,
    /// V004: control can fall off the end of a function, into the literal
    /// pool or the next function.
    FallThrough,
    /// V005: a pc-relative literal load lands outside the ±4 KiB `ldr`
    /// offset range after layout.
    LiteralOutOfRange,
    /// V006: a branch targets an address outside the code section, a
    /// misaligned address, or interwoven literal-pool data.
    BadBranchTarget,
    /// V007: an extracted fragment clobbers `lr` and then reads it — the
    /// `push {lr}` / `pop {pc}` discipline is violated.
    LrDiscipline,
    /// V008: a call, tail call or code literal references a function that
    /// does not exist.
    UndefinedCallTarget,
    /// V009: two functions share one name.
    DuplicateFunction,
    /// V010: a return is reached with the stack pointer displaced from
    /// its function-entry value (the frame is not fully deallocated, or
    /// is over-popped).
    StackImbalance,
    /// V011: a load reads a stack slot of the function's own frame that
    /// no store in the function ever writes.
    ReadUnwrittenSlot,
    /// V012: a word-sized access lands at a stack offset that is not
    /// 4-byte aligned relative to the function-entry `sp`.
    MisalignedSlot,
    /// V013: a store writes a stack slot of the function's own frame
    /// that no load ever reads — dead once the frame is deallocated at
    /// return.
    DeadStackStore,
    /// V014: a stack address (an `sp`-relative value held in a general
    /// register) is itself stored to memory — the frame address escapes.
    SpEscape,
    /// V101: the reported savings disagree with the cost model or the
    /// actual instruction-count delta.
    SavingsMismatch,
    /// V102: the fragment body is not a dependence-preserving
    /// linearization of an occurrence, or the occurrence is not convex.
    BadLinearization,
    /// V103: a register live across a rewritten site is clobbered beyond
    /// what the replaced instructions clobbered.
    LiveClobber,
    /// V104: the rewritten program does not survive an
    /// encode → decode round trip unchanged.
    RoundTrip,
    /// V105: the extracted fragment function does not have the shape the
    /// candidate claims (wrap, body, return).
    BadFragmentShape,
    /// V106: the image cannot be lifted at all.
    Undecodable,
    /// V107: a MEM dependence edge was relaxed on the strength of an
    /// alias-analysis claim that the validator's independent re-run of
    /// the abstract interpreter cannot re-derive.
    AliasUnsound,
}

impl Code {
    /// The stable `Vnnn` spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DanglingLabel => "V001",
            Code::DuplicateLabel => "V002",
            Code::UnreachableBlock => "V003",
            Code::FallThrough => "V004",
            Code::LiteralOutOfRange => "V005",
            Code::BadBranchTarget => "V006",
            Code::LrDiscipline => "V007",
            Code::UndefinedCallTarget => "V008",
            Code::DuplicateFunction => "V009",
            Code::StackImbalance => "V010",
            Code::ReadUnwrittenSlot => "V011",
            Code::MisalignedSlot => "V012",
            Code::DeadStackStore => "V013",
            Code::SpEscape => "V014",
            Code::SavingsMismatch => "V101",
            Code::BadLinearization => "V102",
            Code::LiveClobber => "V103",
            Code::RoundTrip => "V104",
            Code::BadFragmentShape => "V105",
            Code::Undecodable => "V106",
            Code::AliasUnsound => "V107",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Location {
    /// The function the finding is in, when function-local.
    pub function: Option<String>,
    /// The item index within the function, when item-precise.
    pub item: Option<usize>,
}

impl Location {
    /// A whole-program location.
    pub fn program() -> Location {
        Location::default()
    }

    /// A function-level location.
    pub fn function(name: impl Into<String>) -> Location {
        Location {
            function: Some(name.into()),
            item: None,
        }
    }

    /// An item-precise location.
    pub fn item(name: impl Into<String>, item: usize) -> Location {
        Location {
            function: Some(name.into()),
            item: Some(item),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, self.item) {
            (Some(func), Some(i)) => write!(f, "{func}+{i}"),
            (Some(func), None) => write!(f, "{func}"),
            _ => write!(f, "<program>"),
        }
    }
}

/// One finding of the lint engine or the translation validator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable check code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: Code, location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: Code, location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// Whether any diagnostic in a batch is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}
