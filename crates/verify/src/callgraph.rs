//! The program call graph and per-function register/flag summaries.
//!
//! Each function gets a [`FnSummary`]: the registers and flags it may
//! read before writing (its live-in) and the ones it may clobber. The
//! summaries are computed to a least fixpoint over the call graph, so
//! mutual recursion and the tail-call chains produced by cross-jump
//! extraction converge. Call items are then modelled precisely in
//! liveness ([`SummaryTransfer`]) instead of as the conservative barrier
//! baked into [`Item::effects`] — which is what lets a validator ask "is
//! `lr` really read after this point?" in a program that is full of
//! extracted-fragment calls.

use std::collections::HashMap;

use gpa_arm::reg::RegSet;
use gpa_arm::Reg;
use gpa_cfg::{Item, Literal, Program};

use crate::dataflow::{EffectsTransfer, FnCfg, GenKill, ItemTransfer, LiveState, Liveness};

/// What a call to a function does to the caller-visible machine state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FnSummary {
    /// Registers (and flags) the function may read before writing them.
    pub live_in: LiveState,
    /// Registers the function may leave clobbered on return.
    pub defs: RegSet,
    /// Whether the function may leave the flags clobbered.
    pub writes_flags: bool,
}

impl FnSummary {
    /// The most conservative summary: reads and clobbers everything.
    pub fn conservative() -> FnSummary {
        FnSummary {
            live_in: LiveState {
                regs: RegSet(0xffff),
                flags: true,
            },
            defs: RegSet(0xffff),
            writes_flags: true,
        }
    }
}

/// The program call graph plus the per-function summaries.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Function name → index in `Program::functions`.
    pub index: HashMap<String, usize>,
    /// Per function, the callee indices (calls, tail calls and
    /// address-taken references through code literals).
    pub callees: Vec<Vec<usize>>,
    /// Per function, whether it makes an indirect call (unknowable
    /// callee).
    pub has_indirect: Vec<bool>,
    /// The fixpoint summaries, aligned with `Program::functions`.
    pub summaries: Vec<FnSummary>,
}

/// Call-item targets of one function body.
fn callee_names(items: &[Item]) -> (Vec<&str>, bool) {
    let mut names = Vec::new();
    let mut indirect = false;
    for item in items {
        match item {
            Item::Call { target, .. } | Item::TailCall { cond: _, target } => {
                names.push(target.as_str());
            }
            Item::LitLoad {
                lit: Literal::Code(name),
                ..
            } => names.push(name.as_str()),
            Item::IndirectCall { .. } => indirect = true,
            _ => {}
        }
    }
    (names, indirect)
}

impl CallGraph {
    /// Builds the call graph and runs the summary fixpoint.
    pub fn build(program: &Program) -> CallGraph {
        let index: HashMap<String, usize> = program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let mut callees = Vec::with_capacity(program.functions.len());
        let mut has_indirect = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            let (names, indirect) = callee_names(&f.items);
            let mut ids: Vec<usize> = names
                .iter()
                .filter_map(|n| index.get(*n).copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            callees.push(ids);
            has_indirect.push(indirect);
        }

        // Least-fixpoint summaries: start from bottom (reads nothing,
        // clobbers nothing) and iterate; facts only grow, so this
        // terminates and converges even through recursion.
        let bottom = FnSummary {
            live_in: LiveState::EMPTY,
            defs: RegSet::EMPTY,
            writes_flags: false,
        };
        let mut summaries = vec![bottom; program.functions.len()];
        let cfgs: Vec<FnCfg> = program.functions.iter().map(FnCfg::build).collect();
        loop {
            let mut changed = false;
            for (i, f) in program.functions.iter().enumerate() {
                let transfer = SummaryTransfer {
                    index: &index,
                    summaries: &summaries,
                };
                let live = Liveness::analyze(f, &cfgs[i], &transfer, LiveState::EMPTY);
                let live_in = live.live_in.first().copied().unwrap_or(LiveState::EMPTY);
                let mut defs = RegSet::EMPTY;
                let mut writes_flags = false;
                for item in &f.items {
                    match item {
                        Item::Call { target, .. } => {
                            defs.insert(Reg::LR);
                            match index.get(target) {
                                Some(&t) => {
                                    defs = defs.union(summaries[t].defs);
                                    writes_flags |= summaries[t].writes_flags;
                                }
                                None => {
                                    defs = defs.union(FnSummary::conservative().defs);
                                    writes_flags = true;
                                }
                            }
                        }
                        Item::TailCall { target, .. } => {
                            if let Some(&t) = index.get(target) {
                                defs = defs.union(summaries[t].defs);
                                writes_flags |= summaries[t].writes_flags;
                            } else {
                                defs = defs.union(FnSummary::conservative().defs);
                                writes_flags = true;
                            }
                        }
                        Item::IndirectCall { .. } => {
                            defs = defs.union(FnSummary::conservative().defs);
                            writes_flags = true;
                        }
                        other => {
                            let fx = other.effects();
                            defs = defs.union(fx.defs);
                            writes_flags |= fx.writes_flags;
                        }
                    }
                }
                defs.remove(Reg::PC);
                let next = FnSummary {
                    live_in,
                    defs,
                    writes_flags,
                };
                if next != summaries[i] {
                    summaries[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        CallGraph {
            index,
            callees,
            has_indirect,
            summaries,
        }
    }

    /// The summary of a function by name, if it exists.
    pub fn summary(&self, name: &str) -> Option<&FnSummary> {
        self.index.get(name).map(|&i| &self.summaries[i])
    }
}

/// A liveness transfer that models calls with the callee's summary.
///
/// * `bl f` generates `f`'s live-in **minus `lr`** (the `bl` itself
///   provides `lr`) and kills `lr` (the return address, and the popped
///   `pc` of an ABI epilogue, always leave it clobbered);
/// * `b f` (tail call) generates `f`'s live-in verbatim — `lr` flows
///   through a tail call untouched;
/// * indirect calls fall back to the conservative ABI footprint.
pub struct SummaryTransfer<'a> {
    index: &'a HashMap<String, usize>,
    summaries: &'a [FnSummary],
}

impl<'a> SummaryTransfer<'a> {
    /// Wraps a computed call graph for use in liveness queries.
    pub fn new(graph: &'a CallGraph) -> SummaryTransfer<'a> {
        SummaryTransfer {
            index: &graph.index,
            summaries: &graph.summaries,
        }
    }

    fn callee(&self, name: &str) -> Option<&FnSummary> {
        self.index.get(name).map(|&i| &self.summaries[i])
    }
}

impl ItemTransfer for SummaryTransfer<'_> {
    fn gen_kill(&self, item: &Item) -> GenKill {
        match item {
            Item::Call { cond, target } => {
                let summary = self
                    .callee(target)
                    .copied()
                    .unwrap_or_else(FnSummary::conservative);
                let mut gen_regs = summary.live_in.regs;
                gen_regs.remove(Reg::LR);
                let mut kill = LiveState::EMPTY;
                if cond.is_always() {
                    kill.regs.insert(Reg::LR);
                }
                GenKill {
                    gen: LiveState {
                        regs: gen_regs,
                        flags: summary.live_in.flags || !cond.is_always(),
                    },
                    kill,
                }
            }
            Item::TailCall { cond, target } => {
                let summary = self
                    .callee(target)
                    .copied()
                    .unwrap_or_else(FnSummary::conservative);
                GenKill {
                    gen: LiveState {
                        regs: summary.live_in.regs,
                        flags: summary.live_in.flags || !cond.is_always(),
                    },
                    kill: LiveState::EMPTY,
                }
            }
            other => EffectsTransfer.gen_kill(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::Cond;
    use gpa_cfg::FunctionCode;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn program(functions: Vec<FunctionCode>) -> Program {
        let entry = functions[0].name.clone();
        Program {
            functions,
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry,
        }
    }

    fn func(name: &str, items: Vec<Item>) -> FunctionCode {
        FunctionCode {
            name: name.into(),
            address_taken: false,
            items,
            label_count: 0,
        }
    }

    #[test]
    fn leaf_summary_is_exact() {
        let p = program(vec![func(
            "leaf",
            vec![insn("add r0, r0, r1"), insn("bx lr")],
        )]);
        let g = CallGraph::build(&p);
        let s = g.summary("leaf").unwrap();
        assert_eq!(s.live_in.regs, RegSet::of(&[Reg::r(0), Reg::r(1), Reg::LR]));
        assert_eq!(s.defs, RegSet::of(&[Reg::r(0)]));
        assert!(!s.writes_flags);
    }

    #[test]
    fn call_propagates_callee_summary() {
        let p = program(vec![
            func(
                "caller",
                vec![
                    Item::Call {
                        cond: Cond::Al,
                        target: "leaf".into(),
                    },
                    insn("bx lr"),
                ],
            ),
            func("leaf", vec![insn("mov r0, r4"), insn("bx lr")]),
        ]);
        let g = CallGraph::build(&p);
        let caller = g.summary("caller").unwrap();
        // The callee reads r4; through the call the caller does too. The
        // entry value of lr is dead: the bl overwrites it before the
        // caller's own return reads it back.
        assert!(caller.live_in.regs.contains(Reg::r(4)));
        assert!(!caller.live_in.regs.contains(Reg::LR));
        // The bl clobbers lr.
        assert!(caller.defs.contains(Reg::LR));
        assert!(caller.defs.contains(Reg::r(0)));
        assert_eq!(g.callees[0], vec![1]);
    }

    #[test]
    fn tail_call_keeps_lr_live() {
        let p = program(vec![
            func(
                "trampoline",
                vec![Item::TailCall {
                    cond: Cond::Al,
                    target: "leaf".into(),
                }],
            ),
            func("leaf", vec![insn("bx lr")]),
        ]);
        let g = CallGraph::build(&p);
        // The tail-callee returns through the shared lr.
        assert!(g
            .summary("trampoline")
            .unwrap()
            .live_in
            .regs
            .contains(Reg::LR));
    }

    #[test]
    fn recursion_converges() {
        let p = program(vec![func(
            "rec",
            vec![
                insn("push {r4, lr}"),
                Item::Call {
                    cond: Cond::Al,
                    target: "rec".into(),
                },
                insn("pop {r4, pc}"),
            ],
        )]);
        let g = CallGraph::build(&p);
        let s = g.summary("rec").unwrap();
        assert!(s.live_in.regs.contains(Reg::r(4)));
        assert!(s.defs.contains(Reg::LR));
        assert!(!s.defs.contains(Reg::PC));
    }
}
