//! Value-set abstract interpretation over lifted functions.
//!
//! A forward worklist fixpoint computes, at every program point, an
//! abstract value per register from the flat lattice
//!
//! ```text
//!                 ⊤                 (unknown)
//!        /    |       |      \
//!  Const(k)   …   SpRel(d)  SymRel(s, d)
//!        \    |       |      /
//!                 ⊥                 (unreachable)
//! ```
//!
//! `Const` is a known 32-bit constant, `SpRel` the function-entry stack
//! pointer plus a known byte offset, and `SymRel` a *symbolic base*: the
//! fixed-but-unknown value most recently produced by one definition
//! point (an instruction's destination register, or a register's value
//! at function entry), plus a known byte offset. Symbols make memory
//! disambiguation work on unknown pointers too: two accesses through
//! the *same* symbol at non-overlapping offsets touch disjoint bytes —
//! provided the defining point does not execute between them (see
//! [`AbsAccess::provably_disjoint`]).
//!
//! Transfer functions are derived from the [`gpa_arm`] instruction forms
//! (`mov`/`add`/`sub` arithmetic, `ldr`/`str` writeback, `push`/`pop`
//! block transfers); calls clobber the registers named by the
//! [`crate::callgraph`] summaries instead of everything. The analysis
//! answers one question precisely: *which memory accesses land at known
//! offsets from a known base?* — the fuel for the MEM-edge relaxation
//! in `gpa_dfg` and the `V010`–`V014` stack lints.

use gpa_arm::memfx::MemDisp;
use gpa_arm::{DpOp, Instruction, Operand2, Reg, ShiftKind};
use gpa_cfg::{FunctionCode, Item, Literal, Program};

use crate::callgraph::CallGraph;
use crate::dataflow::FnCfg;

/// An abstract register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsValue {
    /// Unreachable / no information yet (the lattice bottom).
    Bottom,
    /// A known 32-bit constant (stored zero-extended).
    Const(i64),
    /// The function-entry stack pointer plus a known byte offset.
    SpRel(i64),
    /// The fixed-but-unknown value of one definition point (see
    /// [`sym_def_index`]) plus a known byte offset.
    SymRel(u32, i64),
    /// Unknown (the lattice top).
    Top,
}

/// Symbol ids at and above this bound denote a register's value at
/// function entry (no definition point inside the function).
const ENTRY_SYM_BASE: u32 = 0xffff_ff00;

/// The symbol for "the value item `idx` defines into register `r`".
fn def_sym(idx: usize, r: Reg) -> u32 {
    debug_assert!((idx as u32) < ENTRY_SYM_BASE >> 4, "function too large");
    ((idx as u32) << 4) | u32::from(r.number())
}

/// The symbol for "the value register `r` holds at function entry".
fn entry_sym(r: Reg) -> u32 {
    ENTRY_SYM_BASE | u32::from(r.number())
}

/// The item index of the definition point behind a symbol, or `None`
/// for function-entry symbols (which have no definition to re-execute).
pub fn sym_def_index(sym: u32) -> Option<usize> {
    (sym < ENTRY_SYM_BASE).then_some((sym >> 4) as usize)
}

impl AbsValue {
    /// The least upper bound of two values.
    pub fn join(self, other: AbsValue) -> AbsValue {
        match (self, other) {
            (AbsValue::Bottom, v) | (v, AbsValue::Bottom) => v,
            (a, b) if a == b => a,
            _ => AbsValue::Top,
        }
    }

    /// Adds a known byte delta, staying in the same lattice region.
    fn offset_by(self, delta: i64) -> AbsValue {
        match self {
            AbsValue::Const(c) => AbsValue::Const(wrap32(c + delta)),
            AbsValue::SpRel(d) => AbsValue::SpRel(d + delta),
            AbsValue::SymRel(s, d) => AbsValue::SymRel(s, d + delta),
            v => v,
        }
    }
}

impl std::fmt::Display for AbsValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsValue::Bottom => write!(f, "bot"),
            AbsValue::Const(c) => write!(f, "#{c:#x}"),
            AbsValue::SpRel(d) => write!(f, "sp{d:+}"),
            AbsValue::SymRel(s, d) => {
                let r = Reg::r((s & 0xf) as u8);
                match sym_def_index(*s) {
                    None => write!(f, "in({r}){d:+}"),
                    Some(idx) => write!(f, "at{idx}({r}){d:+}"),
                }
            }
            AbsValue::Top => write!(f, "top"),
        }
    }
}

/// Truncates to the 32-bit value domain (constants are canonical as
/// zero-extended `u32`).
fn wrap32(v: i64) -> i64 {
    i64::from(v as u32)
}

/// Sign-extends a 32-bit constant — the reading used when a constant is
/// added to an `SpRel` base, so `add sp, sp, #-16` encodings and their
/// wrapped equivalents shift the offset the same way.
fn as_signed(c: i64) -> i64 {
    i64::from(c as u32 as i32)
}

/// The abstract machine state: one [`AbsValue`] per register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegState {
    vals: [AbsValue; 16],
}

impl RegState {
    /// The function-entry state: `sp` is `SpRel(0)`, `pc` is unknown,
    /// and every other register holds its (fixed) entry value as a
    /// symbolic base — so accesses through incoming pointer arguments
    /// resolve too.
    pub fn entry() -> RegState {
        let mut vals = [AbsValue::Top; 16];
        for n in 0..15 {
            vals[n as usize] = AbsValue::SymRel(entry_sym(Reg::r(n)), 0);
        }
        vals[Reg::SP.number() as usize] = AbsValue::SpRel(0);
        RegState { vals }
    }

    /// The value of a register.
    pub fn get(&self, r: Reg) -> AbsValue {
        self.vals[r.number() as usize]
    }

    /// Overwrites a register.
    pub fn set(&mut self, r: Reg, v: AbsValue) {
        self.vals[r.number() as usize] = v;
    }

    /// Pointwise join with another state.
    pub fn join(&self, other: &RegState) -> RegState {
        let mut vals = self.vals;
        for (v, o) in vals.iter_mut().zip(other.vals.iter()) {
            *v = v.join(*o);
        }
        RegState { vals }
    }
}

fn eval_shift(value: i64, kind: ShiftKind, amount: u8) -> i64 {
    let v = value as u32;
    let a = u32::from(amount);
    let shifted = match kind {
        ShiftKind::Lsl => v.wrapping_shl(a),
        ShiftKind::Lsr => {
            if a >= 32 {
                0
            } else {
                v >> a
            }
        }
        ShiftKind::Asr => ((v as i32) >> a.min(31)) as u32,
        ShiftKind::Ror => v.rotate_right(a % 32),
    };
    i64::from(shifted)
}

fn eval_op2(state: &RegState, op2: Operand2) -> AbsValue {
    match op2 {
        Operand2::Imm(v) => AbsValue::Const(i64::from(v)),
        Operand2::Reg(r) => state.get(r),
        Operand2::RegShift(r, kind, amount) => match state.get(r) {
            AbsValue::Const(c) => AbsValue::Const(eval_shift(c, kind, amount)),
            AbsValue::Bottom => AbsValue::Bottom,
            _ => AbsValue::Top,
        },
    }
}

fn abs_add(a: AbsValue, b: AbsValue) -> AbsValue {
    match (a, b) {
        (AbsValue::Bottom, _) | (_, AbsValue::Bottom) => AbsValue::Bottom,
        (AbsValue::Const(x), AbsValue::Const(y)) => AbsValue::Const(wrap32(x + y)),
        (AbsValue::SpRel(d), AbsValue::Const(c)) | (AbsValue::Const(c), AbsValue::SpRel(d)) => {
            AbsValue::SpRel(d + as_signed(c))
        }
        (AbsValue::SymRel(s, d), AbsValue::Const(c))
        | (AbsValue::Const(c), AbsValue::SymRel(s, d)) => AbsValue::SymRel(s, d + as_signed(c)),
        _ => AbsValue::Top,
    }
}

fn abs_sub(a: AbsValue, b: AbsValue) -> AbsValue {
    match (a, b) {
        (AbsValue::Bottom, _) | (_, AbsValue::Bottom) => AbsValue::Bottom,
        (AbsValue::Const(x), AbsValue::Const(y)) => AbsValue::Const(wrap32(x - y)),
        (AbsValue::SpRel(d), AbsValue::Const(c)) => AbsValue::SpRel(d - as_signed(c)),
        (AbsValue::SpRel(x), AbsValue::SpRel(y)) => AbsValue::Const(wrap32(x - y)),
        (AbsValue::SymRel(s, d), AbsValue::Const(c)) => AbsValue::SymRel(s, d - as_signed(c)),
        (AbsValue::SymRel(x, dx), AbsValue::SymRel(y, dy)) if x == y => {
            AbsValue::Const(wrap32(dx - dy))
        }
        _ => AbsValue::Top,
    }
}

fn abs_bitop(op: DpOp, a: AbsValue, b: AbsValue) -> AbsValue {
    let (AbsValue::Const(x), AbsValue::Const(y)) = (a, b) else {
        return AbsValue::Top;
    };
    let (x, y) = (x as u32, y as u32);
    let r = match op {
        DpOp::And => x & y,
        DpOp::Orr => x | y,
        DpOp::Eor => x ^ y,
        DpOp::Bic => x & !y,
        _ => unreachable!("not a bit operation"),
    };
    AbsValue::Const(i64::from(r))
}

/// The value a data-processing opcode produces, or `None` for the
/// flag-only compares.
fn dp_value(op: DpOp, rn_val: AbsValue, op2_val: AbsValue) -> Option<AbsValue> {
    let v = match op {
        DpOp::Mov => op2_val,
        DpOp::Mvn => match op2_val {
            AbsValue::Const(c) => AbsValue::Const(i64::from(!(c as u32))),
            _ => AbsValue::Top,
        },
        DpOp::Add => abs_add(rn_val, op2_val),
        DpOp::Sub => abs_sub(rn_val, op2_val),
        DpOp::Rsb => abs_sub(op2_val, rn_val),
        DpOp::And | DpOp::Orr | DpOp::Eor | DpOp::Bic => abs_bitop(op, rn_val, op2_val),
        // Carry-consuming arithmetic: the flags are not tracked.
        DpOp::Adc | DpOp::Sbc | DpOp::Rsc => AbsValue::Top,
        DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn => return None,
    };
    Some(v)
}

/// Writes a definition's result, turning an unknown result into a fresh
/// symbolic base for this definition point: the value is unknown but
/// *fixed* until the point executes again, which is exactly what
/// [`AbsValue::SymRel`] asserts. `pc` stays ⊤ — it never holds a stable
/// value.
fn set_def(state: &mut RegState, idx: usize, rd: Reg, v: AbsValue) {
    let v = if v == AbsValue::Top && rd != Reg::PC {
        AbsValue::SymRel(def_sym(idx, rd), 0)
    } else {
        v
    };
    state.set(rd, v);
}

/// The post-state of an instruction assuming it executes (its condition
/// holds). `idx` is the item index of the instruction, the identity of
/// every symbolic base it mints.
fn apply_insn(state: &RegState, insn: &Instruction, idx: usize) -> RegState {
    let mut next = *state;
    match *insn {
        Instruction::DataProc {
            op, rd, rn, op2, ..
        } => {
            if let Some(v) = dp_value(op, next.get(rn), eval_op2(&next, op2)) {
                set_def(&mut next, idx, rd, v);
            }
        }
        Instruction::Mul { rd, .. } | Instruction::Mla { rd, .. } => {
            set_def(&mut next, idx, rd, AbsValue::Top);
        }
        Instruction::Mem { op, rd, .. } | Instruction::Block { op, rn: rd, .. } => {
            if let Some((rn, delta)) = insn.mem_fx().writeback {
                let v = match delta {
                    MemDisp::Imm(d) => next.get(rn).offset_by(d),
                    MemDisp::Reg(rm, sub) => match next.get(rm) {
                        AbsValue::Const(c) => {
                            let d = as_signed(c);
                            next.get(rn).offset_by(if sub { -d } else { d })
                        }
                        _ => AbsValue::Top,
                    },
                };
                set_def(&mut next, idx, rn, v);
            }
            // Loaded registers take fresh symbolic values — after the
            // writeback, so `ldr rn, [rn], #4` and `ldm` lists that
            // contain the base end up with the load's symbol, not
            // base + delta.
            if op == gpa_arm::MemOp::Ldr {
                match *insn {
                    Instruction::Mem { .. } => set_def(&mut next, idx, rd, AbsValue::Top),
                    Instruction::Block { regs, .. } => {
                        for r in regs.iter() {
                            set_def(&mut next, idx, r, AbsValue::Top);
                        }
                    }
                    _ => unreachable!("matched above"),
                }
            }
        }
        Instruction::Branch { link, .. } => {
            if link {
                set_def(&mut next, idx, Reg::LR, AbsValue::Top);
            }
        }
        Instruction::Bx { .. } => {}
        Instruction::Swi { .. } => {
            set_def(&mut next, idx, Reg::r(0), AbsValue::Top);
        }
    }
    next
}

fn transfer_insn(state: &mut RegState, insn: &Instruction, idx: usize) {
    // Join the post-state with the pre-state when the instruction may be
    // skipped (conditional execution).
    let next = apply_insn(state, insn, idx);
    *state = if insn.cond().is_always() {
        next
    } else {
        state.join(&next)
    };
}

/// Interprocedural context for the abstract interpreter: the call-graph
/// clobber summaries plus an *sp-balance* fixpoint.
///
/// A [`crate::callgraph::FnSummary`]'s `defs` set contains `sp` for any
/// callee that so much as adjusts its frame, even though a well-formed
/// function restores it before returning. The balance fixpoint
/// re-derives, per function, whether every reachable return provably
/// restores `sp` to its entry value (assuming the same of its callees —
/// sound by induction on execution depth, since a dynamically innermost
/// call executes no calls itself). Calls to balanced callees then
/// preserve the caller's `SpRel` values instead of collapsing them to ⊤.
///
/// Indirect calls are summarized over the *address-taken* functions: an
/// image is a closed world, so a call through a register can only reach
/// a function whose address was materialized somewhere. When every
/// address-taken function is balanced, `sp` survives indirect calls too.
pub struct AbsEnv<'a> {
    graph: &'a CallGraph,
    balanced: Vec<bool>,
    /// Function indices whose address escapes into a register.
    address_taken: Vec<usize>,
    /// Data-object extents `[addr, addr + size)`, sorted by address:
    /// the bound for register-indexed accesses off an object pointer.
    objects: Vec<(i64, i64)>,
}

impl<'a> AbsEnv<'a> {
    /// Runs the sp-balance fixpoint over a program. Facts start
    /// optimistic (`balanced`) and only ever flip to `false`, so the
    /// loop terminates.
    pub fn build(program: &Program, graph: &'a CallGraph) -> AbsEnv<'a> {
        let address_taken: Vec<usize> = program
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.address_taken)
            .map(|(i, _)| i)
            .collect();
        let mut objects: Vec<(i64, i64)> = program
            .data_symbols
            .iter()
            .filter(|s| s.size > 0)
            .map(|s| (i64::from(s.addr), i64::from(s.addr) + i64::from(s.size)))
            .collect();
        objects.sort_unstable();
        let mut balanced = vec![true; program.functions.len()];
        loop {
            let mut changed = false;
            for (i, f) in program.functions.iter().enumerate() {
                if !balanced[i] {
                    continue;
                }
                let env = AbsEnv {
                    graph,
                    balanced: balanced.clone(),
                    address_taken: address_taken.clone(),
                    objects: objects.clone(),
                };
                if !env.returns_balanced(f) {
                    balanced[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        AbsEnv {
            graph,
            balanced,
            address_taken,
            objects,
        }
    }

    /// The extent `[lo, hi)` of the data object `addr` points into, if
    /// any.
    fn object_containing(&self, addr: i64) -> Option<(i64, i64)> {
        let i = self.objects.partition_point(|&(lo, _)| lo <= addr);
        let &(lo, hi) = self.objects.get(i.checked_sub(1)?)?;
        (addr < hi).then_some((lo, hi))
    }

    /// Whether every reachable return of `f` restores `sp` exactly.
    /// Tail calls fail the check: the unwind continues in another
    /// function, beyond this analysis.
    fn returns_balanced(&self, f: &FunctionCode) -> bool {
        let a = AbsInt::analyze(f, Some(self));
        for (i, item) in f.items.iter().enumerate() {
            let Some(before) = a.before[i] else { continue };
            match item {
                Item::TailCall { .. } => return false,
                Item::Insn(insn)
                    if item.is_return()
                        && apply_insn(&before, insn, i).get(Reg::SP) != AbsValue::SpRel(0) =>
                {
                    return false;
                }
                _ => {}
            }
        }
        true
    }

    /// Whether a call to `target` provably returns with `sp` restored.
    pub fn sp_balanced(&self, target: &str) -> bool {
        self.graph
            .index
            .get(target)
            .is_some_and(|&i| self.balanced[i])
    }

    /// The registers a call to `target` may leave clobbered.
    fn call_clobbers(&self, target: &str) -> gpa_arm::reg::RegSet {
        let Some(&i) = self.graph.index.get(target) else {
            return gpa_arm::reg::RegSet(0xffff);
        };
        let mut defs = self.graph.summaries[i].defs;
        if self.balanced[i] {
            defs.remove(Reg::SP);
        }
        // `bl` always writes the link register.
        defs.insert(Reg::LR);
        defs
    }

    /// The registers an *indirect* call may leave clobbered: the union
    /// over every address-taken function, with `sp` preserved only when
    /// all of them are balanced. No address-taken functions means the
    /// call target is outside the image's closed world — clobber
    /// everything.
    fn indirect_call_clobbers(&self) -> gpa_arm::reg::RegSet {
        if self.address_taken.is_empty() {
            return gpa_arm::reg::RegSet(0xffff);
        }
        let mut defs = gpa_arm::reg::RegSet::EMPTY;
        let mut all_balanced = true;
        for &i in &self.address_taken {
            defs = defs.union(self.graph.summaries[i].defs);
            all_balanced &= self.balanced[i];
        }
        if all_balanced {
            defs.remove(Reg::SP);
        }
        defs.insert(Reg::LR);
        defs
    }
}

/// Applies one item's transfer function to a state. `idx` is the item's
/// index within its function (the identity of any symbolic base the item
/// mints).
///
/// `env` supplies per-callee clobber summaries and the sp-balance facts;
/// without it every call conservatively clobbers all sixteen registers.
pub fn transfer(state: &mut RegState, item: &Item, idx: usize, env: Option<&AbsEnv>) {
    match item {
        Item::Label(_) | Item::Branch { .. } | Item::TailCall { .. } => {}
        Item::Insn(insn) => transfer_insn(state, insn, idx),
        Item::Call { target, .. } => {
            // Call-clobbered registers go to ⊤, not to symbols: the
            // clobber summary is a may-write set, so the register may
            // equally retain its old value — there is no single
            // definition point to name.
            let clobbers = env
                .map(|e| e.call_clobbers(target))
                .unwrap_or(gpa_arm::reg::RegSet(0xffff));
            for r in clobbers.iter() {
                state.set(r, AbsValue::Top);
            }
        }
        Item::IndirectCall { .. } => {
            // Closed world: the target is one of the address-taken
            // functions, so their joint clobber summary applies.
            let clobbers = env.map_or(gpa_arm::reg::RegSet(0xffff), AbsEnv::indirect_call_clobbers);
            for r in clobbers.iter() {
                state.set(r, AbsValue::Top);
            }
        }
        Item::LitLoad { rd, lit } => {
            let v = match lit {
                Literal::Word(w) => AbsValue::Const(i64::from(*w)),
                // A code address is a link-time constant: unknown here,
                // but fixed — a symbolic base.
                Literal::Code(_) => AbsValue::SymRel(def_sym(idx, *rd), 0),
            };
            state.set(*rd, v);
        }
    }
}

/// The fixpoint result: one abstract state per program point.
#[derive(Clone, Debug)]
pub struct AbsInt {
    /// Per item, the state immediately *before* the item executes;
    /// `None` when the item is unreachable from the function entry.
    pub before: Vec<Option<RegState>>,
    /// Number of reachable program points (the `absint.points` counter).
    pub points: u64,
}

impl AbsInt {
    /// Runs the forward worklist to a fixpoint over one function.
    pub fn analyze(f: &FunctionCode, env: Option<&AbsEnv>) -> AbsInt {
        let cfg = FnCfg::build(f);
        let n = cfg.blocks.len();
        let mut in_states: Vec<Option<RegState>> = vec![None; n];
        if n > 0 {
            in_states[0] = Some(RegState::entry());
        }
        let mut work: Vec<usize> = (0..n).rev().collect();
        while let Some(b) = work.pop() {
            let Some(mut out) = in_states[b] else {
                continue;
            };
            let block = &cfg.blocks[b];
            for i in block.start..block.end {
                transfer(&mut out, &f.items[i], i, env);
            }
            for &s in &block.succs {
                let merged = match &in_states[s] {
                    None => out,
                    Some(cur) => cur.join(&out),
                };
                if in_states[s] != Some(merged) {
                    in_states[s] = Some(merged);
                    if !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        let mut before = vec![None; f.items.len()];
        for (b, block) in cfg.blocks.iter().enumerate() {
            let Some(mut state) = in_states[b] else {
                continue;
            };
            for (i, slot) in before
                .iter_mut()
                .enumerate()
                .take(block.end)
                .skip(block.start)
            {
                *slot = Some(state);
                transfer(&mut state, &f.items[i], i, env);
            }
        }
        let points = before.iter().filter(|s| s.is_some()).count() as u64;
        AbsInt { before, points }
    }
}

/// The address base of one resolved memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessBase {
    /// The function-entry stack pointer.
    Sp,
    /// An absolute address (the interval bounds are absolute).
    Abs,
    /// The fixed-but-unknown value named by a symbol (see
    /// [`sym_def_index`]).
    Sym(u32),
}

/// One resolved memory access: the half-open byte interval `[lo, hi)`
/// relative to its [`AccessBase`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsAccess {
    /// What `lo`/`hi` are relative to.
    pub base: AccessBase,
    /// First byte touched (base-relative).
    pub lo: i64,
    /// One past the last byte touched.
    pub hi: i64,
    /// Whether the access writes memory.
    pub store: bool,
}

impl AbsAccess {
    /// Whether the byte *intervals* are disjoint. Meaningful only for
    /// two accesses known to share a base; see
    /// [`AbsAccess::provably_disjoint`] for the full check.
    pub fn disjoint(&self, other: &AbsAccess) -> bool {
        self.hi <= other.lo || other.hi <= self.lo
    }

    /// Whether this access (performed at item `earlier`) and `other`
    /// (performed at item `later` of the same straight-line run, with
    /// `earlier < later` as function-absolute indices) provably touch
    /// disjoint bytes.
    ///
    /// Two accesses are provably disjoint only when their bases are
    /// provably equal and their intervals do not overlap. `Sp`-based and
    /// `Abs`-based pairs share their base unconditionally. A symbolic
    /// base is one *definition point's* value, so the pair additionally
    /// requires that the definition does not execute between the two
    /// accesses — otherwise the base may have changed, and the offsets
    /// compare values of different instants.
    pub fn provably_disjoint(&self, other: &AbsAccess, earlier: usize, later: usize) -> bool {
        match (self.base, other.base) {
            // A stack access and a static-image access never collide:
            // the stack grows from the top of memory and, absent stack
            // overflow (which the whole rewrite already assumes away),
            // never descends into the static data the literal pool
            // addresses.
            (AccessBase::Sp, AccessBase::Abs) | (AccessBase::Abs, AccessBase::Sp) => true,
            (AccessBase::Sp, AccessBase::Sp) | (AccessBase::Abs, AccessBase::Abs) => {
                self.disjoint(other)
            }
            (AccessBase::Sym(a), AccessBase::Sym(b)) if a == b => {
                sym_def_index(a).is_none_or(|d| !(earlier < d && d < later)) && self.disjoint(other)
            }
            _ => false,
        }
    }
}

/// Resolves every memory access of `item` against the abstract state at
/// its program point.
///
/// Returns `Some(accesses)` only when *every* access the item may
/// perform is provably a bounded interval from a known base (the entry
/// `sp`, an absolute address, or a symbolic base); `Some(vec![])` when
/// the item touches no memory; `None` when any access is unresolvable
/// (⊤ base, register offset off an unknown base, `swi`, calls).
///
/// A register-indexed access off an *absolute* base that points into a
/// known data object resolves to the whole object's extent: the index
/// is unknown, but an in-bounds access through an object pointer stays
/// inside the object (indexing out of it is undefined behaviour the
/// analysis — like the rest of the rewriter — assumes away). `env`
/// supplies the object table; without it such accesses stay unresolved.
pub fn resolved_accesses(
    state: &RegState,
    item: &Item,
    env: Option<&AbsEnv>,
) -> Option<Vec<AbsAccess>> {
    let fx = item.effects();
    if !fx.reads_mem && !fx.writes_mem {
        return Some(Vec::new());
    }
    let Item::Insn(insn) = item else {
        // Calls (and the fragment-call barrier) touch memory in ways no
        // addressing shape describes.
        return None;
    };
    let shapes = insn.mem_fx().accesses?;
    let mut out = Vec::with_capacity(shapes.len());
    for access in shapes {
        let (base, start) = match state.get(access.base) {
            AbsValue::SpRel(b) => (AccessBase::Sp, b),
            AbsValue::Const(c) => (AccessBase::Abs, c),
            AbsValue::SymRel(s, b) => (AccessBase::Sym(s), b),
            AbsValue::Top | AbsValue::Bottom => return None,
        };
        let disp = match access.disp {
            MemDisp::Imm(d) => Some(d),
            MemDisp::Reg(rm, sub) => match state.get(rm) {
                AbsValue::Const(c) => {
                    let d = as_signed(c);
                    Some(if sub { -d } else { d })
                }
                _ => None,
            },
        };
        match disp {
            Some(d) => {
                let lo = start + d;
                out.push(AbsAccess {
                    base,
                    lo,
                    hi: lo + access.width,
                    store: access.store,
                });
            }
            None => {
                // Unknown index: bound the access by the data object the
                // base points into.
                let (lo, hi) = match base {
                    AccessBase::Abs => env?.object_containing(start)?,
                    _ => return None,
                };
                out.push(AbsAccess {
                    base: AccessBase::Abs,
                    lo,
                    hi,
                    store: access.store,
                });
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::Cond;
    use gpa_cfg::LabelId;

    fn insn(text: &str) -> Item {
        Item::Insn(text.parse().unwrap())
    }

    fn func(items: Vec<Item>, label_count: u32) -> FunctionCode {
        FunctionCode {
            name: "f".into(),
            address_taken: false,
            items,
            label_count,
        }
    }

    #[test]
    fn join_is_a_flat_lattice() {
        use AbsValue::*;
        assert_eq!(Const(4).join(Const(4)), Const(4));
        assert_eq!(Const(4).join(Const(5)), Top);
        assert_eq!(SpRel(-8).join(SpRel(-8)), SpRel(-8));
        assert_eq!(SpRel(-8).join(Const(4)), Top);
        assert_eq!(Bottom.join(SpRel(0)), SpRel(0));
        assert_eq!(Top.join(Bottom), Top);
    }

    #[test]
    fn tracks_sp_through_prologue_and_epilogue() {
        // push {r4, lr}; sub sp, #16; add sp, #16; pop {r4, pc}
        let f = func(
            vec![
                insn("stmdb sp!, {r4, lr}"),
                insn("sub sp, sp, #16"),
                insn("mov r0, #0"),
                insn("add sp, sp, #16"),
                insn("ldmia sp!, {r4, pc}"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        assert_eq!(a.points, 5);
        let sp = |i: usize| a.before[i].unwrap().get(Reg::SP);
        assert_eq!(sp(0), AbsValue::SpRel(0));
        assert_eq!(sp(1), AbsValue::SpRel(-8));
        assert_eq!(sp(2), AbsValue::SpRel(-24));
        assert_eq!(sp(4), AbsValue::SpRel(-8));
        // After the pop writeback sp is balanced again.
        let mut end = a.before[4].unwrap();
        transfer(&mut end, &f.items[4], 4, None);
        assert_eq!(end.get(Reg::SP), AbsValue::SpRel(0));
    }

    #[test]
    fn constants_flow_through_mov_add_and_shifts() {
        let f = func(
            vec![
                insn("mov r1, #5"),
                insn("add r2, r1, #3"),
                insn("mov r3, r2, lsl #2"),
                insn("mvn r4, #0"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        let at = |i: usize, r: u8| a.before[i].unwrap().get(Reg::r(r));
        assert_eq!(at(1, 1), AbsValue::Const(5));
        assert_eq!(at(2, 2), AbsValue::Const(8));
        assert_eq!(at(3, 3), AbsValue::Const(32));
        assert_eq!(at(4, 4), AbsValue::Const(0xffff_ffff));
    }

    #[test]
    fn joins_lose_disagreeing_values_at_merges() {
        // if-else assigning different constants to r1.
        let f = func(
            vec![
                insn("cmp r0, #0"),
                Item::Branch {
                    cond: Cond::Eq,
                    target: LabelId(0),
                },
                insn("mov r1, #1"),
                Item::Branch {
                    cond: Cond::Al,
                    target: LabelId(1),
                },
                Item::Label(LabelId(0)),
                insn("mov r1, #2"),
                Item::Label(LabelId(1)),
                insn("bx lr"),
            ],
            2,
        );
        let a = AbsInt::analyze(&f, None);
        assert_eq!(a.before[7].unwrap().get(Reg::r(1)), AbsValue::Top);
        // The same-valued sp still survives the merge.
        assert_eq!(a.before[7].unwrap().get(Reg::SP), AbsValue::SpRel(0));
    }

    #[test]
    fn conditional_writes_join_with_the_old_value() {
        let f = func(
            vec![
                insn("mov r1, #7"),
                insn("cmp r0, #0"),
                insn("moveq r1, #7"),
                insn("movne r2, #1"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        // moveq writes the same constant: value survives.
        assert_eq!(a.before[3].unwrap().get(Reg::r(1)), AbsValue::Const(7));
        // movne may or may not execute: r2 is unknown afterwards.
        assert_eq!(a.before[4].unwrap().get(Reg::r(2)), AbsValue::Top);
    }

    #[test]
    fn calls_clobber_per_summary() {
        // Without a call graph, calls wipe everything including sp.
        let f = func(
            vec![
                insn("sub sp, sp, #8"),
                Item::Call {
                    cond: Cond::Al,
                    target: "g".into(),
                },
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        assert_eq!(a.before[2].unwrap().get(Reg::SP), AbsValue::Top);

        // With summaries, a well-behaved callee leaves sp alone.
        let mut g = func(vec![insn("mov r0, #1"), insn("bx lr")], 0);
        g.name = "g".into();
        let program = program(vec![f.clone(), g]);
        let graph = CallGraph::build(&program);
        let env = AbsEnv::build(&program, &graph);
        let a = AbsInt::analyze(&f, Some(&env));
        assert_eq!(a.before[2].unwrap().get(Reg::SP), AbsValue::SpRel(-8));
        assert_eq!(a.before[2].unwrap().get(Reg::LR), AbsValue::Top);
    }

    fn program(functions: Vec<FunctionCode>) -> Program {
        let entry = functions[0].name.clone();
        Program {
            functions,
            data: Vec::new(),
            data_symbols: Vec::new(),
            code_base: 0x8000,
            data_base: 0x2_0000,
            entry,
        }
    }

    #[test]
    fn balanced_callees_preserve_sp_across_calls() {
        // The callee adjusts its frame — its summary clobbers sp — but it
        // provably restores it on every return path.
        let f = func(
            vec![
                insn("sub sp, sp, #8"),
                Item::Call {
                    cond: Cond::Al,
                    target: "g".into(),
                },
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        );
        let mut g = func(
            vec![
                insn("stmdb sp!, {r4, lr}"),
                insn("sub sp, sp, #16"),
                insn("add sp, sp, #16"),
                insn("ldmia sp!, {r4, pc}"),
            ],
            0,
        );
        g.name = "g".into();
        let p = program(vec![f.clone(), g]);
        let graph = CallGraph::build(&p);
        assert!(graph.summary("g").unwrap().defs.contains(Reg::SP));
        let env = AbsEnv::build(&p, &graph);
        assert!(env.sp_balanced("g"));
        let a = AbsInt::analyze(&f, Some(&env));
        assert_eq!(a.before[2].unwrap().get(Reg::SP), AbsValue::SpRel(-8));
    }

    #[test]
    fn unbalanced_callees_wipe_sp() {
        // The callee leaks eight bytes of frame on one return path; its
        // callers must not assume sp survived the call. The imbalance
        // also infects g's own callers transitively.
        let f = func(
            vec![
                insn("sub sp, sp, #8"),
                Item::Call {
                    cond: Cond::Al,
                    target: "g".into(),
                },
                insn("add sp, sp, #8"),
                insn("bx lr"),
            ],
            0,
        );
        let mut g = func(vec![insn("sub sp, sp, #8"), insn("bx lr")], 0);
        g.name = "g".into();
        let mut h = func(
            vec![
                Item::Call {
                    cond: Cond::Al,
                    target: "g".into(),
                },
                insn("bx lr"),
            ],
            0,
        );
        h.name = "h".into();
        let p = program(vec![f.clone(), g, h]);
        let graph = CallGraph::build(&p);
        let env = AbsEnv::build(&p, &graph);
        assert!(!env.sp_balanced("g"));
        assert!(!env.sp_balanced("h"));
        // f restores its own eight bytes, but on top of a wiped sp — so
        // nothing is provable about f either.
        assert!(!env.sp_balanced("f"));
        let a = AbsInt::analyze(&f, Some(&env));
        assert_eq!(a.before[2].unwrap().get(Reg::SP), AbsValue::Top);
    }

    #[test]
    fn resolves_stack_slots_and_symbolic_bases() {
        let f = func(
            vec![
                insn("sub sp, sp, #16"),
                insn("str r0, [sp, #4]"),
                insn("ldrb r1, [sp, #8]"),
                insn("ldr r2, [r6, #4]"),
                insn("ldr r3, [sp, r2]"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        let at = |i: usize| resolved_accesses(&a.before[i].unwrap(), &f.items[i], None);
        assert_eq!(
            at(1),
            Some(vec![AbsAccess {
                base: AccessBase::Sp,
                lo: -12,
                hi: -8,
                store: true
            }])
        );
        assert_eq!(
            at(2),
            Some(vec![AbsAccess {
                base: AccessBase::Sp,
                lo: -8,
                hi: -7,
                store: false
            }])
        );
        // r6 still holds its entry value: the access resolves against
        // the entry symbol.
        assert_eq!(
            at(3),
            Some(vec![AbsAccess {
                base: AccessBase::Sym(entry_sym(Reg::r(6))),
                lo: 4,
                hi: 8,
                store: false
            }])
        );
        // A register displacement with unknown value stays unresolved
        // (r2 was just loaded — its symbol names a value, not a number).
        assert_eq!(at(4), None);
        // ALU items resolve to "no accesses".
        assert_eq!(at(0), Some(Vec::new()));
        assert!(at(1).unwrap()[0].provably_disjoint(&at(2).unwrap()[0], 1, 2));
        // Different bases are never provably disjoint.
        assert!(!at(2).unwrap()[0].provably_disjoint(&at(3).unwrap()[0], 2, 3));
    }

    #[test]
    fn mov_of_sp_propagates_the_frame_base() {
        let f = func(
            vec![insn("mov r4, sp"), insn("str r0, [r4, #12]"), insn("bx lr")],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        assert_eq!(a.before[1].unwrap().get(Reg::r(4)), AbsValue::SpRel(0));
        assert_eq!(
            resolved_accesses(&a.before[1].unwrap(), &f.items[1], None),
            Some(vec![AbsAccess {
                base: AccessBase::Sp,
                lo: 12,
                hi: 16,
                store: true
            }])
        );
    }

    #[test]
    fn symbolic_bases_flow_through_arithmetic_and_writeback() {
        // r0 at entry is a symbolic base; `add` shifts its offset and a
        // post-indexed load advances it, while the loaded value mints a
        // fresh symbol at the load's index.
        let f = func(
            vec![
                insn("add r1, r0, #8"),
                insn("ldr r2, [r0], #4"),
                insn("sub r3, r1, r0"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        let s0 = entry_sym(Reg::r(0));
        let at = |i: usize, r: u8| a.before[i].unwrap().get(Reg::r(r));
        assert_eq!(at(1, 1), AbsValue::SymRel(s0, 8));
        assert_eq!(at(2, 0), AbsValue::SymRel(s0, 4));
        assert_eq!(at(2, 2), AbsValue::SymRel(def_sym(1, Reg::r(2)), 0));
        // Same-symbol subtraction folds to the constant offset delta.
        assert_eq!(at(3, 3), AbsValue::Const(4));
    }

    #[test]
    fn same_symbol_accesses_disjoint_unless_def_intervenes() {
        // str [r1] at 0, redefine r1 at 1, ldr [r1, #4] at 2: both
        // accesses resolve, but relaxing across the redefinition would
        // compare bases from different instants.
        let f = func(
            vec![
                insn("str r0, [r1]"),
                insn("ldr r1, [r2]"),
                insn("ldr r3, [r1, #4]"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        let at = |i: usize| resolved_accesses(&a.before[i].unwrap(), &f.items[i], None).unwrap();
        let early = at(0)[0];
        let late = at(2)[0];
        // Different symbols (entry r1 vs the load at 1): never disjoint.
        assert_eq!(early.base, AccessBase::Sym(entry_sym(Reg::r(1))));
        assert_eq!(late.base, AccessBase::Sym(def_sym(1, Reg::r(1))));
        assert!(!early.provably_disjoint(&late, 0, 2));

        // Same symbol, no redefinition in between: disjoint holds, and
        // the def-position rule blocks a pair that straddles the def.
        let probe = AbsAccess {
            base: AccessBase::Sym(def_sym(1, Reg::r(1))),
            lo: 8,
            hi: 12,
            store: true,
        };
        assert!(late.provably_disjoint(&probe, 2, 5));
        assert!(!late.provably_disjoint(&probe, 0, 5), "def at 1 intervenes");
    }

    #[test]
    fn absolute_bases_resolve_and_disjoint() {
        use gpa_cfg::Literal;
        // Two globals at known absolute addresses.
        let f = func(
            vec![
                Item::LitLoad {
                    rd: Reg::r(1),
                    lit: Literal::Word(0x2_0000),
                },
                Item::LitLoad {
                    rd: Reg::r(2),
                    lit: Literal::Word(0x2_0100),
                },
                insn("str r0, [r1]"),
                insn("ldr r3, [r2, #8]"),
                insn("bx lr"),
            ],
            0,
        );
        let a = AbsInt::analyze(&f, None);
        let at = |i: usize| resolved_accesses(&a.before[i].unwrap(), &f.items[i], None).unwrap();
        assert_eq!(
            at(2),
            vec![AbsAccess {
                base: AccessBase::Abs,
                lo: 0x2_0000,
                hi: 0x2_0004,
                store: true
            }]
        );
        assert!(at(2)[0].provably_disjoint(&at(3)[0], 2, 3));
    }

    #[test]
    fn register_indexed_table_lookups_bound_to_their_object() {
        use gpa_cfg::Literal;
        // A byte-table lookup `ldrb r2, [r1, r0]` with an unknown index:
        // unresolvable in isolation, but `r1` points at a 64-byte data
        // object, so an in-bounds access stays within its extent.
        let f = func(
            vec![
                Item::LitLoad {
                    rd: Reg::r(1),
                    lit: Literal::Word(0x2_0010),
                },
                insn("ldrb r2, [r1, r0]"),
                insn("str r3, [sp, #-4]"),
                insn("bx lr"),
            ],
            0,
        );
        let mut p = program(vec![f.clone()]);
        p.data_symbols = vec![
            gpa_image::Symbol {
                name: "table".into(),
                addr: 0x2_0010,
                size: 64,
                kind: gpa_image::SymbolKind::Object,
                address_taken: false,
            },
            gpa_image::Symbol {
                name: "other".into(),
                addr: 0x2_0100,
                size: 16,
                kind: gpa_image::SymbolKind::Object,
                address_taken: false,
            },
        ];
        let graph = CallGraph::build(&p);
        let env = AbsEnv::build(&p, &graph);
        let a = AbsInt::analyze(&f, Some(&env));
        // Without the object table the access stays unresolved …
        assert_eq!(
            resolved_accesses(&a.before[1].unwrap(), &f.items[1], None),
            None
        );
        // … with it, the lookup is the whole table extent.
        let at =
            |i: usize| resolved_accesses(&a.before[i].unwrap(), &f.items[i], Some(&env)).unwrap();
        assert_eq!(
            at(1),
            vec![AbsAccess {
                base: AccessBase::Abs,
                lo: 0x2_0010,
                hi: 0x2_0050,
                store: false
            }]
        );
        // A bounded table read and a stack spill are provably disjoint
        // (static image vs stack), so their MEM pair can relax.
        assert!(at(1)[0].provably_disjoint(&at(2)[0], 1, 2));
        // An address past the table's end resolves to no object.
        let g = func(
            vec![
                Item::LitLoad {
                    rd: Reg::r(1),
                    lit: Literal::Word(0x2_0050),
                },
                insn("ldrb r2, [r1, r0]"),
                insn("bx lr"),
            ],
            0,
        );
        let b = AbsInt::analyze(&g, Some(&env));
        assert_eq!(
            resolved_accesses(&b.before[1].unwrap(), &g.items[1], Some(&env)),
            None
        );
    }
}
