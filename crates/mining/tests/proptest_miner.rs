//! Property tests for the miner: canonical uniqueness, embedding
//! validity, permutation invariance, and MIS correctness on random
//! graphs.

use std::collections::HashSet;

use proptest::prelude::*;

use gpa_mining::dfs_code::Pattern;
use gpa_mining::graph::{GEdge, InputGraph};
use gpa_mining::miner::{mine, Config, Support};

/// A random small DAG with labelled nodes and edges (edges only point
/// forward, like the instruction-order DAGs the miner consumes).
fn arb_dag(max_nodes: usize, labels: u32) -> impl Strategy<Value = InputGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let node_labels = proptest::collection::vec(0..labels, n);
            let edges = proptest::collection::vec((0..n, 0..n, 1u8..4), 0..(n * 2));
            (node_labels, edges)
        })
        .prop_map(|(labels, raw_edges)| {
            let mut seen = HashSet::new();
            let edges: Vec<GEdge> = raw_edges
                .into_iter()
                .filter_map(|(a, b, l)| {
                    let (from, to) = if a < b {
                        (a, b)
                    } else if b < a {
                        (b, a)
                    } else {
                        return None;
                    };
                    if !seen.insert((from, to)) {
                        return None;
                    }
                    Some(GEdge {
                        from: from as u32,
                        to: to as u32,
                        label: l,
                    })
                })
                .collect();
            InputGraph::new(labels, edges)
        })
}

/// Checks that an embedding is a genuine (non-induced) subgraph
/// isomorphism: labels match and every pattern edge maps to a graph edge
/// with the right direction and label.
fn embedding_is_valid(pattern: &Pattern, graph: &InputGraph, map: &[u32]) -> bool {
    // Injective.
    let distinct: HashSet<_> = map.iter().collect();
    if distinct.len() != map.len() {
        return false;
    }
    // Node labels.
    for (i, &g) in map.iter().enumerate() {
        if pattern.node_label(i) != graph.labels[g as usize] {
            return false;
        }
    }
    // Edges.
    for t in pattern.tuples() {
        let (pf, pt) = if t.outgoing {
            (map[t.from as usize], map[t.to as usize])
        } else {
            (map[t.to as usize], map[t.from as usize])
        };
        let found = graph
            .edges
            .iter()
            .any(|e| e.from == pf && e.to == pt && e.label == t.edge_label);
        if !found {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn patterns_are_reported_once_and_embeddings_are_valid(
        g in arb_dag(7, 3)
    ) {
        let found = mine(
            std::slice::from_ref(&g),
            &Config {
                min_support: 1,
                support: Support::Graphs,
                max_nodes: 5,
                ..Config::default()
            },
        );
        // Canonical uniqueness: no two results share a DFS code.
        let mut codes = HashSet::new();
        for f in &found {
            let key = format!("{:?}", f.pattern.tuples());
            prop_assert!(codes.insert(key), "duplicate canonical code reported");
            // All embeddings are valid isomorphisms.
            for e in &f.embeddings {
                prop_assert!(embedding_is_valid(&f.pattern, &g, &e.map));
            }
        }
    }

    #[test]
    fn mining_is_invariant_under_node_permutation(
        g in arb_dag(6, 3),
        seed in 0u64..1000
    ) {
        // Relabel node ids (keeping labels and edge structure) by a
        // pseudo-random permutation that preserves topological order
        // validity: reverse-sorted segments keep edges forward. To stay
        // simple, permute only node *labels* storage order via renaming
        // node indices with an order-preserving subset shuffle: here we
        // instead permute the *edge list order* and node insertion is
        // fixed, which exercises the enumeration order independence.
        let mut edges = g.edges.clone();
        let n = edges.len();
        if n > 1 {
            let k = (seed as usize) % n;
            edges.rotate_left(k);
        }
        let g2 = InputGraph::new(g.labels.clone(), edges);
        let count = |graph: &InputGraph| {
            let mut sizes: Vec<(usize, usize)> = mine(
                std::slice::from_ref(graph),
                &Config {
                    min_support: 1,
                    support: Support::Graphs,
                    max_nodes: 4,
                    ..Config::default()
                },
            )
            .iter()
            .map(|f| (f.pattern.node_count(), f.embeddings.len()))
            .collect();
            sizes.sort();
            sizes
        };
        prop_assert_eq!(count(&g), count(&g2));
    }

    #[test]
    fn support_never_exceeds_embedding_count(g in arb_dag(7, 2)) {
        let found = mine(
            std::slice::from_ref(&g),
            &Config {
                min_support: 1,
                support: Support::Embeddings,
                max_nodes: 4,
                ..Config::default()
            },
        );
        for f in &found {
            prop_assert!(f.support <= f.embeddings.len());
            prop_assert!(f.support >= 1);
        }
    }

    #[test]
    fn mis_is_exact_on_random_collision_graphs(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..12, 1..4),
            1..10
        )
    ) {
        let node_sets: Vec<Vec<u32>> =
            sets.iter().map(|s| s.iter().copied().collect()).collect();
        let bitsets: Vec<gpa_mining::nodeset::NodeSet> =
            node_sets.iter().map(|s| s.as_slice().into()).collect();
        let adj = gpa_mining::mis::collision_graph(&bitsets);
        let mis = gpa_mining::mis::max_independent_set(&adj);
        // Brute force.
        let n = node_sets.len();
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let chosen: Vec<usize> =
                (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let ok = chosen.iter().enumerate().all(|(x, &i)| {
                chosen.iter().skip(x + 1).all(|&j| {
                    !gpa_mining::mis::sorted_intersects(&node_sets[i], &node_sets[j])
                })
            });
            if ok {
                best = best.max(chosen.len());
            }
        }
        prop_assert_eq!(mis.len(), best);
    }
}
