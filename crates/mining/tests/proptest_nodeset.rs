//! Property tests for [`gpa_mining::nodeset::NodeSet`]: equivalence with
//! a `BTreeSet<u32>` reference model across insert/contains/intersects/
//! union/iter, with id distributions biased to straddle the inline↔spill
//! boundary at 128.

use std::collections::BTreeSet;

use proptest::prelude::*;

use gpa_mining::nodeset::{NodeSet, INLINE_CAPACITY};

/// Ids concentrated around the spill boundary: most below 128, some just
/// above it, a few far out (forcing repeated spill growth).
fn arb_id() -> impl Strategy<Value = u32> {
    // (The vendored prop_oneof has no weighted arms; repeating an arm
    // biases the distribution the same way.)
    prop_oneof![
        0u32..INLINE_CAPACITY,
        0u32..INLINE_CAPACITY,
        0u32..INLINE_CAPACITY,
        INLINE_CAPACITY - 4..INLINE_CAPACITY + 4,
        INLINE_CAPACITY..4 * INLINE_CAPACITY,
        0u32..2048,
    ]
}

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(arb_id(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn insert_contains_len_match_model(ids in arb_ids(), probes in arb_ids()) {
        let mut set = NodeSet::new();
        let mut model = BTreeSet::new();
        for id in ids {
            // `insert` reports "newly added" exactly like the model.
            prop_assert_eq!(set.insert(id), model.insert(id));
        }
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        for id in probes {
            prop_assert_eq!(set.contains(id), model.contains(&id));
        }
    }

    #[test]
    fn iter_round_trips_in_sorted_order(ids in arb_ids()) {
        let set: NodeSet = ids.iter().copied().collect();
        let model: BTreeSet<u32> = ids.iter().copied().collect();
        let via_iter: Vec<u32> = set.iter().collect();
        let via_model: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(&via_iter, &via_model);
        prop_assert_eq!(set.to_sorted_vec(), via_model);
        // Round trip: rebuilding from the iteration gives an equal set.
        let rebuilt: NodeSet = set.iter().collect();
        prop_assert_eq!(rebuilt, set);
    }

    #[test]
    fn intersects_matches_model(a in arb_ids(), b in arb_ids()) {
        let sa: NodeSet = a.iter().copied().collect();
        let sb: NodeSet = b.iter().copied().collect();
        let ma: BTreeSet<u32> = a.iter().copied().collect();
        let mb: BTreeSet<u32> = b.iter().copied().collect();
        let expect = ma.intersection(&mb).next().is_some();
        prop_assert_eq!(sa.intersects(&sb), expect);
        prop_assert_eq!(sb.intersects(&sa), expect);
    }

    #[test]
    fn union_with_matches_model(a in arb_ids(), b in arb_ids()) {
        let mut sa: NodeSet = a.iter().copied().collect();
        let sb: NodeSet = b.iter().copied().collect();
        let model: BTreeSet<u32> = a.iter().chain(b.iter()).copied().collect();
        sa.union_with(&sb);
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(sa.to_sorted_vec(), expect);
        prop_assert_eq!(sa.len(), model.len());
    }

    #[test]
    fn equality_and_hash_ignore_representation(ids in arb_ids()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Same elements inserted in different orders (and via different
        // spill histories) are equal and hash identically.
        let forward: NodeSet = ids.iter().copied().collect();
        let reverse: NodeSet = ids.iter().rev().copied().collect();
        // A forced-spill copy: insert a far id first, then the ids, then
        // rebuild without it by re-collecting the iterator.
        let mut spilled = NodeSet::new();
        spilled.insert(4096);
        for &id in &ids {
            spilled.insert(id);
        }
        prop_assert_eq!(&forward, &reverse);
        let hash = |s: &NodeSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&forward), hash(&reverse));
        if !ids.contains(&4096) {
            prop_assert_ne!(&forward, &spilled);
        }
    }

    #[test]
    fn boundary_at_inline_capacity(low in 0u32..64, extra in arb_ids()) {
        // 127 stays inline-representable, 128 forces the spill; behaviour
        // across the boundary must be seamless.
        let mut set = NodeSet::new();
        let mut model = BTreeSet::new();
        for id in [low, INLINE_CAPACITY - 1, INLINE_CAPACITY, INLINE_CAPACITY + 1] {
            set.insert(id);
            model.insert(id);
        }
        for id in extra {
            set.insert(id);
            model.insert(id);
        }
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(set.to_sorted_vec(), expect);
        prop_assert!(set.contains(INLINE_CAPACITY - 1));
        prop_assert!(set.contains(INLINE_CAPACITY));
    }
}
