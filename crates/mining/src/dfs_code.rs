//! Canonical DFS codes for directed labelled graphs (gSpan's canonical
//! form, extended with an arc-direction flag — the paper's Fig. 7).
//!
//! A pattern is a list of [`DfsTuple`]s, each describing one edge in the
//! order it was attached during the depth-first construction. The
//! *minimal* code over all possible constructions is the canonical form;
//! [`is_min`](Pattern::is_min) tests minimality by re-running the
//! extension engine against the pattern itself and checking that the
//! stored code never exceeds the smallest realizable tuple.
//!
//! That re-run is a full second mining pass over the pattern's own graph
//! and dominates canonical-form pruning cost, so the miner goes through
//! [`is_min_cached`](Pattern::is_min_cached): a per-thread direct-mapped
//! cache keyed by the FNV-1a/128 content hash of the code. Minimality is
//! a pure function of the code, so a cache can never change what is
//! mined — each `mine_seed` worker owns its thread's cache, keeping
//! seed-partitioned parallel runs deterministic.

use std::cell::RefCell;
use std::cmp::Ordering;

use gpa_dfg::hash::Fnv128;
use gpa_trace::Tracer;

use crate::embed::{extensions, seed_buckets, Embedding};
use crate::graph::{GEdge, InputGraph};

/// One edge of a DFS code.
///
/// `from`/`to` are DFS discovery indices. A *forward* tuple has
/// `to == from_max + 1` (it discovers a new node); a *backward* tuple has
/// `to < from`. `outgoing` records the arc direction: `true` when the
/// graph arc runs from the `from` node to the `to` node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DfsTuple {
    /// DFS index the edge is attached at.
    pub from: u16,
    /// DFS index of the other endpoint.
    pub to: u16,
    /// Interned label of the `from` node.
    pub from_label: u32,
    /// Interned label of the `to` node.
    pub to_label: u32,
    /// Arc direction relative to (from, to): `true` = `from → to`.
    pub outgoing: bool,
    /// Edge label (dependence-kind mask).
    pub edge_label: u8,
}

impl DfsTuple {
    /// Whether this is a forward (node-discovering) tuple.
    pub fn is_forward(&self) -> bool {
        self.to > self.from
    }
}

/// gSpan's total order on DFS tuples (structure first, then labels).
pub fn tuple_cmp(a: &DfsTuple, b: &DfsTuple) -> Ordering {
    let structural = match (a.is_forward(), b.is_forward()) {
        (true, true) => a.to.cmp(&b.to).then(b.from.cmp(&a.from)),
        (false, false) => a.from.cmp(&b.from).then(a.to.cmp(&b.to)),
        // Backward (i, _) precedes forward (_, j) iff i < j.
        (false, true) => {
            if a.from < b.to {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (true, false) => {
            if a.to <= b.from {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
    };
    structural
        .then_with(|| a.from_label.cmp(&b.from_label))
        // Incoming arcs order before outgoing ones (arbitrary but fixed).
        .then_with(|| a.outgoing.cmp(&b.outgoing))
        .then_with(|| a.edge_label.cmp(&b.edge_label))
        .then_with(|| a.to_label.cmp(&b.to_label))
}

impl PartialOrd for DfsTuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DfsTuple {
    fn cmp(&self, other: &Self) -> Ordering {
        tuple_cmp(self, other)
    }
}

/// A pattern: a DFS code plus derived per-node data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pattern {
    tuples: Vec<DfsTuple>,
    node_labels: Vec<u32>,
    rightmost_path: Vec<u16>,
}

impl Pattern {
    /// Creates a single-edge pattern from its first tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple is not `(0, 1)`.
    pub fn root(tuple: DfsTuple) -> Pattern {
        assert_eq!((tuple.from, tuple.to), (0, 1), "root tuple must be (0, 1)");
        Pattern {
            tuples: vec![tuple],
            node_labels: vec![tuple.from_label, tuple.to_label],
            rightmost_path: vec![0, 1],
        }
    }

    /// The tuples of the code, in order.
    pub fn tuples(&self) -> &[DfsTuple] {
        &self.tuples
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.tuples.len()
    }

    /// The label of a DFS node index.
    pub fn node_label(&self, i: usize) -> u32 {
        self.node_labels[i]
    }

    /// DFS indices on the rightmost path, root first.
    pub fn rightmost_path(&self) -> &[u16] {
        &self.rightmost_path
    }

    /// The rightmost (most recently discovered) node.
    pub fn rightmost(&self) -> u16 {
        *self
            .rightmost_path
            .last()
            .expect("patterns always have at least two nodes")
    }

    /// Whether the pattern has an edge (either direction) between the two
    /// DFS indices.
    pub fn has_edge(&self, a: u16, b: u16) -> bool {
        self.tuples
            .iter()
            .any(|t| (t.from == a && t.to == b) || (t.from == b && t.to == a))
    }

    /// Extends the pattern with one more tuple.
    ///
    /// # Panics
    ///
    /// Panics if a forward tuple does not attach on the rightmost path or
    /// a backward tuple does not start at the rightmost node.
    pub fn extend(&self, tuple: DfsTuple) -> Pattern {
        let mut child = self.clone();
        if tuple.is_forward() {
            assert_eq!(
                tuple.to as usize,
                self.node_count(),
                "forward tuple must discover the next node"
            );
            assert!(
                self.rightmost_path.contains(&tuple.from),
                "forward tuples attach on the rightmost path"
            );
            child.node_labels.push(tuple.to_label);
            let cut = child
                .rightmost_path
                .iter()
                .position(|&v| v == tuple.from)
                .expect("attachment point is on the rightmost path");
            child.rightmost_path.truncate(cut + 1);
            child.rightmost_path.push(tuple.to);
        } else {
            assert_eq!(
                tuple.from,
                self.rightmost(),
                "backward tuples leave the rightmost node"
            );
        }
        child.tuples.push(tuple);
        child
    }

    /// Materializes the pattern as an [`InputGraph`] (DFS indices become
    /// node indices).
    pub fn to_input_graph(&self) -> InputGraph {
        let edges = self
            .tuples
            .iter()
            .map(|t| {
                let (from, to) = if t.outgoing {
                    (t.from, t.to)
                } else {
                    (t.to, t.from)
                };
                GEdge {
                    from: from as u32,
                    to: to as u32,
                    label: t.edge_label,
                }
            })
            .collect();
        InputGraph::new(self.node_labels.clone(), edges)
    }

    /// Whether this code is the canonical (minimal) DFS code of its graph.
    ///
    /// Runs the extension engine against the pattern's own graph: at every
    /// prefix the stored tuple must equal the smallest realizable
    /// extension tuple.
    pub fn is_min(&self) -> bool {
        let graph = self.to_input_graph();
        let graphs = std::slice::from_ref(&graph);
        // Minimal first tuple over all seeds of the pattern graph.
        let seeds = seed_buckets(graphs);
        let (min_tuple, embeds) = seeds
            .iter()
            .next()
            .map(|(t, e)| (*t, e.clone()))
            .expect("patterns have at least one edge");
        if tuple_cmp(&min_tuple, &self.tuples[0]) == Ordering::Less {
            return false;
        }
        debug_assert_eq!(min_tuple, self.tuples[0], "stored code must be realizable");
        let mut current = Pattern::root(min_tuple);
        let mut embeddings: Vec<Embedding> = embeds;
        for k in 1..self.tuples.len() {
            let exts = extensions(&current, graphs, &embeddings);
            let Some((&min_tuple, _)) = exts.iter().next() else {
                unreachable!("prefix of a realizable code is extensible");
            };
            match tuple_cmp(&min_tuple, &self.tuples[k]) {
                Ordering::Less => return false,
                Ordering::Equal => {}
                Ordering::Greater => {
                    unreachable!("stored code must be realizable in its own graph")
                }
            }
            embeddings = exts
                .into_iter()
                .next()
                .map(|(_, e)| e)
                .expect("checked above");
            current = current.extend(min_tuple);
        }
        true
    }

    /// FNV-1a/128 content hash of the DFS code. Two patterns share a hash
    /// iff they share their tuple list (node labels are determined by the
    /// tuples), up to the usual negligible 128-bit collision odds — the
    /// same trade the pipeline's content-addressed caches already make.
    pub fn content_hash(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write(b"gpa-dfs-code/1");
        h.write_u64(self.tuples.len() as u64);
        for t in &self.tuples {
            h.write_u64((u64::from(t.from) << 32) | u64::from(t.to));
            h.write_u64((u64::from(t.from_label) << 32) | u64::from(t.to_label));
            h.write_u64((u64::from(t.outgoing) << 8) | u64::from(t.edge_label));
        }
        h.finish()
    }

    /// [`is_min`](Pattern::is_min) through the calling thread's
    /// canonicality cache, with `mine.canon_*` telemetry.
    ///
    /// One lattice walk visits each candidate code at most once, so hits
    /// come from *across* walks: repeated optimizer rounds and identical
    /// blocks re-check the same codes over and over.
    pub fn is_min_cached(&self, tracer: &dyn Tracer) -> bool {
        tracer.count("mine.canon_checks", 1);
        let key = self.content_hash();
        if let Some(cached) = canon_cache_probe(key) {
            tracer.count("mine.canon_cache_hit", 1);
            return cached;
        }
        tracer.count("mine.canon_cache_miss", 1);
        let result = self.is_min();
        canon_cache_store(key, result);
        result
    }
}

/// Slot count of the per-thread canonicality cache (direct-mapped; a
/// slot conflict evicts, never corrupts — the full key is compared).
const CANON_CACHE_SLOTS: usize = 1 << 14;

thread_local! {
    static CANON_CACHE: RefCell<Vec<Option<(u128, bool)>>> =
        const { RefCell::new(Vec::new()) };
}

fn canon_cache_probe(key: u128) -> Option<bool> {
    CANON_CACHE.with(|cache| {
        let cache = cache.borrow();
        match cache.get((key as usize) & (CANON_CACHE_SLOTS - 1)) {
            Some(&Some((k, v))) if k == key => Some(v),
            _ => None,
        }
    })
}

fn canon_cache_store(key: u128, value: bool) {
    CANON_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.is_empty() {
            cache.resize(CANON_CACHE_SLOTS, None);
        }
        cache[(key as usize) & (CANON_CACHE_SLOTS - 1)] = Some((key, value));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(from: u16, to: u16, fl: u32, tl: u32, out: bool) -> DfsTuple {
        DfsTuple {
            from,
            to,
            from_label: fl,
            to_label: tl,
            outgoing: out,
            edge_label: 1,
        }
    }

    #[test]
    fn tuple_order_forward_backward() {
        // forward (0,1) < backward (1,0)
        assert_eq!(
            tuple_cmp(&t(0, 1, 0, 0, true), &t(1, 0, 0, 0, true)),
            Ordering::Less
        );
        // backward (1,0) < forward (1,2)
        assert_eq!(
            tuple_cmp(&t(1, 0, 0, 0, true), &t(1, 2, 0, 0, true)),
            Ordering::Less
        );
        // deeper forward first when same target: (2,3) < (1,3)? No — same
        // `to`, larger `from` first: (2,3) < (1,3).
        assert_eq!(
            tuple_cmp(&t(2, 3, 0, 0, true), &t(1, 3, 0, 0, true)),
            Ordering::Less
        );
        // forward discovery order: (0,1) < (1,2).
        assert_eq!(
            tuple_cmp(&t(0, 1, 0, 0, true), &t(1, 2, 0, 0, true)),
            Ordering::Less
        );
        // label tiebreak: smaller from_label first.
        assert_eq!(
            tuple_cmp(&t(0, 1, 0, 5, true), &t(0, 1, 1, 0, true)),
            Ordering::Less
        );
        // direction tiebreak: incoming before outgoing.
        assert_eq!(
            tuple_cmp(&t(0, 1, 0, 0, false), &t(0, 1, 0, 0, true)),
            Ordering::Less
        );
    }

    #[test]
    fn extend_tracks_rightmost_path() {
        // 0 →(f) 1 →(f) 2, then forward from 0 to 3.
        let p = Pattern::root(t(0, 1, 0, 1, true));
        let p = p.extend(t(1, 2, 1, 2, true));
        assert_eq!(p.rightmost_path(), &[0, 1, 2]);
        let p = p.extend(t(0, 3, 0, 3, true));
        assert_eq!(p.rightmost_path(), &[0, 3]);
        assert_eq!(p.node_count(), 4);
        assert!(p.has_edge(0, 1));
        assert!(!p.has_edge(1, 3));
    }

    #[test]
    fn min_check_rejects_non_canonical_orientation() {
        // Edge A→B with labels A=0, B=1. Starting at A gives
        // (0,1,0,out,1). Starting at B gives (0,1,1,in,0) — larger
        // from_label, so non-minimal.
        let good = Pattern::root(t(0, 1, 0, 1, true));
        let bad = Pattern::root(DfsTuple {
            from: 0,
            to: 1,
            from_label: 1,
            to_label: 0,
            outgoing: false,
            edge_label: 1,
        });
        assert!(good.is_min());
        assert!(!bad.is_min());
    }

    #[test]
    fn min_check_on_path_graph() {
        // Labels 2 →(out) 0 →(out) 1. The canonical code starts at the
        // smallest achievable from_label.
        // Built one way: root (0,1): from node "2"? from_label 2 … any
        // construction starting from label 2 is non-minimal because one
        // starting from 0 exists (as incoming arc from 2? tuple
        // (0,1,0,in,2) has from_label 0 < 2).
        let start_at_two = Pattern::root(DfsTuple {
            from: 0,
            to: 1,
            from_label: 2,
            to_label: 0,
            outgoing: true,
            edge_label: 1,
        })
        .extend(DfsTuple {
            from: 1,
            to: 2,
            from_label: 0,
            to_label: 1,
            outgoing: true,
            edge_label: 1,
        });
        assert!(!start_at_two.is_min());
        // The canonical construction starts at the label-0 node with its
        // *incoming* arc (incoming orders before outgoing), then adds the
        // outgoing arc to label 1 from the root.
        let canonical = Pattern::root(DfsTuple {
            from: 0,
            to: 1,
            from_label: 0,
            to_label: 2,
            outgoing: false,
            edge_label: 1,
        })
        .extend(DfsTuple {
            from: 0,
            to: 2,
            from_label: 0,
            to_label: 1,
            outgoing: true,
            edge_label: 1,
        });
        assert!(canonical.is_min());
        // Starting with the outgoing arc instead is not canonical.
        let outgoing_first = Pattern::root(DfsTuple {
            from: 0,
            to: 1,
            from_label: 0,
            to_label: 1,
            outgoing: true,
            edge_label: 1,
        })
        .extend(DfsTuple {
            from: 0,
            to: 2,
            from_label: 0,
            to_label: 2,
            outgoing: false,
            edge_label: 1,
        });
        assert!(!outgoing_first.is_min());
    }

    #[test]
    fn content_hash_separates_codes() {
        let a = Pattern::root(t(0, 1, 0, 1, true));
        let b = Pattern::root(t(0, 1, 0, 1, false));
        let c = a.extend(t(1, 2, 1, 2, true));
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert_eq!(
            a.content_hash(),
            Pattern::root(t(0, 1, 0, 1, true)).content_hash()
        );
    }

    #[test]
    fn cached_canonicality_agrees_and_counts_hits() {
        use gpa_trace::CounterTracer;
        let tracer = CounterTracer::new();
        let good = Pattern::root(t(0, 1, 0, 1, true));
        let bad = Pattern::root(DfsTuple {
            from: 0,
            to: 1,
            from_label: 1,
            to_label: 0,
            outgoing: false,
            edge_label: 1,
        });
        for _ in 0..3 {
            assert_eq!(good.is_min_cached(&tracer), good.is_min());
            assert_eq!(bad.is_min_cached(&tracer), bad.is_min());
        }
        let c = tracer.counters();
        assert_eq!(c.get("mine.canon_checks"), 6);
        // Both codes may have been probed before this test on the same
        // thread (caches are thread-local and tests share threads), so
        // only the identity is exact; hits are at least the re-checks.
        assert_eq!(
            c.get("mine.canon_checks"),
            c.get("mine.canon_cache_hit") + c.get("mine.canon_cache_miss")
        );
        assert!(c.get("mine.canon_cache_hit") >= 4);
    }
}
